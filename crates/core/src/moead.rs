//! MOEA/D (Zhang & Li, IEEE TEC 2007) — the decomposition-based MOEA the
//! paper names as the high-profile competitor the Borg MOEA outperformed
//! on the aircraft design study (§II).
//!
//! MOEA/D decomposes an M-objective problem into `N` scalar subproblems
//! via Tchebycheff aggregation against a set of uniformly-spread weight
//! vectors; each subproblem evolves using parents drawn from its
//! neighborhood (the `T` subproblems with the closest weights) and a
//! successful offspring replaces worse neighbors. Unlike NSGA-II's
//! rank-based selection, decomposition keeps meaningful selection pressure
//! under many objectives — making it the stronger generational baseline.

use crate::operators::{DifferentialEvolution, PolynomialMutation, Variation};
use crate::problem::{Bounds, Problem};
use crate::rng::SplitMix64;
use crate::solution::Solution;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// MOEA/D configuration.
#[derive(Debug, Clone)]
pub struct MoeadConfig {
    /// Das–Dennis divisions per objective (population size is the lattice
    /// size `C(h + M − 1, M − 1)`).
    pub divisions: usize,
    /// Neighborhood size `T` (default 20, clamped to the population).
    pub neighborhood: usize,
    /// Probability of mating within the neighborhood vs the whole
    /// population (default 0.9).
    pub neighborhood_selection: f64,
    /// Maximum neighbor replacements per offspring (default 2).
    pub max_replacements: usize,
}

impl Default for MoeadConfig {
    fn default() -> Self {
        Self {
            divisions: 12,
            neighborhood: 20,
            neighborhood_selection: 0.9,
            max_replacements: 2,
        }
    }
}

/// Generates the Das–Dennis weight lattice (shared with
/// `borg-problems::refsets`, duplicated here to keep `borg-core`
/// dependency-free).
fn weight_lattice(m: usize, h: usize) -> Vec<Vec<f64>> {
    fn recurse(
        m: usize,
        left: usize,
        idx: usize,
        cur: &mut [usize],
        out: &mut Vec<Vec<f64>>,
        h: usize,
    ) {
        if idx == m - 1 {
            cur[idx] = left;
            out.push(cur.iter().map(|&c| c as f64 / h as f64).collect());
            return;
        }
        for c in 0..=left {
            cur[idx] = c;
            recurse(m, left - c, idx + 1, cur, out, h);
        }
    }
    let mut out = Vec::new();
    recurse(m, h, 0, &mut vec![0; m], &mut out, h);
    out
}

/// The MOEA/D engine.
pub struct MoeadEngine {
    bounds: Vec<Bounds>,
    weights: Vec<Vec<f64>>,
    neighborhoods: Vec<Vec<usize>>,
    population: Vec<Solution>,
    ideal: Vec<f64>,
    variation: DifferentialEvolution,
    config: MoeadConfig,
    rng: StdRng,
    nfe: u64,
}

impl MoeadEngine {
    /// Creates an engine for `problem`.
    pub fn new<P: Problem + ?Sized>(problem: &P, config: MoeadConfig, seed: u64) -> Self {
        let m = problem.num_objectives();
        assert!(m >= 2);
        let weights = weight_lattice(m, config.divisions.max(1));
        let n = weights.len();
        assert!(n >= 4, "weight lattice too small; raise divisions");
        // Neighborhoods: T nearest weight vectors by Euclidean distance.
        let t = config.neighborhood.clamp(2, n);
        let neighborhoods: Vec<Vec<usize>> = (0..n)
            .map(|i| {
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by(|&a, &b| {
                    let da: f64 = weights[i]
                        .iter()
                        .zip(&weights[a])
                        .map(|(x, y)| (x - y) * (x - y))
                        .sum();
                    let db: f64 = weights[i]
                        .iter()
                        .zip(&weights[b])
                        .map(|(x, y)| (x - y) * (x - y))
                        .sum();
                    da.total_cmp(&db)
                });
                order.truncate(t);
                order
            })
            .collect();
        let l = problem.num_variables();
        let pm = PolynomialMutation::new(1.0 / l.max(1) as f64, 20.0);
        Self {
            bounds: problem.all_bounds(),
            weights,
            neighborhoods,
            population: Vec::new(),
            ideal: vec![f64::INFINITY; m],
            variation: DifferentialEvolution::new(0.9, 0.5).with_mutation(pm),
            config,
            rng: SplitMix64::new(seed).derive("moead-engine"),
            nfe: 0,
        }
    }

    /// Population size (the weight-lattice size).
    pub fn population_size(&self) -> usize {
        self.weights.len()
    }

    /// Evaluations consumed.
    pub fn nfe(&self) -> u64 {
        self.nfe
    }

    /// The current population (one solution per subproblem).
    pub fn population(&self) -> &[Solution] {
        &self.population
    }

    /// The non-dominated front of the population.
    pub fn front(&self) -> Vec<Vec<f64>> {
        let objs: Vec<Vec<f64>> = self
            .population
            .iter()
            .map(|s| s.objectives().to_vec())
            .collect();
        let keep = crate::dominance::nondominated_indices(&objs);
        keep.into_iter().map(|i| objs[i].clone()).collect()
    }

    /// Tchebycheff aggregation of `objectives` for subproblem `i`.
    fn tchebycheff(&self, i: usize, objectives: &[f64]) -> f64 {
        self.weights[i]
            .iter()
            .zip(objectives.iter().zip(&self.ideal))
            .map(|(&w, (&f, &z))| w.max(1e-6) * (f - z))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    fn update_ideal(&mut self, objectives: &[f64]) {
        for (z, &f) in self.ideal.iter_mut().zip(objectives) {
            *z = z.min(f);
        }
    }

    /// Runs MOEA/D serially for (at least) `max_nfe` evaluations.
    pub fn run<P: Problem + ?Sized>(&mut self, problem: &P, max_nfe: u64) {
        let m = self.ideal.len();
        let mut objs = vec![0.0; m];
        let mut cons = vec![0.0; problem.num_constraints()];

        // Initialization: one random solution per subproblem.
        if self.population.is_empty() {
            for _ in 0..self.weights.len() {
                let vars: Vec<f64> = self
                    .bounds
                    .iter()
                    .map(|b| {
                        if b.range() > 0.0 {
                            self.rng.gen_range(b.lower..=b.upper)
                        } else {
                            b.lower
                        }
                    })
                    .collect();
                problem.evaluate(&vars, &mut objs, &mut cons);
                self.update_ideal(&objs);
                self.population
                    .push(Solution::from_parts(vars, objs.clone(), cons.clone()));
                self.nfe += 1;
            }
        }

        while self.nfe < max_nfe {
            for i in 0..self.weights.len() {
                if self.nfe >= max_nfe {
                    break;
                }
                // Mating pool: the neighborhood with probability δ, else
                // the whole population.
                let use_neighborhood = self.rng.gen::<f64>() < self.config.neighborhood_selection;
                let pool: Vec<usize> = if use_neighborhood {
                    self.neighborhoods[i].clone()
                } else {
                    (0..self.population.len()).collect()
                };
                // `choose` only returns None on an empty pool; falling back
                // to the subproblem's own index keeps the operator total.
                let a = *pool.choose(&mut self.rng).unwrap_or(&i);
                let b = *pool.choose(&mut self.rng).unwrap_or(&i);
                let c = *pool.choose(&mut self.rng).unwrap_or(&i);
                let parents = [
                    self.population[i].variables(),
                    self.population[a].variables(),
                    self.population[b].variables(),
                    self.population[c].variables(),
                ];
                let vars = self.variation.evolve(&parents, &self.bounds, &mut self.rng);
                problem.evaluate(&vars, &mut objs, &mut cons);
                self.nfe += 1;
                self.update_ideal(&objs);
                let child = Solution::from_parts(vars, objs.clone(), cons.clone());

                // Replace up to `max_replacements` worse pool members.
                let mut order = pool;
                order.shuffle(&mut self.rng);
                let mut replaced = 0;
                for j in order {
                    if replaced >= self.config.max_replacements {
                        break;
                    }
                    let child_fit = self.tchebycheff(j, child.objectives());
                    let incumbent_fit = self.tchebycheff(j, self.population[j].objectives());
                    // Constraint handling: feasibility first.
                    let child_v = child.constraint_violation();
                    let inc_v = self.population[j].constraint_violation();
                    let better = child_v < inc_v || (child_v == inc_v && child_fit < incumbent_fit);
                    if better {
                        self.population[j] = child.clone();
                        replaced += 1;
                    }
                }
            }
        }
    }
}

/// Runs MOEA/D for `max_nfe` evaluations and returns the engine.
pub fn run_moead_serial<P: Problem + ?Sized>(
    problem: &P,
    config: MoeadConfig,
    seed: u64,
    max_nfe: u64,
) -> MoeadEngine {
    let mut engine = MoeadEngine::new(problem, config, seed);
    engine.run(problem, max_nfe);
    engine
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Zdt1Like;
    impl Problem for Zdt1Like {
        fn name(&self) -> &str {
            "zdt1-like"
        }
        fn num_variables(&self) -> usize {
            8
        }
        fn num_objectives(&self) -> usize {
            2
        }
        fn bounds(&self, _i: usize) -> Bounds {
            Bounds::unit()
        }
        fn evaluate(&self, vars: &[f64], objs: &mut [f64], _cons: &mut [f64]) {
            let g = 1.0 + 9.0 * vars[1..].iter().sum::<f64>() / (vars.len() - 1) as f64;
            objs[0] = vars[0];
            objs[1] = g * (1.0 - (vars[0] / g).sqrt());
        }
    }

    #[test]
    fn weight_lattice_matches_das_dennis_count() {
        assert_eq!(weight_lattice(2, 10).len(), 11);
        assert_eq!(weight_lattice(3, 6).len(), 28);
        for w in weight_lattice(3, 6) {
            assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn neighborhoods_contain_self_first() {
        let engine = MoeadEngine::new(&Zdt1Like, MoeadConfig::default(), 1);
        for (i, nb) in engine.neighborhoods.iter().enumerate() {
            assert_eq!(nb[0], i, "nearest weight to w_i is w_i itself");
            assert!(nb.len() <= 20);
        }
    }

    #[test]
    fn engine_counts_nfe_and_keeps_lattice_population() {
        let engine = run_moead_serial(&Zdt1Like, MoeadConfig::default(), 2, 1_000);
        assert!(engine.nfe() >= 1_000);
        assert_eq!(engine.population().len(), 13); // C(12+1, 1) = 13 weights
    }

    #[test]
    fn moead_converges_on_biobjective() {
        let cfg = MoeadConfig {
            divisions: 49, // 50 subproblems
            ..MoeadConfig::default()
        };
        let engine = run_moead_serial(&Zdt1Like, cfg, 3, 15_000);
        let worst = engine
            .front()
            .iter()
            .map(|o| o[1] - (1.0 - o[0].max(0.0).sqrt()))
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(worst < 0.35, "front too far from optimum: {worst}");
        assert!(engine.front().len() > 10);
    }

    #[test]
    fn ideal_point_is_componentwise_minimum() {
        let engine = run_moead_serial(&Zdt1Like, MoeadConfig::default(), 4, 500);
        for s in engine.population() {
            for (z, f) in engine.ideal.iter().zip(s.objectives()) {
                assert!(z <= f);
            }
        }
    }

    #[test]
    fn moead_is_deterministic() {
        let a = run_moead_serial(&Zdt1Like, MoeadConfig::default(), 5, 2_000);
        let b = run_moead_serial(&Zdt1Like, MoeadConfig::default(), 5, 2_000);
        assert_eq!(a.front(), b.front());
    }

    #[test]
    fn tchebycheff_prefers_points_near_the_weight_direction() {
        let mut engine = MoeadEngine::new(&Zdt1Like, MoeadConfig::default(), 6);
        engine.ideal = vec![0.0, 0.0];
        // Find the subproblem with weight ~(1, 0): it should score a point
        // good in f_0 better than a point good in f_1.
        let i = engine
            .weights
            .iter()
            .position(|w| (w[0] - 1.0).abs() < 1e-9)
            .unwrap();
        let good_f0 = engine.tchebycheff(i, &[0.1, 0.9]);
        let good_f1 = engine.tchebycheff(i, &[0.9, 0.1]);
        assert!(good_f0 < good_f1);
    }
}
