//! NSGA-II (Deb et al. 2002): the canonical *generational* MOEA, included
//! as the concrete algorithm behind the paper's synchronous baseline.
//!
//! The paper compares topologies using Cantú-Paz's synchronous model; a
//! real generational algorithm makes that arm concrete. NSGA-II evolves a
//! population of size `P` by: fast non-dominated sorting, crowding-distance
//! diversity, binary tournament selection, SBX crossover and polynomial
//! mutation, then (μ + λ) truncation — one full population per generation,
//! which is exactly the synchronization barrier of Figure 1.
//!
//! Like [`crate::algorithm::BorgEngine`], the implementation is split into
//! `produce_generation` / `consume_generation` so the synchronous
//! executors can charge communication and evaluation time per offspring.

use crate::dominance::{constrained_dominance, Dominance};
use crate::operators::{PolynomialMutation, SimulatedBinaryCrossover, Variation};
use crate::problem::{Bounds, Problem};
use crate::rng::SplitMix64;
use crate::solution::Solution;
use rand::rngs::StdRng;
use rand::Rng;

/// NSGA-II configuration.
#[derive(Debug, Clone)]
pub struct Nsga2Config {
    /// Population size (= offspring per generation).
    pub population_size: usize,
    /// SBX crossover rate (default 1.0) and distribution index (default 15).
    pub sbx: (f64, f64),
    /// PM distribution index (default 20); rate defaults to `1/L`.
    pub pm_index: f64,
}

impl Default for Nsga2Config {
    fn default() -> Self {
        Self {
            population_size: 100,
            sbx: (1.0, 15.0),
            pm_index: 20.0,
        }
    }
}

/// Rank + crowding annotations of one population member.
#[derive(Debug, Clone, Copy, PartialEq)]
struct RankedMeta {
    rank: usize,
    crowding: f64,
}

/// The NSGA-II engine.
pub struct Nsga2Engine {
    bounds: Vec<Bounds>,
    num_objectives: usize,
    num_constraints: usize,
    config: Nsga2Config,
    population: Vec<Solution>,
    meta: Vec<RankedMeta>,
    variation: SimulatedBinaryCrossover,
    rng: StdRng,
    nfe: u64,
    generations: u64,
}

impl Nsga2Engine {
    /// Creates an engine for `problem`.
    pub fn new<P: Problem + ?Sized>(problem: &P, config: Nsga2Config, seed: u64) -> Self {
        assert!(config.population_size >= 4, "population too small");
        let bounds = problem.all_bounds();
        let l = bounds.len();
        let pm = PolynomialMutation::new(1.0 / l.max(1) as f64, config.pm_index);
        let variation = SimulatedBinaryCrossover::new(config.sbx.0, config.sbx.1).with_mutation(pm);
        let rng = SplitMix64::new(seed).derive("nsga2-engine");
        Self {
            bounds,
            num_objectives: problem.num_objectives(),
            num_constraints: problem.num_constraints(),
            config,
            population: Vec::new(),
            meta: Vec::new(),
            variation,
            rng,
            nfe: 0,
            generations: 0,
        }
    }

    /// Current population (empty before the first consume).
    pub fn population(&self) -> &[Solution] {
        &self.population
    }

    /// Evaluations consumed so far.
    pub fn nfe(&self) -> u64 {
        self.nfe
    }

    /// Completed generations.
    pub fn generations(&self) -> u64 {
        self.generations
    }

    /// The current non-dominated front (rank-0 members).
    pub fn front(&self) -> Vec<&Solution> {
        self.population
            .iter()
            .zip(&self.meta)
            .filter(|(_, m)| m.rank == 0)
            .map(|(s, _)| s)
            .collect()
    }

    /// Produces the next generation's candidate variable vectors
    /// (`population_size` of them). The first call produces uniform-random
    /// initial candidates.
    pub fn produce_generation(&mut self) -> Vec<Vec<f64>> {
        let n = self.config.population_size;
        if self.population.is_empty() {
            return (0..n)
                .map(|_| {
                    self.bounds
                        .iter()
                        .map(|b| {
                            if b.range() > 0.0 {
                                self.rng.gen_range(b.lower..=b.upper)
                            } else {
                                b.lower
                            }
                        })
                        .collect()
                })
                .collect();
        }
        (0..n)
            .map(|_| {
                let a = self.crowded_tournament();
                let b = self.crowded_tournament();
                let parents = [
                    self.population[a].variables(),
                    self.population[b].variables(),
                ];
                self.variation.evolve(&parents, &self.bounds, &mut self.rng)
            })
            .collect()
    }

    /// Consumes one evaluated generation: merges offspring with the current
    /// population, re-sorts, and truncates to `population_size`.
    pub fn consume_generation(&mut self, offspring: Vec<Solution>) {
        debug_assert!(offspring
            .iter()
            .all(|s| s.num_objectives() == self.num_objectives
                && s.constraints().len() == self.num_constraints));
        self.nfe += offspring.len() as u64;
        self.generations += 1;
        let mut pool = std::mem::take(&mut self.population);
        pool.extend(offspring);
        let (survivors, meta) = environmental_selection(pool, self.config.population_size);
        self.population = survivors;
        self.meta = meta;
    }

    /// Binary tournament on (rank, crowding): lower rank wins; ties prefer
    /// larger crowding distance.
    fn crowded_tournament(&mut self) -> usize {
        let i = self.rng.gen_range(0..self.population.len());
        let j = self.rng.gen_range(0..self.population.len());
        let (mi, mj) = (self.meta[i], self.meta[j]);
        if mi.rank < mj.rank || (mi.rank == mj.rank && mi.crowding > mj.crowding) {
            i
        } else {
            j
        }
    }
}

impl std::fmt::Debug for Nsga2Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Nsga2Engine")
            .field("nfe", &self.nfe)
            .field("generations", &self.generations)
            .field("population", &self.population.len())
            .finish()
    }
}

/// Fast non-dominated sorting (Deb et al. 2002): returns the rank of each
/// solution (0 = non-dominated front).
pub fn fast_nondominated_sort(solutions: &[Solution]) -> Vec<usize> {
    let n = solutions.len();
    let mut dominates: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut dominated_count = vec![0usize; n];
    for i in 0..n {
        for j in (i + 1)..n {
            match constrained_dominance(&solutions[i], &solutions[j]) {
                Dominance::Dominates => {
                    dominates[i].push(j);
                    dominated_count[j] += 1;
                }
                Dominance::DominatedBy => {
                    dominates[j].push(i);
                    dominated_count[i] += 1;
                }
                Dominance::NonDominated => {}
            }
        }
    }
    let mut rank = vec![0usize; n];
    let mut current: Vec<usize> = (0..n).filter(|&i| dominated_count[i] == 0).collect();
    let mut level = 0;
    while !current.is_empty() {
        let mut next = Vec::new();
        for &i in &current {
            rank[i] = level;
            for &j in &dominates[i] {
                dominated_count[j] -= 1;
                if dominated_count[j] == 0 {
                    next.push(j);
                }
            }
        }
        current = next;
        level += 1;
    }
    rank
}

/// Crowding distance of each solution *within its own rank class*.
pub fn crowding_distances(solutions: &[Solution], ranks: &[usize]) -> Vec<f64> {
    let n = solutions.len();
    let mut crowding = vec![0.0f64; n];
    if n == 0 {
        return crowding;
    }
    let m = solutions[0].num_objectives();
    let max_rank = ranks.iter().copied().max().unwrap_or(0);
    for r in 0..=max_rank {
        let members: Vec<usize> = (0..n).filter(|&i| ranks[i] == r).collect();
        if members.len() <= 2 {
            for &i in &members {
                crowding[i] = f64::INFINITY;
            }
            continue;
        }
        for obj in 0..m {
            let mut order = members.clone();
            order.sort_by(|&a, &b| {
                solutions[a].objectives()[obj].total_cmp(&solutions[b].objectives()[obj])
            });
            let (Some(&first), Some(&last)) = (order.first(), order.last()) else {
                continue;
            };
            let lo = solutions[first].objectives()[obj];
            let hi = solutions[last].objectives()[obj];
            crowding[first] = f64::INFINITY;
            crowding[last] = f64::INFINITY;
            let range = hi - lo;
            if range <= 0.0 {
                continue;
            }
            for w in order.windows(3) {
                let gap =
                    (solutions[w[2]].objectives()[obj] - solutions[w[0]].objectives()[obj]) / range;
                crowding[w[1]] += gap;
            }
        }
    }
    crowding
}

/// (μ + λ) environmental selection: keep the best `capacity` members by
/// (rank, crowding), returning survivors and their annotations.
fn environmental_selection(
    pool: Vec<Solution>,
    capacity: usize,
) -> (Vec<Solution>, Vec<RankedMeta>) {
    let ranks = fast_nondominated_sort(&pool);
    let crowding = crowding_distances(&pool, &ranks);
    let mut order: Vec<usize> = (0..pool.len()).collect();
    order.sort_by(|&a, &b| {
        ranks[a]
            .cmp(&ranks[b])
            .then_with(|| crowding[b].total_cmp(&crowding[a]))
    });
    order.truncate(capacity);
    let meta: Vec<RankedMeta> = order
        .iter()
        .map(|&i| RankedMeta {
            rank: ranks[i],
            crowding: crowding[i],
        })
        .collect();
    // Extract survivors without cloning: map each kept pool index to its
    // position in the selection order, then mark and filter.
    let keep: std::collections::HashMap<usize, usize> =
        order.iter().enumerate().map(|(pos, &i)| (i, pos)).collect();
    let mut survivors: Vec<Solution> = Vec::with_capacity(capacity);
    let mut kept_meta: Vec<RankedMeta> = Vec::with_capacity(capacity);
    for (i, s) in pool.into_iter().enumerate() {
        if let Some(&pos) = keep.get(&i) {
            survivors.push(s);
            kept_meta.push(meta[pos]);
        }
    }
    (survivors, kept_meta)
}

/// Runs NSGA-II serially for (at least) `max_nfe` evaluations.
pub fn run_nsga2_serial<P, F>(
    problem: &P,
    config: Nsga2Config,
    seed: u64,
    max_nfe: u64,
    mut observer: F,
) -> Nsga2Engine
where
    P: Problem + ?Sized,
    F: FnMut(&Nsga2Engine),
{
    let mut engine = Nsga2Engine::new(problem, config, seed);
    let mut objs = vec![0.0; problem.num_objectives()];
    let mut cons = vec![0.0; problem.num_constraints()];
    while engine.nfe() < max_nfe {
        let candidates = engine.produce_generation();
        let offspring: Vec<Solution> = candidates
            .into_iter()
            .map(|vars| {
                problem.evaluate(&vars, &mut objs, &mut cons);
                Solution::from_parts(vars, objs.clone(), cons.clone())
            })
            .collect();
        engine.consume_generation(offspring);
        observer(&engine);
    }
    engine
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Zdt1Like;
    impl Problem for Zdt1Like {
        fn name(&self) -> &str {
            "zdt1-like"
        }
        fn num_variables(&self) -> usize {
            8
        }
        fn num_objectives(&self) -> usize {
            2
        }
        fn bounds(&self, _i: usize) -> Bounds {
            Bounds::unit()
        }
        fn evaluate(&self, vars: &[f64], objs: &mut [f64], _cons: &mut [f64]) {
            let g = 1.0 + 9.0 * vars[1..].iter().sum::<f64>() / (vars.len() - 1) as f64;
            objs[0] = vars[0];
            objs[1] = g * (1.0 - (vars[0] / g).sqrt());
        }
    }

    fn sol(objs: &[f64]) -> Solution {
        Solution::from_parts(vec![], objs.to_vec(), vec![])
    }

    #[test]
    fn sorting_ranks_fronts_correctly() {
        let pool = vec![
            sol(&[0.0, 1.0]), // front 0
            sol(&[1.0, 0.0]), // front 0
            sol(&[1.0, 1.0]), // front 1
            sol(&[2.0, 2.0]), // front 2
            sol(&[0.5, 0.5]), // front 0
        ];
        assert_eq!(fast_nondominated_sort(&pool), vec![0, 0, 1, 2, 0]);
    }

    #[test]
    fn sorting_handles_single_and_empty() {
        assert!(fast_nondominated_sort(&[]).is_empty());
        assert_eq!(fast_nondominated_sort(&[sol(&[1.0, 2.0])]), vec![0]);
    }

    #[test]
    fn crowding_prefers_boundary_and_spread() {
        let pool = vec![
            sol(&[0.0, 1.0]),
            sol(&[0.1, 0.9]),   // crowded
            sol(&[0.12, 0.88]), // crowded
            sol(&[0.5, 0.5]),
            sol(&[1.0, 0.0]),
        ];
        let ranks = fast_nondominated_sort(&pool);
        let c = crowding_distances(&pool, &ranks);
        assert!(c[0].is_infinite() && c[4].is_infinite());
        assert!(c[3] > c[1], "isolated point should out-crowd clustered one");
        assert!(c[3] > c[2]);
    }

    #[test]
    fn crowding_small_fronts_are_infinite() {
        let pool = vec![sol(&[0.0, 1.0]), sol(&[1.0, 0.0]), sol(&[2.0, 2.0])];
        let ranks = fast_nondominated_sort(&pool);
        let c = crowding_distances(&pool, &ranks);
        assert!(c.iter().all(|x| x.is_infinite()));
    }

    #[test]
    fn engine_counts_generations_and_nfe() {
        let engine = run_nsga2_serial(&Zdt1Like, Nsga2Config::default(), 1, 1_000, |_| {});
        assert_eq!(engine.generations(), 10);
        assert_eq!(engine.nfe(), 1_000);
        assert_eq!(engine.population().len(), 100);
    }

    #[test]
    fn nsga2_converges_on_zdt1() {
        let engine = run_nsga2_serial(&Zdt1Like, Nsga2Config::default(), 2, 10_000, |_| {});
        let worst = engine
            .front()
            .iter()
            .map(|s| s.objectives()[1] - (1.0 - s.objectives()[0].max(0.0).sqrt()))
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(worst < 0.3, "front too far from optimum: {worst}");
        assert!(engine.front().len() > 20);
    }

    #[test]
    fn nsga2_is_deterministic() {
        let a = run_nsga2_serial(&Zdt1Like, Nsga2Config::default(), 3, 2_000, |_| {});
        let b = run_nsga2_serial(&Zdt1Like, Nsga2Config::default(), 3, 2_000, |_| {});
        let objs = |e: &Nsga2Engine| -> Vec<Vec<f64>> {
            e.population()
                .iter()
                .map(|s| s.objectives().to_vec())
                .collect()
        };
        assert_eq!(objs(&a), objs(&b));
    }

    #[test]
    fn environmental_selection_is_elitist() {
        // A clearly-dominating solution must survive any truncation.
        let mut pool: Vec<Solution> = (0..20).map(|i| sol(&[1.0 + i as f64, 1.0])).collect();
        pool.push(sol(&[0.0, 0.0]));
        let (survivors, meta) = environmental_selection(pool, 5);
        assert_eq!(survivors.len(), 5);
        assert!(survivors.iter().any(|s| s.objectives() == [0.0, 0.0]));
        assert_eq!(meta.len(), 5);
    }
}
