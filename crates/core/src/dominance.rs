//! Dominance relations: Pareto, constrained, and ε-box dominance.
//!
//! The Borg MOEA uses three comparators:
//!
//! * **Pareto dominance** for population replacement and tournament
//!   selection.
//! * **Constrained dominance**: aggregate constraint violation is compared
//!   first; objectives matter only between two feasible solutions.
//! * **ε-box dominance** (Laumanns et al. 2002) for the archive: objective
//!   space is partitioned into boxes of side `ε_i`; a solution dominates
//!   everything in dominated boxes, and within a box the solution closest to
//!   the ideal box corner wins. This bounds archive size and guarantees
//!   convergence + diversity.

use crate::matrix::ObjectiveMatrix;
use crate::solution::Solution;

/// Result of a dominance comparison between `a` and `b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dominance {
    /// `a` dominates `b`.
    Dominates,
    /// `b` dominates `a`.
    DominatedBy,
    /// Neither dominates (includes exact objective ties).
    NonDominated,
}

impl Dominance {
    /// Flips the relation (what `b` vs `a` would report).
    pub fn flip(self) -> Self {
        match self {
            Dominance::Dominates => Dominance::DominatedBy,
            Dominance::DominatedBy => Dominance::Dominates,
            Dominance::NonDominated => Dominance::NonDominated,
        }
    }
}

/// Standard Pareto dominance on raw objective vectors (minimization).
pub fn pareto_dominance_objectives(a: &[f64], b: &[f64]) -> Dominance {
    debug_assert_eq!(a.len(), b.len());
    let mut a_better = false;
    let mut b_better = false;
    for (&x, &y) in a.iter().zip(b) {
        if x < y {
            a_better = true;
        } else if y < x {
            b_better = true;
        }
        if a_better && b_better {
            return Dominance::NonDominated;
        }
    }
    match (a_better, b_better) {
        (true, false) => Dominance::Dominates,
        (false, true) => Dominance::DominatedBy,
        _ => Dominance::NonDominated,
    }
}

/// Pareto dominance between two solutions, ignoring constraints.
pub fn pareto_dominance(a: &Solution, b: &Solution) -> Dominance {
    pareto_dominance_objectives(a.objectives(), b.objectives())
}

/// Pareto dominance between rows `i` and `j` of a flat objective matrix.
///
/// Row slices come straight out of the SoA backing store, so the comparison
/// runs over contiguous memory with no per-call allocation.
// borg-lint: hot-path
pub fn pareto_dominance_rows(matrix: &ObjectiveMatrix, i: usize, j: usize) -> Dominance {
    pareto_dominance_objectives(matrix.row(i), matrix.row(j))
}

/// Constrained Pareto dominance.
///
/// A solution with a smaller aggregate constraint violation dominates one
/// with a larger violation; two equally-violating solutions fall back to
/// Pareto dominance on objectives. This matches the comparator used by Borg
/// (and NSGA-II's constrained tournament).
pub fn constrained_dominance(a: &Solution, b: &Solution) -> Dominance {
    let va = a.constraint_violation();
    let vb = b.constraint_violation();
    if va < vb {
        Dominance::Dominates
    } else if vb < va {
        Dominance::DominatedBy
    } else {
        pareto_dominance(a, b)
    }
}

/// Computes the ε-box index vector of an objective vector, in place.
///
/// Box `i` of objective `j` covers `[i ε_j, (i+1) ε_j)`. Borg assumes
/// objectives are bounded below (translation to non-negative is not
/// required; `floor` handles negatives correctly). This is the hot-path
/// form: callers reuse `out` across insertions so no `Vec<i64>` is born
/// per dominance comparison.
// borg-lint: hot-path
pub fn epsilon_box_into(objectives: &[f64], epsilons: &[f64], out: &mut [i64]) {
    debug_assert_eq!(objectives.len(), epsilons.len());
    debug_assert_eq!(objectives.len(), out.len());
    for ((&o, &e), b) in objectives.iter().zip(epsilons).zip(out) {
        debug_assert!(e > 0.0, "epsilon must be positive");
        *b = (o / e).floor() as i64;
    }
}

/// The single-coordinate ε-box index: `floor(o / ε)`.
///
/// The allocation-free comparators below fold over this so their arithmetic
/// is bit-identical to [`epsilon_box_into`].
#[inline]
pub fn epsilon_box_coord(objective: f64, epsilon: f64) -> i64 {
    debug_assert!(epsilon > 0.0, "epsilon must be positive");
    (objective / epsilon).floor() as i64
}

/// Allocating convenience form of [`epsilon_box_into`], kept for tests and
/// one-off diagnostics; library hot paths go through the in-place variant.
pub fn epsilon_box(objectives: &[f64], epsilons: &[f64]) -> Vec<i64> {
    let mut out = vec![0i64; objectives.len()];
    epsilon_box_into(objectives, epsilons, &mut out);
    out
}

/// Result of an ε-box comparison, distinguishing the same-box case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoxDominance {
    /// `a`'s box dominates `b`'s box.
    Dominates,
    /// `b`'s box dominates `a`'s box.
    DominatedBy,
    /// Different, mutually non-dominating boxes.
    NonDominated,
    /// Same box: `a` is closer to the box's ideal corner.
    SameBoxABetter,
    /// Same box: `b` is closer (or exactly as close) to the ideal corner.
    SameBoxBBetter,
}

/// ε-box dominance between two objective vectors.
///
/// First compares box indices with Pareto dominance; if the boxes coincide,
/// the solution nearer (in Euclidean distance) to the lower-left box corner
/// is preferred, which keeps exactly one representative per box.
// borg-lint: hot-path
pub fn epsilon_box_dominance(a: &[f64], b: &[f64], epsilons: &[f64]) -> BoxDominance {
    let mut a_better = false;
    let mut b_better = false;
    for i in 0..a.len() {
        let x = epsilon_box_coord(a[i], epsilons[i]);
        let y = epsilon_box_coord(b[i], epsilons[i]);
        if x < y {
            a_better = true;
        } else if y < x {
            b_better = true;
        }
    }
    match (a_better, b_better) {
        (true, false) => BoxDominance::Dominates,
        (false, true) => BoxDominance::DominatedBy,
        (true, true) => BoxDominance::NonDominated,
        (false, false) => {
            // Same box: compare distance to the ideal corner of the box.
            let mut da = 0.0;
            let mut db = 0.0;
            for i in 0..a.len() {
                let corner = epsilon_box_coord(a[i], epsilons[i]) as f64 * epsilons[i];
                da += (a[i] - corner) * (a[i] - corner);
                db += (b[i] - corner) * (b[i] - corner);
            }
            if da < db {
                BoxDominance::SameBoxABetter
            } else {
                BoxDominance::SameBoxBBetter
            }
        }
    }
}

/// Returns the non-dominated subset (indices) of a set of objective vectors.
///
/// O(n²) pairwise filter; used by metrics and reference-set construction, not
/// by the archive hot path.
pub fn nondominated_indices(points: &[Vec<f64>]) -> Vec<usize> {
    let mut keep = Vec::new();
    'outer: for (i, p) in points.iter().enumerate() {
        for (j, q) in points.iter().enumerate() {
            if i == j {
                continue;
            }
            match pareto_dominance_objectives(q, p) {
                Dominance::Dominates => continue 'outer,
                // Exact duplicate objective vectors: keep only the first.
                Dominance::NonDominated if q == p && j < i => continue 'outer,
                _ => {}
            }
        }
        keep.push(i);
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sol(objs: &[f64]) -> Solution {
        Solution::from_parts(vec![], objs.to_vec(), vec![])
    }

    fn csol(objs: &[f64], cons: &[f64]) -> Solution {
        Solution::from_parts(vec![], objs.to_vec(), cons.to_vec())
    }

    #[test]
    fn pareto_basic_cases() {
        assert_eq!(
            pareto_dominance_objectives(&[0.0, 0.0], &[1.0, 1.0]),
            Dominance::Dominates
        );
        assert_eq!(
            pareto_dominance_objectives(&[1.0, 1.0], &[0.0, 0.0]),
            Dominance::DominatedBy
        );
        assert_eq!(
            pareto_dominance_objectives(&[0.0, 1.0], &[1.0, 0.0]),
            Dominance::NonDominated
        );
        assert_eq!(
            pareto_dominance_objectives(&[0.5, 0.5], &[0.5, 0.5]),
            Dominance::NonDominated
        );
    }

    #[test]
    fn pareto_weak_dominance_counts() {
        // Equal in one objective, better in the other => dominates.
        assert_eq!(
            pareto_dominance_objectives(&[0.0, 1.0], &[0.5, 1.0]),
            Dominance::Dominates
        );
    }

    #[test]
    fn flip_is_involutive() {
        for d in [
            Dominance::Dominates,
            Dominance::DominatedBy,
            Dominance::NonDominated,
        ] {
            assert_eq!(d.flip().flip(), d);
        }
    }

    #[test]
    fn constrained_violation_trumps_objectives() {
        let feasible = csol(&[10.0, 10.0], &[0.0]);
        let infeasible = csol(&[0.0, 0.0], &[1.0]);
        assert_eq!(
            constrained_dominance(&feasible, &infeasible),
            Dominance::Dominates
        );
        assert_eq!(
            constrained_dominance(&infeasible, &feasible),
            Dominance::DominatedBy
        );
    }

    #[test]
    fn constrained_equal_violation_falls_back_to_pareto() {
        let a = csol(&[0.0, 0.0], &[0.5]);
        let b = csol(&[1.0, 1.0], &[0.5]);
        assert_eq!(constrained_dominance(&a, &b), Dominance::Dominates);
        let c = sol(&[0.0, 0.0]);
        let d = sol(&[1.0, 1.0]);
        assert_eq!(constrained_dominance(&c, &d), Dominance::Dominates);
    }

    #[test]
    fn epsilon_box_indexing() {
        assert_eq!(epsilon_box(&[0.25, 0.75], &[0.1, 0.5]), vec![2, 1]);
        assert_eq!(epsilon_box(&[-0.05], &[0.1]), vec![-1]);
        assert_eq!(epsilon_box(&[0.0], &[0.1]), vec![0]);
    }

    #[test]
    fn epsilon_box_into_matches_allocating_form() {
        let objs = [0.25, 0.75, -0.05, 0.0];
        let eps = [0.1, 0.5, 0.1, 0.1];
        let mut out = [0i64; 4];
        epsilon_box_into(&objs, &eps, &mut out);
        assert_eq!(out.to_vec(), epsilon_box(&objs, &eps));
        for i in 0..objs.len() {
            assert_eq!(out[i], epsilon_box_coord(objs[i], eps[i]));
        }
    }

    #[test]
    fn pareto_dominance_rows_matches_slice_form() {
        let mut m = ObjectiveMatrix::new(2);
        m.push_row(&[0.0, 0.0]);
        m.push_row(&[1.0, 1.0]);
        m.push_row(&[0.0, 2.0]);
        assert_eq!(pareto_dominance_rows(&m, 0, 1), Dominance::Dominates);
        assert_eq!(pareto_dominance_rows(&m, 1, 0), Dominance::DominatedBy);
        assert_eq!(pareto_dominance_rows(&m, 1, 2), Dominance::NonDominated);
    }

    #[test]
    fn epsilon_box_dominance_cases() {
        let e = [0.1, 0.1];
        // Box (0,0) dominates box (1,1).
        assert_eq!(
            epsilon_box_dominance(&[0.05, 0.05], &[0.15, 0.15], &e),
            BoxDominance::Dominates
        );
        // Non-dominating boxes.
        assert_eq!(
            epsilon_box_dominance(&[0.05, 0.15], &[0.15, 0.05], &e),
            BoxDominance::NonDominated
        );
        // Same box: closer to corner wins.
        assert_eq!(
            epsilon_box_dominance(&[0.01, 0.01], &[0.09, 0.09], &e),
            BoxDominance::SameBoxABetter
        );
        assert_eq!(
            epsilon_box_dominance(&[0.09, 0.09], &[0.01, 0.01], &e),
            BoxDominance::SameBoxBBetter
        );
    }

    #[test]
    fn epsilon_box_dominance_is_coarser_than_pareto() {
        // Pareto-nondominated points can share a box => one is discarded.
        let e = [1.0, 1.0];
        let r = epsilon_box_dominance(&[0.2, 0.8], &[0.8, 0.2], &e);
        assert!(matches!(
            r,
            BoxDominance::SameBoxABetter | BoxDominance::SameBoxBBetter
        ));
    }

    #[test]
    fn nondominated_filter() {
        let pts = vec![
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![0.5, 0.5],
            vec![1.0, 1.0], // dominated
            vec![0.0, 1.0], // duplicate
        ];
        let idx = nondominated_indices(&pts);
        assert_eq!(idx, vec![0, 1, 2]);
    }

    #[test]
    fn nondominated_filter_empty_and_single() {
        assert!(nondominated_indices(&[]).is_empty());
        assert_eq!(nondominated_indices(&[vec![1.0]]), vec![0]);
    }
}
