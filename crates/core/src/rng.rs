//! Seedable randomness utilities.
//!
//! Every stochastic component in this workspace is driven by an explicit
//! 64-bit seed. A single user-supplied seed is expanded into independent
//! per-component streams with [`SplitMix64`], following the recommendation in
//! Steele et al., "Fast Splittable Pseudorandom Number Generators" (OOPSLA
//! 2014). This keeps runs bit-reproducible while avoiding accidental stream
//! correlation between, say, the operator ensemble and the delay sampler.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A tiny splittable generator used only to derive seeds for other RNGs.
///
/// SplitMix64 passes BigCrush and is the canonical seed-expansion function
/// for xoshiro-family generators. We use it purely for seed derivation; the
/// actual sampling RNG is [`StdRng`] (ChaCha12), which is cryptographically
/// strong and identical across platforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a seed-splitter from a user seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit value in the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Derives an independent [`StdRng`] for a named component.
    ///
    /// The component tag is folded into the stream so two components split
    /// from the same parent seed never collide even if split in a different
    /// order between versions.
    pub fn derive(&mut self, tag: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        for b in tag.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_mut(8) {
            let v = self.next_u64() ^ h;
            chunk.copy_from_slice(&v.to_le_bytes());
        }
        StdRng::from_seed(seed)
    }

    /// Derives a raw 64-bit sub-seed (for components that own their RNG).
    pub fn derive_seed(&mut self, tag: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in tag.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self.next_u64() ^ h
    }
}

/// Constructs a [`StdRng`] directly from a 64-bit seed.
pub fn rng_from_seed(seed: u64) -> StdRng {
    SplitMix64::new(seed).derive("root")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_known_vector() {
        // Reference values for seed 0 from the public-domain C implementation
        // by Sebastiano Vigna.
        let mut s = SplitMix64::new(0);
        assert_eq!(s.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(s.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(s.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn derived_streams_differ_by_tag() {
        let mut s1 = SplitMix64::new(7);
        let mut s2 = SplitMix64::new(7);
        let mut a = s1.derive("operators");
        let mut b = s2.derive("delays");
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn derived_streams_same_tag_same_seed_agree() {
        let mut s1 = SplitMix64::new(7);
        let mut s2 = SplitMix64::new(7);
        let mut a = s1.derive("operators");
        let mut b = s2.derive("operators");
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn rng_from_seed_is_reproducible() {
        let mut a = rng_from_seed(123);
        let mut b = rng_from_seed(123);
        let va: Vec<f64> = (0..16).map(|_| a.gen()).collect();
        let vb: Vec<f64> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
    }
}
