//! # borg-core
//!
//! A clean-room Rust implementation of the **Borg Multiobjective
//! Evolutionary Algorithm** (Hadka & Reed, *Evolutionary Computation* 2012)
//! as described in "Scalability Analysis of the Asynchronous, Master-Slave
//! Borg Multiobjective Evolutionary Algorithm" (Hadka, Madduri & Reed,
//! IPDPSW 2013).
//!
//! The crate provides:
//!
//! * the [`problem::Problem`] trait for real-valued multiobjective
//!   minimization problems;
//! * an ε-box dominance [`archive::EpsilonArchive`] with ε-progress
//!   tracking (Laumanns et al. 2002);
//! * the six auto-adapted variation operators (SBX+PM, DE+PM, PCX, SPX,
//!   UNDX, UM) in [`operators`];
//! * a steady-state [`population::Population`] with tournament selection;
//! * the [`algorithm::BorgEngine`] exposing the master-side
//!   `produce`/`consume` state machine that serial *and* asynchronous
//!   master-slave executions share, plus [`algorithm::run_serial`].
//!
//! ## Quick start
//!
//! ```
//! use borg_core::prelude::*;
//!
//! struct Schaffer;
//! impl Problem for Schaffer {
//!     fn name(&self) -> &str { "Schaffer" }
//!     fn num_variables(&self) -> usize { 1 }
//!     fn num_objectives(&self) -> usize { 2 }
//!     fn bounds(&self, _i: usize) -> Bounds { Bounds::new(-10.0, 10.0) }
//!     fn evaluate(&self, v: &[f64], o: &mut [f64], _c: &mut [f64]) {
//!         o[0] = v[0] * v[0];
//!         o[1] = (v[0] - 2.0) * (v[0] - 2.0);
//!     }
//! }
//!
//! let engine = run_serial(&Schaffer, BorgConfig::new(2, 0.1), 42, 2_000, |_| {});
//! assert!(engine.archive().len() > 3);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod algorithm;
pub mod archive;
pub mod dominance;
pub mod io;
pub mod matrix;
pub mod moead;
pub mod nsga2;
pub mod operators;
pub mod population;
pub mod problem;
pub mod rng;
pub mod solution;

/// Commonly used items.
pub mod prelude {
    pub use crate::algorithm::{run_serial, BorgConfig, BorgEngine, Candidate, SolutionArena};
    pub use crate::archive::{ArchiveInsert, ArchiveStamp, EpsilonArchive};
    pub use crate::dominance::{constrained_dominance, pareto_dominance, Dominance};
    pub use crate::io::{solutions_from_csv, solutions_to_csv};
    pub use crate::matrix::{FlatMatrix, ObjectiveMatrix};
    pub use crate::moead::{run_moead_serial, MoeadConfig, MoeadEngine};
    pub use crate::nsga2::{run_nsga2_serial, Nsga2Config, Nsga2Engine};
    pub use crate::population::Population;
    pub use crate::problem::{evaluate_into_solution, Bounds, Problem};
    pub use crate::rng::SplitMix64;
    pub use crate::solution::Solution;
}
