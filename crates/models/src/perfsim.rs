//! The paper's **simulation model** (§IV-B): a queueing simulation of the
//! asynchronous master-slave topology in which `T_F`, `T_A`, `T_C` follow
//! probability distributions and worker nodes contend for the master.
//!
//! Unlike the analytical model (Eq. 2), this model captures master
//! saturation: as `P` grows or `T_F` shrinks, results queue at the master
//! and elapsed time stops improving — the effect dominating the paper's
//! Table II error comparison.

use crate::analytical::TimingParams;
use crate::dist::Dist;
use crate::queueing::{run_async, run_sync, MasterSlaveHooks, RunOutcome};
use borg_core::rng::SplitMix64;
use borg_obs::{NoopRecorder, Recorder};
use rand::rngs::StdRng;

/// Distributional timing model for one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingModel {
    /// Function evaluation time distribution.
    pub t_f: Dist,
    /// One-way communication time distribution.
    pub t_c: Dist,
    /// Master algorithm time distribution (per interaction).
    pub t_a: Dist,
}

impl TimingModel {
    /// Constant-time model matching the analytical assumptions.
    pub fn constant(t: TimingParams) -> Self {
        Self {
            t_f: Dist::Constant(t.t_f),
            t_c: Dist::Constant(t.t_c),
            t_a: Dist::Constant(t.t_a),
        }
    }

    /// The paper's experimental control: `T_F ~ Normal(mean, cv·mean)`,
    /// constant `T_C`, constant `T_A`.
    pub fn controlled_delay(t_f_mean: f64, cv: f64, t_c: f64, t_a: f64) -> Self {
        Self {
            t_f: Dist::normal_cv(t_f_mean, cv),
            t_c: Dist::Constant(t_c),
            t_a: Dist::Constant(t_a),
        }
    }

    /// Mean-value [`TimingParams`] (what the analytical model sees).
    pub fn means(&self) -> TimingParams {
        TimingParams::new(self.t_f.mean(), self.t_c.mean(), self.t_a.mean())
    }
}

/// Configuration of one simulated run.
#[derive(Debug, Clone, Copy)]
pub struct PerfSimConfig {
    /// Total processors `P` (one master + `P − 1` workers).
    pub processors: u32,
    /// Function evaluations `N`.
    pub evaluations: u64,
    /// Timing distributions.
    pub timing: TimingModel,
    /// RNG seed.
    pub seed: u64,
}

/// Sampling hooks implementing the paper's SimPy structure: one `T_A` per
/// master interaction (charged on consume; initial production also costs a
/// `T_A` draw), `T_C` per message, `T_F` per evaluation.
struct SamplingHooks {
    timing: TimingModel,
    rng: StdRng,
    /// Production cost is folded into `consume` except during initial
    /// seeding, mirroring `hold(T_C + T_A + T_C)` in the paper's snippet.
    seeded: Vec<bool>,
}

impl SamplingHooks {
    fn new(timing: TimingModel, workers: usize, seed: u64) -> Self {
        Self {
            timing,
            rng: SplitMix64::new(seed).derive("perfsim"),
            seeded: vec![false; workers + 1],
        }
    }
}

impl MasterSlaveHooks for SamplingHooks {
    fn produce(&mut self, worker: usize, _now: f64) -> f64 {
        if worker < self.seeded.len() && !self.seeded[worker] {
            self.seeded[worker] = true;
            self.timing.t_a.sample(&mut self.rng)
        } else {
            0.0
        }
    }

    fn evaluation_time(&mut self, _worker: usize) -> f64 {
        self.timing.t_f.sample(&mut self.rng)
    }

    fn consume(&mut self, _worker: usize, _now: f64) -> f64 {
        self.timing.t_a.sample(&mut self.rng)
    }

    fn comm_time(&mut self) -> f64 {
        self.timing.t_c.sample(&mut self.rng)
    }
}

/// Prediction of the simulation model for one configuration.
#[derive(Debug, Clone)]
pub struct PerfPrediction {
    /// Full queueing outcome.
    pub outcome: RunOutcome,
    /// Predicted parallel time `T_P` (alias of `outcome.elapsed`).
    pub parallel_time: f64,
    /// Serial baseline `T_S = N (E[T_F] + E[T_A])`.
    pub serial_time: f64,
    /// Predicted speedup `T_S / T_P`.
    pub speedup: f64,
    /// Predicted efficiency `T_S / (P · T_P)`.
    pub efficiency: f64,
}

/// Runs the asynchronous simulation model for one configuration.
pub fn simulate_async(config: &PerfSimConfig) -> PerfPrediction {
    simulate_async_traced(config, &NoopRecorder)
}

/// As [`simulate_async`], emitting activity spans and metrics through
/// `rec` (for Figure 2 and the telemetry exports).
pub fn simulate_async_traced<R: Recorder + ?Sized>(
    config: &PerfSimConfig,
    rec: &R,
) -> PerfPrediction {
    assert!(
        config.processors >= 2,
        "need a master and at least one worker"
    );
    let workers = (config.processors - 1) as usize;
    let mut hooks = SamplingHooks::new(config.timing, workers, config.seed);
    let outcome = run_async(&mut hooks, workers, config.evaluations, rec);
    let means = config.timing.means();
    let serial = crate::analytical::serial_time(config.evaluations, means);
    let speedup = serial / outcome.elapsed;
    PerfPrediction {
        parallel_time: outcome.elapsed,
        serial_time: serial,
        speedup,
        efficiency: speedup / config.processors as f64,
        outcome,
    }
}

/// Runs the synchronous (generational) simulation model (for Figure 5's
/// comparison and the straggler ablation).
pub fn simulate_sync(config: &PerfSimConfig) -> PerfPrediction {
    simulate_sync_traced(config, &NoopRecorder)
}

/// As [`simulate_sync`], emitting activity spans and metrics through
/// `rec` (for Figure 1 and the telemetry exports).
pub fn simulate_sync_traced<R: Recorder + ?Sized>(
    config: &PerfSimConfig,
    rec: &R,
) -> PerfPrediction {
    assert!(config.processors >= 2);
    let workers = (config.processors - 1) as usize;
    let mut hooks = SamplingHooks::new(config.timing, workers, config.seed);
    let outcome = run_sync(&mut hooks, workers, config.evaluations, rec);
    let means = config.timing.means();
    let serial = crate::analytical::serial_time(config.evaluations, means);
    let speedup = serial / outcome.elapsed;
    PerfPrediction {
        parallel_time: outcome.elapsed,
        serial_time: serial,
        speedup,
        efficiency: speedup / config.processors as f64,
        outcome,
    }
}

/// Averages the simulation model over `replicates` seeds (the paper uses
/// 50 replicates; its tables report means).
pub fn simulate_async_mean(config: &PerfSimConfig, replicates: u32) -> PerfPrediction {
    assert!(replicates >= 1);
    let replicate_config = |r: u32| {
        let mut c = *config;
        c.seed = SplitMix64::new(config.seed)
            .derive_seed("perfsim-replicate")
            .wrapping_add(r as u64);
        c
    };
    // Replicate 0 seeds the accumulator directly — no empty case.
    let mut a = simulate_async(&replicate_config(0));
    for r in 1..replicates {
        let p = simulate_async(&replicate_config(r));
        a.parallel_time += p.parallel_time;
        a.speedup += p.speedup;
        a.efficiency += p.efficiency;
        a.outcome.elapsed += p.outcome.elapsed;
        a.outcome.master_busy += p.outcome.master_busy;
        a.outcome.master_utilization += p.outcome.master_utilization;
        a.outcome.mean_wait += p.outcome.mean_wait;
    }
    let k = replicates as f64;
    a.parallel_time /= k;
    a.speedup /= k;
    a.efficiency /= k;
    a.outcome.elapsed /= k;
    a.outcome.master_busy /= k;
    a.outcome.master_utilization /= k;
    a.outcome.mean_wait /= k;
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytical::{async_parallel_time, relative_error};

    fn paper_config(p: u32, t_f: f64, t_a: f64, n: u64) -> PerfSimConfig {
        PerfSimConfig {
            processors: p,
            evaluations: n,
            timing: TimingModel::controlled_delay(t_f, 0.1, 0.000_006, t_a),
            seed: 42,
        }
    }

    #[test]
    fn constant_model_reproduces_analytical_regime() {
        // Below saturation the simulation model and Eq. (2) agree.
        let cfg = PerfSimConfig {
            processors: 16,
            evaluations: 10_000,
            timing: TimingModel::constant(TimingParams::new(0.01, 0.000_006, 0.000_023)),
            seed: 1,
        };
        let pred = simulate_async(&cfg);
        let eq2 = async_parallel_time(cfg.evaluations, cfg.processors, cfg.timing.means());
        assert!(relative_error(pred.parallel_time, eq2) < 0.01);
        assert!(pred.efficiency > 0.9);
    }

    #[test]
    fn table2_error_pattern_small_tf_large_p() {
        // DTLZ2-like, T_F = 1 ms, P = 256: the analytical model undershoots
        // massively (paper: 93% error), the simulation model's elapsed is
        // governed by master saturation.
        let cfg = paper_config(256, 0.001, 0.000_031, 20_000);
        let pred = simulate_async(&cfg);
        let eq2 = async_parallel_time(cfg.evaluations, cfg.processors, cfg.timing.means());
        let analytic_err = relative_error(pred.parallel_time, eq2);
        assert!(
            analytic_err > 0.5,
            "analytical model should be badly wrong here: {analytic_err}"
        );
        assert!(pred.outcome.master_utilization > 0.95);
        assert!(pred.efficiency < 0.3);
    }

    #[test]
    fn efficiency_peaks_then_collapses() {
        // T_F = 10 ms: Eq. (3) puts master saturation at
        // P_UB = 0.01/0.000042 ≈ 238. Below it efficiency is high; past it
        // the simulation model (unlike Eq. 2) shows the collapse the
        // paper's Table II measures at P ∈ {256, 512, 1024}.
        let eff: Vec<f64> = [16u32, 32, 128, 512, 1024]
            .iter()
            .map(|&p| simulate_async(&paper_config(p, 0.01, 0.000_03, 20_000)).efficiency)
            .collect();
        assert!(eff[0] > 0.85, "E(16) = {}", eff[0]);
        assert!(eff[1] > 0.85, "E(32) = {}", eff[1]);
        assert!(eff[2] > 0.85, "E(128) = {}", eff[2]);
        assert!(eff[3] < 0.55, "E(512) = {} should collapse", eff[3]);
        assert!(eff[4] < eff[3], "E(1024) = {} must keep falling", eff[4]);
    }

    #[test]
    fn large_tf_scales_cleanly_to_1024() {
        // T_F = 0.1 s: the paper reports ~0.85+ efficiency at P = 1024.
        let pred = simulate_async(&paper_config(1024, 0.1, 0.000_045, 50_000));
        assert!(pred.efficiency > 0.8, "E = {}", pred.efficiency);
    }

    #[test]
    fn replicate_mean_is_stable() {
        let cfg = paper_config(64, 0.01, 0.000_027, 5_000);
        let a = simulate_async_mean(&cfg, 5);
        let b = simulate_async_mean(&cfg, 5);
        assert_eq!(
            a.parallel_time, b.parallel_time,
            "replicate mean must be deterministic"
        );
        let single = simulate_async(&cfg);
        assert!(relative_error(single.parallel_time, a.parallel_time) < 0.05);
    }

    #[test]
    fn sync_model_runs_and_reports() {
        let cfg = paper_config(16, 0.01, 0.000_006, 4_800);
        let pred = simulate_sync(&cfg);
        assert!(pred.parallel_time > 0.0);
        assert!(pred.efficiency > 0.3 && pred.efficiency <= 1.0);
    }

    #[test]
    fn async_beats_sync_at_scale_sync_wins_small() {
        // The Figure 5 crossover, via the simulation models themselves.
        let at_scale = |p: u32| {
            let cfg = paper_config(p, 0.05, 0.000_02, 20_000);
            (
                simulate_async(&cfg).efficiency,
                simulate_sync(&cfg).efficiency,
            )
        };
        let (ea_big, es_big) = at_scale(1024);
        assert!(
            ea_big > es_big + 0.1,
            "async {ea_big} should clearly beat sync {es_big} at P=1024"
        );
        let small = paper_config(3, 0.0005, 0.000_006, 3_000);
        let ea_small = simulate_async(&small).efficiency;
        let es_small = simulate_sync(&small).efficiency;
        assert!(
            es_small > ea_small,
            "sync {es_small} should beat async {ea_small} at P=3, tiny T_F"
        );
    }
}
