//! The paper's closed-form models (Sections III–IV.A and VI.B).
//!
//! All functions take the paper's timing quantities: `t_f` (function
//! evaluation), `t_c` (one-way message), `t_a` (master-side algorithm
//! time), `n` (total function evaluations) and `p` (processors, one master
//! + `p − 1` workers).

/// Timing parameters of one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingParams {
    /// Function evaluation time `T_F` (seconds).
    pub t_f: f64,
    /// One-way communication time `T_C` (seconds).
    pub t_c: f64,
    /// Master algorithm time `T_A` (seconds).
    pub t_a: f64,
}

impl TimingParams {
    /// Convenience constructor.
    pub fn new(t_f: f64, t_c: f64, t_a: f64) -> Self {
        assert!(t_f >= 0.0 && t_c >= 0.0 && t_a >= 0.0);
        Self { t_f, t_c, t_a }
    }
}

/// Eq. (1): serial runtime `T_S = N (T_F + T_A)`.
pub fn serial_time(n: u64, t: TimingParams) -> f64 {
    n as f64 * (t.t_f + t.t_a)
}

/// Eq. (2): asynchronous master-slave runtime
/// `T_P = N/(P−1) (T_F + 2 T_C + T_A)`.
///
/// # Panics
/// If `p < 2` (the topology needs at least one worker).
pub fn async_parallel_time(n: u64, p: u32, t: TimingParams) -> f64 {
    assert!(p >= 2, "need a master and at least one worker");
    n as f64 / (p - 1) as f64 * (t.t_f + 2.0 * t.t_c + t.t_a)
}

/// Eq. (3): processor-count upper bound before master saturation,
/// `P_UB = T_F / (2 T_C + T_A)`.
pub fn processor_upper_bound(t: TimingParams) -> f64 {
    t.t_f / (2.0 * t.t_c + t.t_a)
}

/// Eq. (4): smallest processor count for which the parallel algorithm
/// beats the serial one, `P_LB > 2 + 2 T_C / (T_F + T_A)`.
pub fn processor_lower_bound(t: TimingParams) -> f64 {
    2.0 + 2.0 * t.t_c / (t.t_f + t.t_a)
}

/// A *saturating* correction of Eq. (2): the master can process at most
/// one result per `2 T_C + T_A`, so elapsed time can never fall below
/// `N (2 T_C + T_A)` regardless of `P`.
///
/// ```text
/// T_P^sat = max( N/(P−1) (T_F + 2T_C + T_A),  N (2T_C + T_A) )
/// ```
///
/// This one-line fix recovers most of the simulation model's accuracy in
/// the deeply-saturated regime (though not in the transition region,
/// where genuine queueing dynamics matter) — exposed so the experiments
/// can quantify exactly how much of the analytical model's Table II error
/// is "no saturation ceiling" versus "no queueing dynamics".
pub fn async_parallel_time_saturating(n: u64, p: u32, t: TimingParams) -> f64 {
    let eq2 = async_parallel_time(n, p, t);
    let floor = n as f64 * (2.0 * t.t_c + t.t_a);
    eq2.max(floor)
}

/// Speedup `S_P = T_S / T_P` of the asynchronous analytical model.
pub fn async_speedup(n: u64, p: u32, t: TimingParams) -> f64 {
    serial_time(n, t) / async_parallel_time(n, p, t)
}

/// Efficiency `E_P = T_S / (P · T_P)` of the asynchronous analytical model.
pub fn async_efficiency(n: u64, p: u32, t: TimingParams) -> f64 {
    async_speedup(n, p, t) / p as f64
}

/// Eq. (6): Cantú-Paz's synchronous master-slave runtime
/// `T_P^sync = N/P (T_F + P T_C + T_A^sync)` with `T_A^sync = P T_A`
/// (each node evaluates one solution per generation; the master processes
/// all `P` offspring serially).
pub fn sync_parallel_time(n: u64, p: u32, t: TimingParams) -> f64 {
    assert!(p >= 1);
    let pf = p as f64;
    n as f64 / pf * (t.t_f + pf * t.t_c + pf * t.t_a)
}

/// Speedup of the synchronous model against the same serial baseline.
pub fn sync_speedup(n: u64, p: u32, t: TimingParams) -> f64 {
    serial_time(n, t) / sync_parallel_time(n, p, t)
}

/// Efficiency of the synchronous model.
pub fn sync_efficiency(n: u64, p: u32, t: TimingParams) -> f64 {
    sync_speedup(n, p, t) / p as f64
}

/// The optimal processor count of the synchronous model,
/// `P* = sqrt(N… )`— for Cantú-Paz's model with `T_A^sync = P T_A` the
/// generation time is `T_F/P + T_C + T_A` per evaluation… maximizing
/// speedup `S(P) = P (T_F + T_A) / (T_F + P T_C + P T_A)` shows S is
/// increasing and saturates at `(T_F + T_A)/(T_C + T_A)`; the knee sits at
/// `P ≈ sqrt(T_F / (T_C + T_A))`. Exposed for the Fig. 5 discussion.
pub fn sync_knee(t: TimingParams) -> f64 {
    (t.t_f / (t.t_c + t.t_a)).sqrt()
}

/// Relative error between a prediction and an observation, Eq. (5).
pub fn relative_error(actual: f64, predicted: f64) -> f64 {
    debug_assert!(actual != 0.0);
    (actual - predicted).abs() / actual.abs()
}

// ---------------------------------------------------------------------------
// Degraded (fault-aware) model
// ---------------------------------------------------------------------------

/// Effective worker-equivalent processor count under a worker failure
/// rate `f`: `P_eff = P · (1 − f)`, floored at one master plus one worker.
///
/// The correction treats each crashed worker as lost for (on average)
/// the whole run — the pessimistic end of the paper's §VII discussion —
/// so `P_eff` interpolates linearly between the healthy pool and a bare
/// master-worker pair.
pub fn effective_processors(p: u32, f: f64) -> f64 {
    assert!((0.0..=1.0).contains(&f), "failure rate must be in [0, 1]");
    (p as f64 * (1.0 - f)).max(2.0)
}

/// Degraded Eq. (2): asynchronous runtime with `P` replaced by `P_eff`,
/// `T_P(f) = N/(P_eff − 1) (T_F + 2 T_C + T_A)`.
pub fn async_parallel_time_degraded(n: u64, p: u32, t: TimingParams, f: f64) -> f64 {
    assert!(p >= 2, "need a master and at least one worker");
    let p_eff = effective_processors(p, f);
    n as f64 / (p_eff - 1.0) * (t.t_f + 2.0 * t.t_c + t.t_a)
}

/// Speedup of the degraded model against the (fault-free) serial
/// baseline — workers crash, the lone serial processor does not, so the
/// baseline stays Eq. (1).
pub fn async_speedup_degraded(n: u64, p: u32, t: TimingParams, f: f64) -> f64 {
    serial_time(n, t) / async_parallel_time_degraded(n, p, t, f)
}

/// Efficiency of the degraded model, normalised by the *provisioned*
/// `P` (you pay for crashed nodes too).
pub fn async_efficiency_degraded(n: u64, p: u32, t: TimingParams, f: f64) -> f64 {
    async_speedup_degraded(n, p, t, f) / p as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table II's DTLZ2 row at P = 128, T_F = 0.01: T_A = 29 µs, T_C = 6 µs.
    fn dtlz2_p128() -> TimingParams {
        TimingParams::new(0.01, 0.000_006, 0.000_029)
    }

    #[test]
    fn serial_time_matches_eq1() {
        let t = dtlz2_p128();
        assert!((serial_time(100_000, t) - 1002.9).abs() < 0.1);
    }

    #[test]
    fn async_time_matches_table2_analytical_column() {
        // Paper's analytical predictions for DTLZ2, T_F = 0.01 at N = 100k:
        // P = 128 → 8.0 s; P = 16 → 67.1 s; P = 1024 → 1.0 s.
        let n = 100_000;
        let t16 = TimingParams::new(0.01, 0.000_006, 0.000_023);
        assert!((async_parallel_time(n, 16, t16) - 67.1).abs() < 0.2);
        let t128 = dtlz2_p128();
        assert!((async_parallel_time(n, 128, t128) - 8.0).abs() < 0.1);
        let t1024 = TimingParams::new(0.01, 0.000_006, 0.000_045);
        assert!((async_parallel_time(n, 1024, t1024) - 1.0).abs() < 0.05);
    }

    #[test]
    fn upper_bound_matches_papers_example() {
        // §VI: "DTLZ2 case where T_A = 0.000029, T_C = 0.000006, T_F = 0.01.
        // From (3), the processor count upper bound is 244."
        let pub_ = processor_upper_bound(dtlz2_p128());
        assert!((pub_ - 244.0).abs() < 1.0, "P_UB = {pub_}");
    }

    #[test]
    fn lower_bound_is_at_least_three_processors() {
        // §IV.A: P must strictly exceed the bound and the bound is ≥ 2, so
        // the smallest integer processor count beating serial is 3.
        for (tf, tc, ta) in [
            (1.0, 0.0, 0.0),
            (0.001, 0.000_006, 0.000_03),
            (1e-6, 1.0, 1e-6),
        ] {
            let lb = processor_lower_bound(TimingParams::new(tf, tc, ta));
            assert!(lb >= 2.0);
            let min_p = (lb.floor() as u32 + 1).max(3);
            assert!(min_p >= 3);
        }
        // The bound approaches exactly 2 as T_C → 0.
        let lb0 = processor_lower_bound(TimingParams::new(0.01, 0.0, 0.000_03));
        assert!((lb0 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn efficiency_matches_table2() {
        // Experimental efficiency at peak (DTLZ2, T_F = 0.01, P = 32) was
        // 0.95; the analytical model predicts slightly higher.
        let t = TimingParams::new(0.01, 0.000_006, 0.000_025);
        let e = async_efficiency(100_000, 32, t);
        assert!(e > 0.93 && e <= 1.0, "E = {e}");
    }

    #[test]
    fn analytical_efficiency_is_blind_to_saturation() {
        // Eq. (2)'s efficiency (P−1)/P · (T_F+T_A)/(T_F+2T_C+T_A) is
        // *monotonically increasing* in P — the analytical model cannot see
        // master saturation at all. This is precisely the failure mode
        // Table II demonstrates (98% error at P = 1024, T_F = 1 ms) and
        // what the simulation model exists to fix.
        let t = dtlz2_p128();
        let e64 = async_efficiency(100_000, 64, t);
        let e1024 = async_efficiency(100_000, 1024, t);
        assert!(e64 > 0.9);
        assert!(e1024 > e64, "Eq. 2 predicts ever-growing efficiency");
        let ceiling = (t.t_f + t.t_a) / (t.t_f + 2.0 * t.t_c + t.t_a);
        assert!(e1024 < ceiling);
    }

    #[test]
    fn sync_model_penalizes_large_p() {
        // With T_A^sync = P·T_A the synchronous efficiency collapses once
        // P (T_C + T_A) rivals T_F.
        let t = TimingParams::new(0.01, 0.000_006, 0.000_006);
        let e_small = sync_efficiency(100_000, 8, t);
        let e_large = sync_efficiency(100_000, 4096, t);
        assert!(e_small > 0.9, "E(8) = {e_small}");
        assert!(e_large < 0.2, "E(4096) = {e_large}");
    }

    #[test]
    fn async_scales_to_larger_p_than_sync_at_equal_tf() {
        // The paper's headline comparison: at the same T_F, async sustains
        // efficiency to larger P than sync.
        let t = TimingParams::new(0.1, 0.000_006, 0.000_03);
        let n = 1_000_000;
        let p = 2048;
        let ea = async_efficiency(n, p, t);
        let es = sync_efficiency(n, p, t);
        assert!(ea > 0.9, "async E = {ea}");
        assert!(es < 0.7, "sync E = {es}");
    }

    #[test]
    fn sync_beats_async_at_tiny_p_and_tf() {
        // Fig. 5's other corner: small T_F and small P favour sync because
        // async idles one node as a dedicated master.
        let t = TimingParams::new(0.0005, 0.000_006, 0.000_006);
        let n = 100_000;
        let es = sync_efficiency(n, 4, t);
        let ea = async_efficiency(n, 4, t);
        assert!(es > ea, "sync {es} vs async {ea}");
    }

    #[test]
    fn saturating_model_equals_eq2_below_saturation_and_floors_above() {
        let t = dtlz2_p128(); // P_UB ≈ 244
        let n = 100_000;
        // Below saturation: identical to Eq. 2.
        assert_eq!(
            async_parallel_time_saturating(n, 64, t),
            async_parallel_time(n, 64, t)
        );
        // Above: pinned to the master-throughput floor.
        let floor = n as f64 * (2.0 * t.t_c + t.t_a);
        assert_eq!(async_parallel_time_saturating(n, 1024, t), floor);
        assert!(async_parallel_time(n, 1024, t) < floor);
        // The crossover sits at P − 1 = (T_F + 2T_C + T_A)/(2T_C + T_A),
        // i.e. just past P_UB.
        let p_ub = crate::analytical::processor_upper_bound(t);
        let crossover = 1.0 + (t.t_f + 2.0 * t.t_c + t.t_a) / (2.0 * t.t_c + t.t_a);
        assert!((crossover - (p_ub + 2.0)).abs() < 1.0);
    }

    #[test]
    fn relative_error_matches_eq5() {
        assert!((relative_error(10.0, 8.0) - 0.2).abs() < 1e-12);
        assert!((relative_error(8.0, 10.0) - 0.25).abs() < 1e-12);
        assert_eq!(relative_error(5.0, 5.0), 0.0);
    }

    #[test]
    fn degraded_model_reduces_to_eq2_at_f0() {
        let t = dtlz2_p128();
        let n = 100_000;
        for p in [16u32, 128, 1024] {
            assert_eq!(
                async_parallel_time_degraded(n, p, t, 0.0),
                async_parallel_time(n, p, t)
            );
            assert_eq!(async_speedup_degraded(n, p, t, 0.0), async_speedup(n, p, t));
        }
    }

    #[test]
    fn degraded_model_bends_the_speedup_curve() {
        // Harada & Alba's observation: a degraded pool bends the speedup
        // curve down roughly in proportion to the fraction lost.
        let t = dtlz2_p128();
        let n = 100_000;
        let s0 = async_speedup_degraded(n, 128, t, 0.0);
        let s10 = async_speedup_degraded(n, 128, t, 0.1);
        let s50 = async_speedup_degraded(n, 128, t, 0.5);
        assert!(s10 < s0 && s50 < s10);
        let ratio = s10 / s0;
        assert!(
            (0.85..0.95).contains(&ratio),
            "10% failures should cost ~10%: {ratio}"
        );
        // Efficiency is charged against provisioned P, so it degrades too.
        assert!(async_efficiency_degraded(n, 128, t, 0.1) < async_efficiency(n, 128, t));
    }

    #[test]
    fn effective_processors_floors_at_master_plus_worker() {
        assert_eq!(effective_processors(128, 0.0), 128.0);
        assert!((effective_processors(128, 0.25) - 96.0).abs() < 1e-12);
        assert_eq!(effective_processors(4, 1.0), 2.0);
        assert_eq!(effective_processors(2, 0.9), 2.0);
    }

    #[test]
    fn sync_knee_is_where_terms_balance() {
        let t = TimingParams::new(0.01, 0.000_006, 0.000_006);
        let k = sync_knee(t);
        assert!(k > 10.0 && k < 100.0, "knee = {k}");
    }
}
