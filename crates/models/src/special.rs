//! Special functions backing the distribution CDFs: error function and the
//! regularized incomplete gamma function.

use crate::dist::ln_gamma;

/// Error function via the Abramowitz & Stegun 7.1.26 rational
/// approximation refined with one series/continued-fraction evaluation —
/// here implemented with the incomplete-gamma identity
/// `erf(x) = P(1/2, x²)` for |err| < 1e-12.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let sign = x.signum();
    sign * regularized_gamma_p(0.5, x * x)
}

/// Complementary error function.
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

/// Standard normal CDF.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x)/Γ(a)`,
/// computed by series expansion for `x < a + 1` and by the continued
/// fraction of `Q(a, x)` otherwise (Numerical Recipes §6.2).
pub fn regularized_gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "shape must be positive");
    assert!(x >= 0.0, "argument must be non-negative");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_continued_fraction(a, x)
    }
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_q_continued_fraction(a: f64, x: f64) -> f64 {
    // Modified Lentz's method.
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-15);
        assert!((erf(1.0) - 0.842_700_792_949_714_9).abs() < 1e-10);
        assert!((erf(2.0) - 0.995_322_265_018_952_7).abs() < 1e-10);
        assert!((erf(-1.0) + 0.842_700_792_949_714_9).abs() < 1e-10);
        assert!((erfc(1.0) - 0.157_299_207_050_285_1).abs() < 1e-10);
    }

    #[test]
    fn normal_cdf_symmetry_and_known_points() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-14);
        assert!((normal_cdf(1.96) - 0.975_002_104_85).abs() < 1e-8);
        for z in [0.3, 1.1, 2.7] {
            assert!((normal_cdf(z) + normal_cdf(-z) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn gamma_p_known_values() {
        // P(1, x) = 1 − e^{−x}.
        for x in [0.1, 1.0, 3.0, 10.0] {
            assert!((regularized_gamma_p(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-12);
        }
        // P(a, 0) = 0, P(a, ∞) → 1.
        assert_eq!(regularized_gamma_p(2.5, 0.0), 0.0);
        assert!((regularized_gamma_p(2.5, 100.0) - 1.0).abs() < 1e-12);
        // χ²₂ median: P(1, ln 2) = 0.5.
        assert!((regularized_gamma_p(1.0, std::f64::consts::LN_2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn gamma_p_is_monotone_in_x() {
        let mut last = 0.0;
        for i in 1..50 {
            let p = regularized_gamma_p(3.3, i as f64 * 0.3);
            assert!(p >= last);
            last = p;
        }
    }
}
