//! Maximum-likelihood distribution fitting with log-likelihood model
//! selection — the Rust equivalent of the paper's R-based pipeline
//! (§IV-B): *"the sampled data [is fit] to various distributions;
//! subsequently, the log-likelihood is calculated for each distribution to
//! determine which best fits the sampled data."*

use crate::dist::{digamma, trigamma, Dist};

/// Families the fitter can try.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Uniform on the sample range.
    Uniform,
    /// Exponential.
    Exponential,
    /// Normal.
    Normal,
    /// Log-normal (positive samples only).
    LogNormal,
    /// Gamma (positive samples only).
    Gamma,
    /// Weibull (positive samples only).
    Weibull,
}

impl Family {
    /// All supported families.
    pub fn all() -> [Family; 6] {
        [
            Family::Uniform,
            Family::Exponential,
            Family::Normal,
            Family::LogNormal,
            Family::Gamma,
            Family::Weibull,
        ]
    }
}

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleStats {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased sample variance.
    pub variance: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl SampleStats {
    /// Computes statistics; panics on an empty sample.
    pub fn of(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "empty sample");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let variance = if n > 1 {
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Self {
            n,
            mean,
            variance,
            min,
            max,
        }
    }

    /// Standard deviation.
    pub fn sd(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Coefficient of variation (σ/μ); 0 for zero mean.
    pub fn cv(&self) -> f64 {
        if self.mean != 0.0 {
            self.sd() / self.mean
        } else {
            0.0
        }
    }
}

/// MLE fit of one family. Returns `None` when the family's support cannot
/// hold the sample (e.g. log-normal with non-positive values) or the MLE
/// degenerates.
pub fn fit_family(family: Family, samples: &[f64]) -> Option<Dist> {
    let stats = SampleStats::of(samples);
    match family {
        Family::Uniform => (stats.max > stats.min).then_some(Dist::Uniform {
            lo: stats.min,
            hi: stats.max,
        }),
        Family::Exponential => {
            (stats.min >= 0.0 && stats.mean > 0.0).then_some(Dist::Exponential {
                rate: 1.0 / stats.mean,
            })
        }
        Family::Normal => {
            // MLE variance (biased) rather than the unbiased estimator.
            // Guard against numerically-constant samples whose variance is
            // pure floating-point noise.
            let var_mle = stats.variance * (stats.n - 1).max(1) as f64 / stats.n as f64;
            let noise_floor = (stats.mean.abs() * 1e-9).powi(2).max(f64::MIN_POSITIVE);
            (var_mle > noise_floor).then_some(Dist::Normal {
                mean: stats.mean,
                sd: var_mle.sqrt(),
            })
        }
        Family::LogNormal => {
            if stats.min <= 0.0 {
                return None;
            }
            let logs: Vec<f64> = samples.iter().map(|x| x.ln()).collect();
            let ls = SampleStats::of(&logs);
            let var_mle = ls.variance * (ls.n - 1).max(1) as f64 / ls.n as f64;
            let noise_floor = (ls.mean.abs() * 1e-9).powi(2).max(f64::MIN_POSITIVE);
            (var_mle > noise_floor).then_some(Dist::LogNormal {
                mu: ls.mean,
                sigma: var_mle.sqrt(),
            })
        }
        Family::Gamma => fit_gamma(samples, stats),
        Family::Weibull => fit_weibull(samples, stats),
    }
}

/// Gamma MLE: Newton iteration on the shape via the digamma equation
/// `ln k − ψ(k) = ln(mean) − mean(ln x)`.
fn fit_gamma(samples: &[f64], stats: SampleStats) -> Option<Dist> {
    if stats.min <= 0.0 || stats.mean <= 0.0 {
        return None;
    }
    let mean_ln = samples.iter().map(|x| x.ln()).sum::<f64>() / samples.len() as f64;
    let s = stats.mean.ln() - mean_ln;
    if s <= 1e-12 {
        return None; // numerically constant sample
    }
    // Minka's initializer, then Newton on f(k) = ln k − ψ(k) − s.
    let mut k = (3.0 - s + ((s - 3.0) * (s - 3.0) + 24.0 * s).sqrt()) / (12.0 * s);
    for _ in 0..60 {
        let f = k.ln() - digamma(k) - s;
        let fp = 1.0 / k - trigamma(k);
        let step = f / fp;
        let next = k - step;
        let next = if next <= 0.0 { k / 2.0 } else { next };
        if (next - k).abs() < 1e-12 * k {
            k = next;
            break;
        }
        k = next;
    }
    (k.is_finite() && k > 0.0).then_some(Dist::Gamma {
        shape: k,
        scale: stats.mean / k,
    })
}

/// Weibull MLE: Newton iteration on the shape `k` solving
/// `Σ xᵏ ln x / Σ xᵏ − 1/k = mean(ln x)`.
fn fit_weibull(samples: &[f64], stats: SampleStats) -> Option<Dist> {
    if stats.min <= 0.0 {
        return None;
    }
    let n = samples.len() as f64;
    let mean_ln = samples.iter().map(|x| x.ln()).sum::<f64>() / n;
    // Method-of-moments-flavoured initializer from the log-variance.
    let var_ln = samples
        .iter()
        .map(|x| (x.ln() - mean_ln) * (x.ln() - mean_ln))
        .sum::<f64>()
        / n;
    if var_ln <= 1e-18 {
        return None; // numerically constant sample
    }
    let mut k = 1.2 / var_ln.sqrt().max(1e-9);
    for _ in 0..100 {
        let (mut s0, mut s1, mut s2) = (0.0, 0.0, 0.0);
        for &x in samples {
            let xk = x.powf(k);
            let lx = x.ln();
            s0 += xk;
            s1 += xk * lx;
            s2 += xk * lx * lx;
        }
        let f = s1 / s0 - 1.0 / k - mean_ln;
        let fp = (s2 * s0 - s1 * s1) / (s0 * s0) + 1.0 / (k * k);
        let next = k - f / fp;
        let next = if next <= 0.0 { k / 2.0 } else { next };
        if (next - k).abs() < 1e-12 * k {
            k = next;
            break;
        }
        k = next;
    }
    if !(k.is_finite() && k > 0.0) {
        return None;
    }
    let scale = (samples.iter().map(|x| x.powf(k)).sum::<f64>() / n).powf(1.0 / k);
    Some(Dist::Weibull { shape: k, scale })
}

/// One fitted candidate with its log-likelihood.
#[derive(Debug, Clone)]
pub struct FitResult {
    /// Family tried.
    pub family: Family,
    /// MLE-fitted distribution.
    pub dist: Dist,
    /// Log-likelihood of the sample under `dist`.
    pub log_likelihood: f64,
}

/// Fits every requested family and ranks by log-likelihood (best first),
/// dropping families whose support can't hold the sample or whose
/// likelihood is non-finite.
pub fn fit_all(samples: &[f64], families: &[Family]) -> Vec<FitResult> {
    let mut out: Vec<FitResult> = families
        .iter()
        .filter_map(|&family| {
            let dist = fit_family(family, samples)?;
            let ll = dist.log_likelihood(samples);
            ll.is_finite().then_some(FitResult {
                family,
                dist,
                log_likelihood: ll,
            })
        })
        .collect();
    out.sort_by(|a, b| b.log_likelihood.total_cmp(&a.log_likelihood));
    out
}

/// Goodness-of-fit report for one fitted distribution.
#[derive(Debug, Clone)]
pub struct GoodnessOfFit {
    /// Akaike information criterion `2k − 2 ln L` (lower is better).
    pub aic: f64,
    /// Bayesian information criterion `k ln n − 2 ln L` (lower is better).
    pub bic: f64,
    /// Kolmogorov–Smirnov statistic `sup |F_n(x) − F(x)|`.
    pub ks_statistic: f64,
}

/// Computes AIC, BIC and the Kolmogorov–Smirnov statistic of `dist`
/// against `samples`.
pub fn goodness_of_fit(dist: &Dist, samples: &[f64]) -> GoodnessOfFit {
    assert!(!samples.is_empty());
    let n = samples.len() as f64;
    let k = dist.num_parameters() as f64;
    let ll = dist.log_likelihood(samples);
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    // KS: compare F against the empirical CDF on both sides of each jump.
    let mut ks: f64 = 0.0;
    for (i, &x) in sorted.iter().enumerate() {
        let f = dist.cdf(x);
        let lo = i as f64 / n;
        let hi = (i + 1) as f64 / n;
        ks = ks.max((f - lo).abs()).max((hi - f).abs());
    }
    GoodnessOfFit {
        aic: 2.0 * k - 2.0 * ll,
        bic: k * n.ln() - 2.0 * ll,
        ks_statistic: ks,
    }
}

/// As [`fit_all`] but ranked by a chosen criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionCriterion {
    /// Raw log-likelihood (the paper's criterion).
    LogLikelihood,
    /// AIC (penalizes parameter count).
    Aic,
    /// BIC (stronger parameter penalty).
    Bic,
    /// Kolmogorov–Smirnov distance.
    KolmogorovSmirnov,
}

/// Fits every family and ranks by `criterion` (best first).
pub fn fit_ranked(
    samples: &[f64],
    families: &[Family],
    criterion: SelectionCriterion,
) -> Vec<(FitResult, GoodnessOfFit)> {
    let mut out: Vec<(FitResult, GoodnessOfFit)> = fit_all(samples, families)
        .into_iter()
        .map(|f| {
            let gof = goodness_of_fit(&f.dist, samples);
            (f, gof)
        })
        .collect();
    out.sort_by(|a, b| {
        let key = |f: &FitResult, g: &GoodnessOfFit| match criterion {
            SelectionCriterion::LogLikelihood => -f.log_likelihood,
            SelectionCriterion::Aic => g.aic,
            SelectionCriterion::Bic => g.bic,
            SelectionCriterion::KolmogorovSmirnov => g.ks_statistic,
        };
        key(&a.0, &a.1).total_cmp(&key(&b.0, &b.1))
    });
    out
}

/// Fits all families and returns the best. A (numerically) constant sample
/// short-circuits to a point mass — no continuous density models it and
/// likelihoods degenerate.
pub fn best_fit(samples: &[f64]) -> Dist {
    let stats = SampleStats::of(samples);
    if stats.sd() <= stats.mean.abs().max(f64::MIN_POSITIVE) * 1e-9 {
        return Dist::Constant(stats.mean);
    }
    fit_all(samples, &Family::all())
        .into_iter()
        .next()
        .map(|f| f.dist)
        .unwrap_or(Dist::Constant(stats.mean))
}

#[cfg(test)]
mod tests {
    use super::*;
    use borg_core::rng::SplitMix64;

    fn draw(d: Dist, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SplitMix64::new(seed).derive("distfit-tests");
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn stats_basics() {
        let s = SampleStats::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert_eq!(s.mean, 2.5);
        assert!((s.variance - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!(s.cv() > 0.0);
    }

    #[test]
    fn normal_fit_recovers_parameters() {
        let xs = draw(
            Dist::Normal {
                mean: 10.0,
                sd: 2.0,
            },
            20_000,
            1,
        );
        let d = fit_family(Family::Normal, &xs).unwrap();
        if let Dist::Normal { mean, sd } = d {
            assert!((mean - 10.0).abs() < 0.1);
            assert!((sd - 2.0).abs() < 0.1);
        } else {
            panic!("wrong family");
        }
    }

    #[test]
    fn exponential_fit_recovers_rate() {
        let xs = draw(Dist::Exponential { rate: 4.0 }, 20_000, 2);
        if let Dist::Exponential { rate } = fit_family(Family::Exponential, &xs).unwrap() {
            assert!((rate - 4.0).abs() < 0.15, "rate = {rate}");
        } else {
            panic!("wrong family");
        }
    }

    #[test]
    fn gamma_fit_recovers_parameters() {
        let xs = draw(
            Dist::Gamma {
                shape: 3.0,
                scale: 0.5,
            },
            20_000,
            3,
        );
        if let Dist::Gamma { shape, scale } = fit_family(Family::Gamma, &xs).unwrap() {
            assert!((shape - 3.0).abs() < 0.15, "shape = {shape}");
            assert!((scale - 0.5).abs() < 0.05, "scale = {scale}");
        } else {
            panic!("wrong family");
        }
    }

    #[test]
    fn weibull_fit_recovers_parameters() {
        let xs = draw(
            Dist::Weibull {
                shape: 1.8,
                scale: 2.5,
            },
            20_000,
            4,
        );
        if let Dist::Weibull { shape, scale } = fit_family(Family::Weibull, &xs).unwrap() {
            assert!((shape - 1.8).abs() < 0.1, "shape = {shape}");
            assert!((scale - 2.5).abs() < 0.1, "scale = {scale}");
        } else {
            panic!("wrong family");
        }
    }

    #[test]
    fn lognormal_fit_recovers_parameters() {
        let xs = draw(
            Dist::LogNormal {
                mu: -2.0,
                sigma: 0.3,
            },
            20_000,
            5,
        );
        if let Dist::LogNormal { mu, sigma } = fit_family(Family::LogNormal, &xs).unwrap() {
            assert!((mu + 2.0).abs() < 0.02);
            assert!((sigma - 0.3).abs() < 0.02);
        } else {
            panic!("wrong family");
        }
    }

    #[test]
    fn model_selection_picks_the_generator() {
        // For each generating family, the ranked fit should put the true
        // family first (or an equivalent-likelihood cousin within noise).
        let cases = [
            (Family::Normal, Dist::Normal { mean: 8.0, sd: 0.8 }),
            (Family::Exponential, Dist::Exponential { rate: 10.0 }),
            (
                Family::Gamma,
                Dist::Gamma {
                    shape: 9.0,
                    scale: 0.01,
                },
            ),
        ];
        for (i, (family, d)) in cases.into_iter().enumerate() {
            let xs = draw(d, 10_000, 100 + i as u64);
            let ranked = fit_all(&xs, &Family::all());
            assert!(!ranked.is_empty());
            let best_ll = ranked[0].log_likelihood;
            let true_ll = ranked
                .iter()
                .find(|f| f.family == family)
                .expect("true family missing from ranking")
                .log_likelihood;
            // The generator must be within a whisker of the winner.
            assert!(
                true_ll >= best_ll - 0.005 * best_ll.abs().max(1.0) - 10.0,
                "{family:?} badly ranked: {true_ll} vs winner {best_ll}"
            );
        }
    }

    #[test]
    fn negative_samples_exclude_positive_families() {
        let xs = vec![-1.0, 0.5, 2.0, -0.3];
        assert!(fit_family(Family::LogNormal, &xs).is_none());
        assert!(fit_family(Family::Gamma, &xs).is_none());
        assert!(fit_family(Family::Weibull, &xs).is_none());
        assert!(fit_family(Family::Exponential, &xs).is_none());
        assert!(fit_family(Family::Normal, &xs).is_some());
    }

    #[test]
    fn constant_sample_falls_back_to_constant() {
        let xs = vec![0.01; 50];
        match best_fit(&xs) {
            Dist::Constant(c) => assert!((c - 0.01).abs() < 1e-12),
            other => panic!("expected a point mass, got {other:?}"),
        }
    }

    #[test]
    fn ks_statistic_is_small_for_the_true_model() {
        let truth = Dist::Normal { mean: 3.0, sd: 0.5 };
        let xs = draw(truth, 5_000, 21);
        let gof = goodness_of_fit(&truth, &xs);
        // KS critical value at α = 0.01 is ≈ 1.63/√n ≈ 0.023.
        assert!(gof.ks_statistic < 0.025, "KS = {}", gof.ks_statistic);
        let wrong = Dist::Exponential { rate: 1.0 / 3.0 };
        let gof_wrong = goodness_of_fit(&wrong, &xs);
        assert!(
            gof_wrong.ks_statistic > 0.2,
            "KS = {}",
            gof_wrong.ks_statistic
        );
    }

    #[test]
    fn aic_and_bic_penalize_parameters() {
        let xs = draw(Dist::Exponential { rate: 2.0 }, 2_000, 22);
        let exp = fit_family(Family::Exponential, &xs).unwrap();
        let gof = goodness_of_fit(&exp, &xs);
        // AIC = 2k − 2 ln L with k = 1; BIC uses ln n ≈ 7.6 > 2.
        let ll = exp.log_likelihood(&xs);
        assert!((gof.aic - (2.0 - 2.0 * ll)).abs() < 1e-9);
        assert!(gof.bic > gof.aic);
    }

    #[test]
    fn ranked_fit_orders_by_criterion() {
        let xs = draw(
            Dist::Gamma {
                shape: 3.0,
                scale: 0.2,
            },
            4_000,
            23,
        );
        for criterion in [
            SelectionCriterion::LogLikelihood,
            SelectionCriterion::Aic,
            SelectionCriterion::Bic,
            SelectionCriterion::KolmogorovSmirnov,
        ] {
            let ranked = fit_ranked(&xs, &Family::all(), criterion);
            assert!(!ranked.is_empty());
            // Winner's KS must be sane under every criterion.
            assert!(ranked[0].1.ks_statistic < 0.1, "{criterion:?}");
            // Ordering must actually be sorted.
            let keys: Vec<f64> = ranked
                .iter()
                .map(|(f, g)| match criterion {
                    SelectionCriterion::LogLikelihood => -f.log_likelihood,
                    SelectionCriterion::Aic => g.aic,
                    SelectionCriterion::Bic => g.bic,
                    SelectionCriterion::KolmogorovSmirnov => g.ks_statistic,
                })
                .collect();
            assert!(
                keys.windows(2).all(|w| w[0] <= w[1]),
                "{criterion:?}: {keys:?}"
            );
        }
    }

    #[test]
    fn best_fit_on_timing_like_data() {
        // Timing data shaped like the paper's T_F: Normal(0.01, 0.001).
        let xs = draw(Dist::normal_cv(0.01, 0.1), 5_000, 6);
        let best = best_fit(&xs);
        // Mean must be preserved whatever family wins.
        assert!((best.mean() - 0.01).abs() < 2e-4, "{best:?}");
    }
}
