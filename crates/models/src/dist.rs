//! Probability distributions for timing models: sampling, log-density, and
//! moments.
//!
//! The paper measures `T_A`, `T_C`, `T_F` on the target system, fits the
//! samples to candidate distributions in R, and selects the best by
//! log-likelihood (§IV-B). This module provides the distribution zoo
//! (implemented in-tree — see DESIGN.md §6), [`crate::distfit`] the fitting
//! machinery.

use rand::Rng;
use rand::RngCore;

/// Natural log of the gamma function (Lanczos approximation, |err| < 1e-13).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma needs positive argument, got {x}");
    // Lanczos g = 7, n = 9 coefficients.
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Digamma function ψ(x) = d/dx ln Γ(x) (recurrence + asymptotic series).
pub fn digamma(mut x: f64) -> f64 {
    assert!(x > 0.0, "digamma needs positive argument");
    let mut result = 0.0;
    while x < 10.0 {
        result -= 1.0 / x;
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result + x.ln()
        - 0.5 * inv
        - inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 * (1.0 / 240.0))))
}

/// Trigamma function ψ'(x) (recurrence + asymptotic series).
pub fn trigamma(mut x: f64) -> f64 {
    assert!(x > 0.0, "trigamma needs positive argument");
    let mut result = 0.0;
    while x < 10.0 {
        result += 1.0 / (x * x);
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result + inv * (1.0 + inv * (0.5 + inv * (1.0 / 6.0 - inv2 * (1.0 / 30.0 - inv2 / 42.0))))
}

/// Samples a standard normal deviate (Marsaglia polar method).
pub fn standard_normal(rng: &mut dyn RngCore) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Samples Gamma(shape, 1) via Marsaglia & Tsang (2000).
fn standard_gamma(shape: f64, rng: &mut dyn RngCore) -> f64 {
    debug_assert!(shape > 0.0);
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a + 1) · U^{1/a}.
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        return standard_gamma(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// A univariate distribution over (a subset of) the reals.
///
/// All timing quantities are non-negative; the `Normal` variant therefore
/// samples with rejection of negative values (irrelevant for the paper's
/// CV = 0.1 regime, ~10σ from zero, but it keeps simulated times legal for
/// any parameters).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Dist {
    /// Point mass at a constant (the analytical model's assumption).
    Constant(f64),
    /// Uniform on `[lo, hi]`.
    Uniform {
        /// Lower endpoint.
        lo: f64,
        /// Upper endpoint.
        hi: f64,
    },
    /// Exponential with rate λ.
    Exponential {
        /// Rate parameter λ (mean 1/λ).
        rate: f64,
    },
    /// Normal(μ, σ), truncated to non-negative values when sampling.
    Normal {
        /// Mean μ.
        mean: f64,
        /// Standard deviation σ.
        sd: f64,
    },
    /// Log-normal: `exp(N(μ, σ))`.
    LogNormal {
        /// Mean of the underlying normal.
        mu: f64,
        /// Standard deviation of the underlying normal.
        sigma: f64,
    },
    /// Gamma with shape k and scale θ.
    Gamma {
        /// Shape k.
        shape: f64,
        /// Scale θ (mean kθ).
        scale: f64,
    },
    /// Weibull with shape k and scale λ.
    Weibull {
        /// Shape k.
        shape: f64,
        /// Scale λ.
        scale: f64,
    },
}

impl Dist {
    /// A Normal with the given mean and coefficient of variation — the
    /// paper's controlled-delay specification (`T_F` with CV 0.1).
    pub fn normal_cv(mean: f64, cv: f64) -> Self {
        assert!(mean >= 0.0 && cv >= 0.0);
        if cv == 0.0 {
            Dist::Constant(mean)
        } else {
            Dist::Normal {
                mean,
                sd: cv * mean,
            }
        }
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        match *self {
            Dist::Constant(c) => c,
            Dist::Uniform { lo, hi } => {
                if hi > lo {
                    rng.gen_range(lo..hi)
                } else {
                    lo
                }
            }
            Dist::Exponential { rate } => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                -u.ln() / rate
            }
            Dist::Normal { mean, sd } => {
                if sd == 0.0 {
                    return mean.max(0.0);
                }
                loop {
                    let x = mean + sd * standard_normal(rng);
                    if x >= 0.0 {
                        return x;
                    }
                }
            }
            Dist::LogNormal { mu, sigma } => (mu + sigma * standard_normal(rng)).exp(),
            Dist::Gamma { shape, scale } => standard_gamma(shape, rng) * scale,
            Dist::Weibull { shape, scale } => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                scale * (-u.ln()).powf(1.0 / shape)
            }
        }
    }

    /// Theoretical mean.
    pub fn mean(&self) -> f64 {
        match *self {
            Dist::Constant(c) => c,
            Dist::Uniform { lo, hi } => 0.5 * (lo + hi),
            Dist::Exponential { rate } => 1.0 / rate,
            Dist::Normal { mean, .. } => mean,
            Dist::LogNormal { mu, sigma } => (mu + 0.5 * sigma * sigma).exp(),
            Dist::Gamma { shape, scale } => shape * scale,
            Dist::Weibull { shape, scale } => scale * (ln_gamma(1.0 + 1.0 / shape)).exp(),
        }
    }

    /// Theoretical variance.
    pub fn variance(&self) -> f64 {
        match *self {
            Dist::Constant(_) => 0.0,
            Dist::Uniform { lo, hi } => (hi - lo) * (hi - lo) / 12.0,
            Dist::Exponential { rate } => 1.0 / (rate * rate),
            Dist::Normal { sd, .. } => sd * sd,
            Dist::LogNormal { mu, sigma } => {
                let s2 = sigma * sigma;
                (s2.exp() - 1.0) * (2.0 * mu + s2).exp()
            }
            Dist::Gamma { shape, scale } => shape * scale * scale,
            Dist::Weibull { shape, scale } => {
                let g1 = (ln_gamma(1.0 + 1.0 / shape)).exp();
                let g2 = (ln_gamma(1.0 + 2.0 / shape)).exp();
                scale * scale * (g2 - g1 * g1)
            }
        }
    }

    /// Log-density at `x` (−∞ outside the support; `Constant` has no
    /// density and returns −∞ except exactly at its atom, where it returns
    /// +∞ — constants are excluded from likelihood-based model selection).
    pub fn ln_pdf(&self, x: f64) -> f64 {
        match *self {
            Dist::Constant(c) => {
                if x == c {
                    f64::INFINITY
                } else {
                    f64::NEG_INFINITY
                }
            }
            Dist::Uniform { lo, hi } => {
                if x >= lo && x <= hi && hi > lo {
                    -(hi - lo).ln()
                } else {
                    f64::NEG_INFINITY
                }
            }
            Dist::Exponential { rate } => {
                if x >= 0.0 {
                    rate.ln() - rate * x
                } else {
                    f64::NEG_INFINITY
                }
            }
            Dist::Normal { mean, sd } => {
                if sd <= 0.0 {
                    return f64::NEG_INFINITY;
                }
                let z = (x - mean) / sd;
                -0.5 * z * z - sd.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln()
            }
            Dist::LogNormal { mu, sigma } => {
                if x <= 0.0 || sigma <= 0.0 {
                    return f64::NEG_INFINITY;
                }
                let z = (x.ln() - mu) / sigma;
                -0.5 * z * z - x.ln() - sigma.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln()
            }
            Dist::Gamma { shape, scale } => {
                if x <= 0.0 {
                    return f64::NEG_INFINITY;
                }
                (shape - 1.0) * x.ln() - x / scale - ln_gamma(shape) - shape * scale.ln()
            }
            Dist::Weibull { shape, scale } => {
                if x < 0.0 {
                    return f64::NEG_INFINITY;
                }
                let z = x / scale;
                shape.ln() - scale.ln() + (shape - 1.0) * z.ln() - z.powf(shape)
            }
        }
    }

    /// Sum of log-densities over a sample (the fit criterion of §IV-B).
    pub fn log_likelihood(&self, samples: &[f64]) -> f64 {
        samples.iter().map(|&x| self.ln_pdf(x)).sum()
    }

    /// Cumulative distribution function `F(x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        use crate::special::{normal_cdf, regularized_gamma_p};
        match *self {
            Dist::Constant(c) => {
                if x >= c {
                    1.0
                } else {
                    0.0
                }
            }
            Dist::Uniform { lo, hi } => {
                if hi <= lo {
                    if x >= lo {
                        1.0
                    } else {
                        0.0
                    }
                } else {
                    ((x - lo) / (hi - lo)).clamp(0.0, 1.0)
                }
            }
            Dist::Exponential { rate } => {
                if x <= 0.0 {
                    0.0
                } else {
                    1.0 - (-rate * x).exp()
                }
            }
            Dist::Normal { mean, sd } => {
                if sd <= 0.0 {
                    return if x >= mean { 1.0 } else { 0.0 };
                }
                normal_cdf((x - mean) / sd)
            }
            Dist::LogNormal { mu, sigma } => {
                if x <= 0.0 {
                    0.0
                } else {
                    normal_cdf((x.ln() - mu) / sigma)
                }
            }
            Dist::Gamma { shape, scale } => {
                if x <= 0.0 {
                    0.0
                } else {
                    regularized_gamma_p(shape, x / scale)
                }
            }
            Dist::Weibull { shape, scale } => {
                if x <= 0.0 {
                    0.0
                } else {
                    1.0 - (-(x / scale).powf(shape)).exp()
                }
            }
        }
    }

    /// Number of free parameters (for AIC/BIC).
    pub fn num_parameters(&self) -> usize {
        match self {
            Dist::Constant(_) | Dist::Exponential { .. } => 1,
            _ => 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use borg_core::rng::SplitMix64;

    fn rng() -> rand::rngs::StdRng {
        SplitMix64::new(7).derive("dist-tests")
    }

    fn moments(d: Dist, n: usize) -> (f64, f64) {
        let mut r = rng();
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        (mean, var)
    }

    #[test]
    fn ln_gamma_known_values() {
        assert!((ln_gamma(1.0)).abs() < 1e-12);
        assert!((ln_gamma(2.0)).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn digamma_known_values() {
        // ψ(1) = −γ (Euler–Mascheroni).
        assert!((digamma(1.0) + 0.577_215_664_901_532_9).abs() < 1e-10);
        // ψ(2) = 1 − γ.
        assert!((digamma(2.0) - (1.0 - 0.577_215_664_901_532_9)).abs() < 1e-10);
        // Recurrence ψ(x+1) = ψ(x) + 1/x.
        for x in [0.3, 1.7, 4.2] {
            assert!((digamma(x + 1.0) - digamma(x) - 1.0 / x).abs() < 1e-10);
        }
    }

    #[test]
    fn trigamma_known_values() {
        // ψ'(1) = π²/6.
        let pi2_6 = std::f64::consts::PI.powi(2) / 6.0;
        assert!((trigamma(1.0) - pi2_6).abs() < 1e-9);
        // Recurrence ψ'(x+1) = ψ'(x) − 1/x².
        for x in [0.4, 2.3] {
            assert!((trigamma(x + 1.0) - trigamma(x) + 1.0 / (x * x)).abs() < 1e-9);
        }
    }

    #[test]
    fn sample_moments_match_theory() {
        let cases = [
            Dist::Uniform { lo: 1.0, hi: 3.0 },
            Dist::Exponential { rate: 2.0 },
            Dist::Normal { mean: 5.0, sd: 0.5 },
            Dist::LogNormal {
                mu: -1.0,
                sigma: 0.4,
            },
            Dist::Gamma {
                shape: 3.0,
                scale: 0.5,
            },
            Dist::Gamma {
                shape: 0.5,
                scale: 2.0,
            },
            Dist::Weibull {
                shape: 1.5,
                scale: 2.0,
            },
        ];
        for d in cases {
            let (m, v) = moments(d, 100_000);
            let (tm, tv) = (d.mean(), d.variance());
            assert!(
                (m - tm).abs() < 0.03 * tm.abs().max(0.3),
                "{d:?}: mean {m} vs {tm}"
            );
            assert!(
                (v - tv).abs() < 0.1 * tv.max(0.05),
                "{d:?}: var {v} vs {tv}"
            );
        }
    }

    #[test]
    fn constant_and_cv_zero() {
        let d = Dist::normal_cv(0.01, 0.0);
        assert_eq!(d, Dist::Constant(0.01));
        let mut r = rng();
        assert_eq!(d.sample(&mut r), 0.01);
        assert_eq!(d.variance(), 0.0);
    }

    #[test]
    fn normal_cv_matches_paper_spec() {
        let d = Dist::normal_cv(0.01, 0.1);
        let (m, v) = moments(d, 100_000);
        assert!((m - 0.01).abs() < 1e-4);
        assert!((v.sqrt() - 0.001).abs() < 1e-4);
    }

    #[test]
    fn normal_sampling_is_nonnegative() {
        let d = Dist::Normal { mean: 0.1, sd: 1.0 };
        let mut r = rng();
        for _ in 0..5000 {
            assert!(d.sample(&mut r) >= 0.0);
        }
    }

    #[test]
    fn ln_pdf_integrates_to_one() {
        // Crude trapezoid check that each density integrates to ~1.
        let cases = [
            (Dist::Exponential { rate: 1.5 }, 0.0, 15.0),
            (Dist::Normal { mean: 2.0, sd: 0.7 }, -4.0, 8.0),
            (
                Dist::LogNormal {
                    mu: 0.0,
                    sigma: 0.5,
                },
                1e-9,
                12.0,
            ),
            (
                Dist::Gamma {
                    shape: 2.5,
                    scale: 0.8,
                },
                1e-9,
                25.0,
            ),
            (
                Dist::Weibull {
                    shape: 2.0,
                    scale: 1.0,
                },
                1e-9,
                8.0,
            ),
        ];
        for (d, lo, hi) in cases {
            let n = 40_000;
            let h = (hi - lo) / n as f64;
            let integral: f64 = (0..=n)
                .map(|i| {
                    let x = lo + i as f64 * h;
                    let w = if i == 0 || i == n { 0.5 } else { 1.0 };
                    w * d.ln_pdf(x).exp()
                })
                .sum::<f64>()
                * h;
            assert!(
                (integral - 1.0).abs() < 1e-3,
                "{d:?} integrates to {integral}"
            );
        }
    }

    #[test]
    fn cdf_matches_empirical_distribution() {
        let mut r = rng();
        let cases = [
            Dist::Uniform { lo: 0.5, hi: 2.0 },
            Dist::Exponential { rate: 3.0 },
            Dist::Normal { mean: 4.0, sd: 0.8 },
            Dist::LogNormal {
                mu: 0.2,
                sigma: 0.4,
            },
            Dist::Gamma {
                shape: 2.2,
                scale: 0.7,
            },
            Dist::Weibull {
                shape: 1.4,
                scale: 1.5,
            },
        ];
        for d in cases {
            let n = 40_000;
            let mut xs: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            // Compare the model CDF against the empirical CDF at quartiles.
            for q in [0.25, 0.5, 0.75] {
                let x = xs[(q * n as f64) as usize];
                let f = d.cdf(x);
                assert!((f - q).abs() < 0.02, "{d:?}: CDF({x}) = {f}, expected ~{q}");
            }
        }
    }

    #[test]
    fn cdf_boundaries() {
        assert_eq!(Dist::Constant(2.0).cdf(1.9), 0.0);
        assert_eq!(Dist::Constant(2.0).cdf(2.0), 1.0);
        assert_eq!(Dist::Exponential { rate: 1.0 }.cdf(-1.0), 0.0);
        assert_eq!(
            Dist::Gamma {
                shape: 2.0,
                scale: 1.0
            }
            .cdf(0.0),
            0.0
        );
        assert_eq!(Dist::Uniform { lo: 0.0, hi: 1.0 }.cdf(2.0), 1.0);
    }

    #[test]
    fn parameter_counts() {
        assert_eq!(Dist::Constant(1.0).num_parameters(), 1);
        assert_eq!(Dist::Exponential { rate: 1.0 }.num_parameters(), 1);
        assert_eq!(Dist::Normal { mean: 0.0, sd: 1.0 }.num_parameters(), 2);
        assert_eq!(
            Dist::Weibull {
                shape: 1.0,
                scale: 1.0
            }
            .num_parameters(),
            2
        );
    }

    #[test]
    fn log_likelihood_prefers_generating_distribution() {
        let truth = Dist::Gamma {
            shape: 4.0,
            scale: 0.25,
        };
        let mut r = rng();
        let xs: Vec<f64> = (0..5000).map(|_| truth.sample(&mut r)).collect();
        let ll_truth = truth.log_likelihood(&xs);
        let ll_exp = Dist::Exponential { rate: 1.0 }.log_likelihood(&xs);
        assert!(ll_truth > ll_exp);
    }
}
