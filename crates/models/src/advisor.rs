//! The topology advisor — the paper's stated application of the
//! simulation model (§VI): *"Our parallel performance simulation model
//! can be used to determine the size of these subsets to maximize
//! efficiency"*, and (§VII) to pick "the ideal processor count to
//! maximize efficiency".
//!
//! Given a timing model and a processor budget, the advisor evaluates the
//! queueing simulation across candidate configurations and recommends:
//!
//! * [`recommend_processor_count`] — the single-master processor count
//!   with the best predicted efficiency (Table II's "peak" column);
//! * [`recommend_partition`] — how to split a fixed budget into equal
//!   concurrently-running master-slave instances (the hierarchical/island
//!   layout of §VI–§VII).

use crate::perfsim::{simulate_async, PerfSimConfig, TimingModel};

/// A scored single-master configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessorRecommendation {
    /// Recommended total processors (1 master + workers).
    pub processors: u32,
    /// Predicted efficiency at that count.
    pub efficiency: f64,
    /// Predicted parallel time.
    pub parallel_time: f64,
}

/// Searches processor counts `2..=max_processors` (log-spaced refinement)
/// for the best predicted efficiency·speedup trade-off.
///
/// `objective` weighs speed against efficiency: 0.0 = pure efficiency
/// (recommends small P), 1.0 = pure speed (recommends the time-optimal
/// P). The paper's "ideal processor count to maximize efficiency" is
/// `objective = 0` *subject to* actually using parallelism, so candidates
/// below 3 processors (the Eq. 4 break-even) are excluded.
pub fn recommend_processor_count(
    timing: TimingModel,
    max_processors: u32,
    evaluations: u64,
    objective: f64,
    seed: u64,
) -> ProcessorRecommendation {
    assert!(max_processors >= 3, "need at least 3 processors (Eq. 4)");
    assert!((0.0..=1.0).contains(&objective));
    let mut candidates: Vec<u32> = Vec::new();
    let mut p = 3u32;
    while p <= max_processors {
        candidates.push(p);
        p = ((p as f64) * 1.3).ceil() as u32;
    }
    if candidates.last().copied() != Some(max_processors) {
        candidates.push(max_processors);
    }

    let serial_time = {
        let means = timing.means();
        crate::analytical::serial_time(evaluations, means)
    };
    let score_candidate = |p: u32| -> (f64, ProcessorRecommendation) {
        let pred = simulate_async(&PerfSimConfig {
            processors: p,
            evaluations,
            timing,
            seed: seed ^ u64::from(p),
        });
        // Normalized speed score: fraction of the best possible speedup.
        let speed = (serial_time / pred.parallel_time) / f64::from(max_processors);
        let score = objective * speed + (1.0 - objective) * pred.efficiency;
        let rec = ProcessorRecommendation {
            processors: p,
            efficiency: pred.efficiency,
            parallel_time: pred.parallel_time,
        };
        (score, rec)
    };
    // `candidates` always holds at least P = 3 (asserted above), so the
    // running best starts from the first candidate — no empty case.
    let mut best = score_candidate(candidates[0]);
    for &p in &candidates[1..] {
        let scored = score_candidate(p);
        if scored.0 > best.0 {
            best = scored;
        }
    }
    best.1
}

/// A scored island partition of a fixed processor budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionRecommendation {
    /// Number of equal master-slave instances.
    pub islands: u32,
    /// Processors per instance.
    pub processors_per_island: u32,
    /// Predicted aggregate efficiency (all instances work concurrently on
    /// disjoint shares of the evaluation budget).
    pub efficiency: f64,
    /// Predicted makespan (time for every instance to finish its share).
    pub parallel_time: f64,
}

/// Recommends how many equal master-slave instances to run on a budget of
/// `total_processors`, each receiving `evaluations / islands` of the
/// budget — §VI's hierarchical-topology sizing question.
pub fn recommend_partition(
    timing: TimingModel,
    total_processors: u32,
    evaluations: u64,
    seed: u64,
) -> PartitionRecommendation {
    assert!(total_processors >= 2);
    let serial = crate::analytical::serial_time(evaluations, timing.means());
    let score_partition = |k: u32| -> PartitionRecommendation {
        let per = total_processors / k;
        let share = evaluations.div_ceil(u64::from(k));
        let pred = simulate_async(&PerfSimConfig {
            processors: per,
            evaluations: share.max(1),
            timing,
            seed: seed ^ u64::from(k) << 16,
        });
        // All K instances run concurrently on the same makespan.
        let makespan = pred.parallel_time;
        PartitionRecommendation {
            islands: k,
            processors_per_island: per,
            efficiency: serial / (f64::from(total_processors) * makespan),
            parallel_time: makespan,
        }
    };
    // K = 1 is always feasible (total_processors >= 2 asserted above), so
    // the running best starts there — no empty case.
    let mut best = score_partition(1);
    let mut k = 2u32;
    while total_processors / k >= 2 {
        let rec = score_partition(k);
        if rec.efficiency > best.efficiency {
            best = rec;
        }
        k *= 2;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytical::{processor_upper_bound, TimingParams};

    fn timing(t_f: f64) -> TimingModel {
        TimingModel::controlled_delay(t_f, 0.1, 0.000_006, 0.000_030)
    }

    #[test]
    fn efficiency_objective_stays_below_saturation() {
        // Below saturation async efficiency *grows* with P (the (P−1)/P
        // master-idle share shrinks), so the pure-efficiency optimum sits
        // just under the Eq. 3 bound — never past it.
        let rec = recommend_processor_count(timing(0.01), 1024, 10_000, 0.0, 1);
        let p_ub = processor_upper_bound(TimingParams::new(0.01, 0.000_006, 0.000_030));
        assert!(rec.efficiency > 0.9, "rec {rec:?}");
        assert!(
            f64::from(rec.processors) < p_ub,
            "pure efficiency must not cross saturation: {rec:?} (P_UB = {p_ub})"
        );
    }

    #[test]
    fn speed_objective_recommends_near_saturation() {
        let rec = recommend_processor_count(timing(0.01), 1024, 10_000, 1.0, 2);
        let p_ub = processor_upper_bound(TimingParams::new(0.01, 0.000_006, 0.000_030));
        assert!(
            f64::from(rec.processors) > 0.5 * p_ub,
            "speed objective should approach saturation: {rec:?} (P_UB = {p_ub})"
        );
    }

    #[test]
    fn balanced_objective_sits_between() {
        let lo = recommend_processor_count(timing(0.01), 1024, 10_000, 0.0, 3).processors;
        let hi = recommend_processor_count(timing(0.01), 1024, 10_000, 1.0, 3).processors;
        let mid = recommend_processor_count(timing(0.01), 1024, 10_000, 0.5, 3).processors;
        assert!(lo <= mid && mid <= hi, "{lo} <= {mid} <= {hi} violated");
    }

    #[test]
    fn partition_prefers_one_island_for_expensive_evaluations() {
        // T_F = 0.1 s: a single master handles 1024 processors easily.
        let rec = recommend_partition(timing(0.1), 256, 20_000, 4);
        assert_eq!(rec.islands, 1, "{rec:?}");
        assert!(rec.efficiency > 0.9);
    }

    #[test]
    fn partition_splits_when_one_master_saturates() {
        // T_F = 1 ms at 1024 processors: P_UB ≈ 24, so the advisor should
        // recommend many instances.
        let rec = recommend_partition(timing(0.001), 1024, 50_000, 5);
        assert!(rec.islands >= 16, "{rec:?}");
        assert!(
            rec.efficiency > 0.5,
            "partitioning should rescue efficiency: {rec:?}"
        );
        // Sanity: the single-master layout is terrible here.
        let single = simulate_async(&PerfSimConfig {
            processors: 1024,
            evaluations: 50_000,
            timing: timing(0.001),
            seed: 6,
        });
        assert!(single.efficiency < 0.1);
    }

    #[test]
    fn partition_covers_the_full_budget() {
        let rec = recommend_partition(timing(0.001), 96, 10_000, 7);
        assert!(rec.islands * rec.processors_per_island <= 96);
        assert!(rec.islands * rec.processors_per_island >= 96 / 2);
    }
}
