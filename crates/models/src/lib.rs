//! # borg-models
//!
//! The paper's scalability models:
//!
//! * [`analytical`] — closed forms: serial time (Eq. 1), asynchronous
//!   parallel time (Eq. 2), processor-count bounds (Eqs. 3–4), Cantú-Paz's
//!   synchronous model (Eq. 6), speedup/efficiency algebra;
//! * [`dist`] / [`distfit`] — the timing-distribution zoo and the
//!   MLE + log-likelihood fitting pipeline (the paper's R step);
//! * [`queueing`] — the master-slave discrete-event engine with pluggable
//!   hooks (shared with the full-algorithm executors in `borg-parallel`);
//! * [`perfsim`] — the paper's SimPy-equivalent simulation model built on
//!   sampled timing distributions.
//!
//! ```
//! use borg_models::prelude::*;
//!
//! // Eq. 3: the paper's worked example — master saturation at P ≈ 244.
//! let t = TimingParams::new(0.01, 0.000_006, 0.000_029);
//! assert!((processor_upper_bound(t) - 244.0).abs() < 1.0);
//!
//! // Below saturation the simulation model agrees with Eq. 2 …
//! let cfg = PerfSimConfig {
//!     processors: 16,
//!     evaluations: 5_000,
//!     timing: TimingModel::controlled_delay(0.01, 0.1, 0.000_006, 0.000_029),
//!     seed: 1,
//! };
//! let sim = simulate_async(&cfg);
//! let eq2 = async_parallel_time(5_000, 16, t);
//! assert!(relative_error(sim.parallel_time, eq2) < 0.02);
//! // … and predicts high efficiency.
//! assert!(sim.efficiency > 0.9);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod advisor;
pub mod analytical;
pub mod dist;
pub mod distfit;
pub mod perfsim;
pub mod queueing;
pub mod special;

/// Commonly used items.
pub mod prelude {
    pub use crate::advisor::{
        recommend_partition, recommend_processor_count, PartitionRecommendation,
        ProcessorRecommendation,
    };
    pub use crate::analytical::{
        async_efficiency, async_parallel_time, async_parallel_time_saturating, async_speedup,
        processor_lower_bound, processor_upper_bound, relative_error, serial_time, sync_efficiency,
        sync_parallel_time, sync_speedup, TimingParams,
    };
    pub use crate::dist::Dist;
    pub use crate::distfit::{
        best_fit, fit_all, fit_family, fit_ranked, goodness_of_fit, Family, GoodnessOfFit,
        SampleStats, SelectionCriterion,
    };
    pub use crate::perfsim::{
        simulate_async, simulate_async_mean, simulate_sync, PerfPrediction, PerfSimConfig,
        TimingModel,
    };
    pub use crate::queueing::{run_async, run_sync, MasterSlaveHooks, RunOutcome};
}
