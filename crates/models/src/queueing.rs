//! The master-slave queueing engine shared by the performance simulation
//! model (this crate) and the full-algorithm virtual-time executors
//! (`borg-parallel`).
//!
//! The engine reproduces the event structure of the paper's SimPy model
//! (§IV-B): workers evaluate, then *request* the master; the master is an
//! exclusive FIFO resource *held* for `T_C + T_A + T_C` per interaction
//! (receive, process + produce, send), after which the worker is
//! *activated* again. What happens inside `T_A`/`T_F` is delegated to a
//! [`MasterSlaveHooks`] implementation: the performance model just samples
//! durations, the executors in `borg-parallel` run the real Borg MOEA.

use borg_desim::queue::EventQueue;
use borg_desim::trace::{Activity, Actor, SpanTrace};

/// Problem-specific behaviour plugged into the queueing engine.
///
/// The engine calls, per interaction: `consume(w)` (master absorbs `w`'s
/// result), `produce(w)` (master creates `w`'s next work item),
/// `evaluation_time(w)` (how long `w`'s new evaluation takes) and
/// `comm_time()` for each one-way message. Each returns the simulated
/// duration of that step.
pub trait MasterSlaveHooks {
    /// Master-side time to produce the next work item for `worker`.
    /// `now` is the simulated time at which production starts.
    fn produce(&mut self, worker: usize, now: f64) -> f64;

    /// Worker-side time to evaluate the most recently produced work item.
    fn evaluation_time(&mut self, worker: usize) -> f64;

    /// Master-side time to process the result returned by `worker`.
    /// `now` is the simulated time at which processing starts.
    fn consume(&mut self, worker: usize, now: f64) -> f64;

    /// One-way master↔worker message time.
    fn comm_time(&mut self) -> f64;
}

/// Aggregate outcome of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Total simulated elapsed time (until the N-th result is processed).
    pub elapsed: f64,
    /// Results processed (equals the configured N).
    pub completed: u64,
    /// Total time the master spent busy (communication + algorithm).
    pub master_busy: f64,
    /// Master utilization: busy / elapsed.
    pub master_utilization: f64,
    /// Mean time results waited for the master after arriving.
    pub mean_wait: f64,
    /// Worst wait.
    pub max_wait: f64,
    /// Longest master queue observed (results waiting simultaneously).
    pub max_queue: usize,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct ResultReady {
    worker: usize,
}

/// Runs the asynchronous master-slave simulation until `n` results have
/// been consumed.
///
/// `workers` is `P − 1`; the master does not evaluate in the asynchronous
/// topology (it is saturated with bookkeeping, matching the paper's
/// implementation). Activity spans are recorded into `trace` when enabled.
pub fn run_async<H: MasterSlaveHooks>(
    hooks: &mut H,
    workers: usize,
    n: u64,
    trace: &mut SpanTrace,
) -> RunOutcome {
    assert!(workers >= 1, "need at least one worker");
    assert!(n >= 1, "need at least one evaluation");

    let mut queue: EventQueue<ResultReady> = EventQueue::new();
    let mut master_free_at = 0.0f64;
    let mut master_busy = 0.0f64;
    let mut completed = 0u64;
    let mut wait_sum = 0.0f64;
    let mut wait_max = 0.0f64;

    // Initial seeding: the master produces and ships one work item per
    // worker, serially.
    for w in 0..workers {
        let ta = hooks.produce(w, master_free_at);
        let tc = hooks.comm_time();
        trace.record(
            Actor::Master,
            Activity::Algorithm,
            master_free_at,
            master_free_at + ta,
        );
        trace.record(
            Actor::Master,
            Activity::Communication,
            master_free_at + ta,
            master_free_at + ta + tc,
        );
        let start_eval = master_free_at + ta + tc;
        master_busy += ta + tc;
        master_free_at = start_eval;
        let tf = hooks.evaluation_time(w);
        trace.record(
            Actor::Worker(w),
            Activity::Evaluation,
            start_eval,
            start_eval + tf,
        );
        queue.schedule_at(start_eval + tf, ResultReady { worker: w });
    }

    let mut max_queue = 0usize;
    while let Some((ready_at, ev)) = queue.pop() {
        let w = ev.worker;
        let grant = master_free_at.max(ready_at);
        let wait = grant - ready_at;
        wait_sum += wait;
        wait_max = wait_max.max(wait);

        // Queue length at grant time: every result ready at or before the
        // grant is necessarily already in the event heap (time only moves
        // forward), so counting them is exact. Sampled to bound the O(W)
        // scan cost on large topologies.
        if completed.is_multiple_of(32) {
            max_queue = max_queue.max(1 + queue.count_at_or_before(grant));
        }

        let tc_in = hooks.comm_time();
        trace.record(Actor::Worker(w), Activity::Idle, ready_at, grant);
        trace.record(Actor::Master, Activity::Communication, grant, grant + tc_in);
        let ta_c = hooks.consume(w, grant + tc_in);
        completed += 1;

        if completed >= n {
            let end = grant + tc_in + ta_c;
            trace.record(Actor::Master, Activity::Algorithm, grant + tc_in, end);
            master_busy += tc_in + ta_c;
            let elapsed = end;
            return RunOutcome {
                elapsed,
                completed,
                master_busy,
                master_utilization: master_busy / elapsed,
                mean_wait: wait_sum / completed as f64,
                max_wait: wait_max,
                max_queue,
            };
        }

        let ta_p = hooks.produce(w, grant + tc_in + ta_c);
        let tc_out = hooks.comm_time();
        let hold_end = grant + tc_in + ta_c + ta_p + tc_out;
        trace.record(
            Actor::Master,
            Activity::Algorithm,
            grant + tc_in,
            grant + tc_in + ta_c + ta_p,
        );
        trace.record(
            Actor::Master,
            Activity::Communication,
            grant + tc_in + ta_c + ta_p,
            hold_end,
        );
        master_busy += tc_in + ta_c + ta_p + tc_out;
        master_free_at = hold_end;

        let tf = hooks.evaluation_time(w);
        trace.record(
            Actor::Worker(w),
            Activity::Evaluation,
            hold_end,
            hold_end + tf,
        );
        queue.schedule_at(hold_end + tf, ResultReady { worker: w });
    }
    unreachable!("event queue drained before N results were consumed");
}

/// Runs a generational synchronous master-slave simulation (Cantú-Paz's
/// topology, Fig. 1) until at least `n` evaluations have completed.
///
/// Per generation the master serially produces and sends one solution per
/// worker, evaluates one solution itself, receives results serially as
/// they arrive, then serially processes all `P` offspring before the next
/// generation begins (hence `T_A^sync ≈ P · T_A`).
pub fn run_sync<H: MasterSlaveHooks>(
    hooks: &mut H,
    workers: usize,
    n: u64,
    trace: &mut SpanTrace,
) -> RunOutcome {
    assert!(workers >= 1);
    assert!(n >= 1);
    let p = workers + 1; // master evaluates too
    let mut now = 0.0f64;
    let mut master_busy = 0.0f64;
    let mut completed = 0u64;

    while completed < n {
        let gen_start = now;
        // Sends (serialized on the master).
        let mut finish_times: Vec<(usize, f64)> = Vec::with_capacity(workers);
        for w in 0..workers {
            let ta = hooks.produce(w, now);
            let tc = hooks.comm_time();
            trace.record(Actor::Master, Activity::Algorithm, now, now + ta);
            trace.record(
                Actor::Master,
                Activity::Communication,
                now + ta,
                now + ta + tc,
            );
            master_busy += ta + tc;
            now += ta + tc;
            let tf = hooks.evaluation_time(w);
            trace.record(Actor::Worker(w), Activity::Evaluation, now, now + tf);
            finish_times.push((w, now + tf));
        }
        // Master's own offspring (produced and evaluated locally).
        let ta_own = hooks.produce(workers, now);
        let tf_own = hooks.evaluation_time(workers);
        trace.record(Actor::Master, Activity::Algorithm, now, now + ta_own);
        trace.record(
            Actor::Master,
            Activity::Evaluation,
            now + ta_own,
            now + ta_own + tf_own,
        );
        master_busy += ta_own + tf_own;
        now += ta_own + tf_own;

        // Receives, serialized in completion order, no earlier than the
        // master finishing its own evaluation.
        finish_times.sort_by(|a, b| a.1.total_cmp(&b.1));
        for &(w, t_done) in &finish_times {
            let start = now.max(t_done);
            trace.record(Actor::Worker(w), Activity::Idle, t_done, start);
            let tc = hooks.comm_time();
            trace.record(Actor::Master, Activity::Communication, start, start + tc);
            master_busy += tc;
            now = start + tc;
        }

        // Synchronous processing of the whole generation.
        for w in 0..=workers {
            let ta = hooks.consume(w, now);
            trace.record(Actor::Master, Activity::Algorithm, now, now + ta);
            master_busy += ta;
            now += ta;
        }
        completed += p as u64;
        debug_assert!(now > gen_start);
    }

    RunOutcome {
        elapsed: now,
        completed,
        master_busy,
        master_utilization: master_busy / now,
        mean_wait: 0.0,
        max_wait: 0.0,
        max_queue: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytical::{async_parallel_time, TimingParams};

    /// Constant-time hooks matching the analytical model's assumptions.
    struct ConstHooks {
        t: TimingParams,
    }

    impl MasterSlaveHooks for ConstHooks {
        fn produce(&mut self, _w: usize, _now: f64) -> f64 {
            // Per-interaction T_A is charged on consume; production of the
            // *initial* work items still costs T_A each.
            0.0
        }
        fn evaluation_time(&mut self, _w: usize) -> f64 {
            self.t.t_f
        }
        fn consume(&mut self, _w: usize, _now: f64) -> f64 {
            self.t.t_a
        }
        fn comm_time(&mut self) -> f64 {
            self.t.t_c
        }
    }

    #[test]
    fn unsaturated_async_matches_eq2() {
        // P = 17 (16 workers), T_F large enough that the master never
        // saturates: the DES must land on Eq. (2) up to pipeline fill.
        let t = TimingParams::new(0.01, 0.000_006, 0.000_03);
        let n = 20_000;
        let mut hooks = ConstHooks { t };
        let mut trace = SpanTrace::disabled();
        let out = run_async(&mut hooks, 16, n, &mut trace);
        let predicted = async_parallel_time(n, 17, t);
        let err = (out.elapsed - predicted).abs() / predicted;
        assert!(
            err < 0.01,
            "DES {} vs Eq.2 {} (err {err})",
            out.elapsed,
            predicted
        );
        assert_eq!(out.completed, n);
        // Workers start clustered (seeding spaces them only T_C apart) and
        // respace over the first few cycles; steady-state waits are tiny
        // relative to T_F.
        assert!(
            out.mean_wait < t.t_f / 10.0,
            "unexpected steady-state contention: mean wait {}",
            out.mean_wait
        );
    }

    #[test]
    fn saturated_async_is_bounded_by_master_throughput() {
        // Tiny T_F, many workers: throughput ≈ 1/(2 T_C + T_A), so the
        // elapsed time decouples from Eq. (2) — the analytical model's
        // failure mode the paper demonstrates.
        let t = TimingParams::new(0.000_1, 0.000_006, 0.000_03);
        let n = 10_000;
        let mut hooks = ConstHooks { t };
        let mut trace = SpanTrace::disabled();
        let out = run_async(&mut hooks, 511, n, &mut trace);
        let saturated = n as f64 * (2.0 * t.t_c + t.t_a);
        assert!(
            (out.elapsed - saturated).abs() / saturated < 0.05,
            "DES {} vs saturation bound {}",
            out.elapsed,
            saturated
        );
        let eq2 = async_parallel_time(n, 512, t);
        assert!(
            out.elapsed > 5.0 * eq2,
            "analytical model should be way off"
        );
        assert!(out.master_utilization > 0.99);
        assert!(out.mean_wait > 0.0);
    }

    #[test]
    fn async_elapsed_has_efficiency_peak_shape() {
        // Sweep P and check time first drops ~linearly then flattens.
        let t = TimingParams::new(0.001, 0.000_006, 0.000_03);
        let n = 5_000;
        let elapsed: Vec<f64> = [4usize, 8, 16, 64, 256]
            .iter()
            .map(|&w| {
                let mut hooks = ConstHooks { t };
                run_async(&mut hooks, w, n, &mut SpanTrace::disabled()).elapsed
            })
            .collect();
        assert!(
            elapsed[1] < elapsed[0] * 0.6,
            "doubling workers should ~halve time"
        );
        // Past saturation adding workers cannot speed things up.
        assert!(elapsed[4] > 0.9 * elapsed[3]);
        // And the saturated time cannot drop below the master bound.
        assert!(elapsed[4] >= n as f64 * (2.0 * t.t_c + t.t_a) * 0.99);
    }

    #[test]
    fn sync_matches_eq6_shape() {
        // Constant times, no straggling: generation time =
        // (P−1)(T_A + T_C) + T_A + T_F + (P−1) T_C + P·T_A… the Cantú-Paz
        // abstraction folds this into N/P (T_F + P T_C + P T_A). Check the
        // DES lands within a modest factor and scales the same way.
        let t = TimingParams::new(0.01, 0.000_006, 0.000_006);
        let n = 9_600;
        for workers in [7usize, 31] {
            let p = workers + 1;
            let mut hooks = ConstHooks { t };
            let out = run_sync(&mut hooks, workers, n, &mut SpanTrace::disabled());
            let predicted = crate::analytical::sync_parallel_time(n, p as u32, t);
            let ratio = out.elapsed / predicted;
            assert!(
                (0.7..1.5).contains(&ratio),
                "P={p}: DES {} vs Eq.6 {} (ratio {ratio})",
                out.elapsed,
                predicted
            );
        }
    }

    #[test]
    fn sync_suffers_from_stragglers_async_does_not() {
        // High-variance T_F: the synchronous generation waits for the
        // slowest worker each round; the asynchronous pipeline does not.
        use crate::dist::Dist;
        use borg_core::rng::SplitMix64;

        struct NoisyHooks {
            tf: Dist,
            t: TimingParams,
            rng: rand::rngs::StdRng,
        }
        impl MasterSlaveHooks for NoisyHooks {
            fn produce(&mut self, _w: usize, _now: f64) -> f64 {
                0.0
            }
            fn evaluation_time(&mut self, _w: usize) -> f64 {
                self.tf.sample(&mut self.rng)
            }
            fn consume(&mut self, _w: usize, _now: f64) -> f64 {
                self.t.t_a
            }
            fn comm_time(&mut self) -> f64 {
                self.t.t_c
            }
        }

        let t = TimingParams::new(0.01, 0.000_006, 0.000_006);
        let n = 3_200;
        let workers = 15;
        let make = |seed: u64, cv: f64| NoisyHooks {
            tf: Dist::normal_cv(0.01, cv),
            t,
            rng: SplitMix64::new(seed).derive("noisy"),
        };
        let sync_low = run_sync(&mut make(1, 0.05), workers, n, &mut SpanTrace::disabled()).elapsed;
        let sync_high = run_sync(&mut make(1, 1.0), workers, n, &mut SpanTrace::disabled()).elapsed;
        let async_low =
            run_async(&mut make(2, 0.05), workers, n, &mut SpanTrace::disabled()).elapsed;
        let async_high =
            run_async(&mut make(2, 1.0), workers, n, &mut SpanTrace::disabled()).elapsed;
        let sync_penalty = sync_high / sync_low;
        let async_penalty = async_high / async_low;
        assert!(
            sync_penalty > 1.5,
            "sync should slow with variance: {sync_penalty}"
        );
        assert!(
            async_penalty < sync_penalty * 0.75,
            "async penalty {async_penalty} vs sync {sync_penalty}"
        );
    }

    #[test]
    fn trace_records_all_activity_kinds() {
        let t = TimingParams::new(0.001, 0.000_1, 0.000_2);
        let mut hooks = ConstHooks { t };
        let mut trace = SpanTrace::new();
        run_async(&mut hooks, 3, 20, &mut trace);
        let spans = trace.spans();
        assert!(spans.iter().any(|s| s.activity == Activity::Evaluation));
        assert!(spans.iter().any(|s| s.activity == Activity::Communication));
        assert!(spans.iter().any(|s| s.activity == Activity::Algorithm));
        assert!(spans.iter().any(|s| matches!(s.actor, Actor::Worker(_))));
        assert!(spans.iter().any(|s| s.actor == Actor::Master));
    }

    #[test]
    fn deterministic_given_same_hooks() {
        let t = TimingParams::new(0.005, 0.000_01, 0.000_05);
        let a = run_async(&mut ConstHooks { t }, 9, 500, &mut SpanTrace::disabled());
        let b = run_async(&mut ConstHooks { t }, 9, 500, &mut SpanTrace::disabled());
        assert_eq!(a, b);
    }
}
