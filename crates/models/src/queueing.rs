//! The master-slave queueing simulation shared by the performance model
//! (this crate) and the full-algorithm virtual-time executors
//! (`borg-parallel`).
//!
//! The simulation reproduces the event structure of the paper's SimPy
//! model (§IV-B): workers evaluate, then *request* the master; the master
//! is an exclusive FIFO resource *held* for `T_C + T_A + T_C` per
//! interaction (receive, process + produce, send), after which the worker
//! is *activated* again. What happens inside `T_A`/`T_F` is delegated to a
//! [`MasterSlaveHooks`] implementation: the performance model just samples
//! durations, the executors in `borg-parallel` run the real Borg MOEA.
//!
//! The *protocol* itself — dispatch bookkeeping, deadline reissue,
//! duplicate suppression, liveness beliefs — is not implemented here: it
//! lives in the executor-agnostic [`borg_protocol::MasterEngine`]. This
//! module contributes the DES-time adapters: [`Transport`]
//! implementations that map the engine's decisions onto an
//! [`EventQueue`], charging simulated master/worker time through the
//! hooks and consulting the [`FaultPlan`] for injected fates.

use borg_desim::fault::{DispatchFate, FaultKind, FaultLog, FaultPlan, MessageFate};
use borg_desim::queue::EventQueue;
use borg_desim::trace::{Activity, Actor};
use borg_obs::Recorder;
use borg_protocol::{Clock, Command, EngineConfig, Event, MasterEngine, Transport};

pub use borg_protocol::RecoveryPolicy;

/// Problem-specific behaviour plugged into the queueing engine.
///
/// The engine calls, per interaction: `consume(w)` (master absorbs `w`'s
/// result), `produce(w)` (master creates `w`'s next work item),
/// `evaluation_time(w)` (how long `w`'s new evaluation takes) and
/// `comm_time()` for each one-way message. Each returns the simulated
/// duration of that step.
pub trait MasterSlaveHooks {
    /// Master-side time to produce the next work item for `worker`.
    /// `now` is the simulated time at which production starts.
    fn produce(&mut self, worker: usize, now: f64) -> f64;

    /// Worker-side time to evaluate the most recently produced work item.
    fn evaluation_time(&mut self, worker: usize) -> f64;

    /// Master-side time to process the result returned by `worker`.
    /// `now` is the simulated time at which processing starts.
    fn consume(&mut self, worker: usize, now: f64) -> f64;

    /// One-way master↔worker message time.
    fn comm_time(&mut self) -> f64;
}

/// Aggregate outcome of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Total simulated elapsed time (until the N-th result is processed).
    pub elapsed: f64,
    /// Results processed (equals the configured N).
    pub completed: u64,
    /// Total time the master spent busy (communication + algorithm).
    pub master_busy: f64,
    /// Master utilization: busy / elapsed.
    pub master_utilization: f64,
    /// Mean time results waited for the master after arriving.
    pub mean_wait: f64,
    /// Worst wait.
    pub max_wait: f64,
    /// Longest master queue observed (results waiting simultaneously).
    pub max_queue: usize,
    /// Worker evaluations whose results never advanced the run (lost to
    /// crashes, dropped messages, or duplicate suppression). Always 0
    /// without fault injection; stragglers inflate `elapsed` but are
    /// *not* wasted — their results are still consumed.
    pub wasted_nfe: u64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct ResultReady {
    worker: usize,
    eval_id: u64,
}

/// DES adapter for the fault-free asynchronous topology: simulated
/// latencies, no deadlines, no fault plan. The master's consume and the
/// follow-up produce form one contiguous hold, so the open `Algorithm`
/// span started by [`Transport::consume`] is closed by the next
/// [`Transport::dispatch`] (or flushed at run end after the final
/// consume, which has no follow-up).
struct AsyncTransport<'a, H: MasterSlaveHooks, R: Recorder + ?Sized> {
    hooks: &'a mut H,
    rec: &'a R,
    queue: EventQueue<ResultReady>,
    master_free_at: f64,
    master_busy: f64,
    completed: u64,
    wait_sum: f64,
    wait_max: f64,
    max_queue: usize,
    pending_algo: Option<f64>,
}

impl<H: MasterSlaveHooks, R: Recorder + ?Sized> Clock for AsyncTransport<'_, H, R> {
    fn now(&self) -> f64 {
        self.queue.now()
    }
}

impl<H: MasterSlaveHooks, R: Recorder + ?Sized> Transport for AsyncTransport<'_, H, R> {
    fn dispatch(
        &mut self,
        worker: usize,
        eval_id: u64,
        _attempt: u32,
        _seq: u64,
        _log: &mut FaultLog,
    ) -> f64 {
        let start = self.master_free_at;
        let ta = self.hooks.produce(worker, start);
        let tc = self.hooks.comm_time();
        let algo_start = self.pending_algo.take().unwrap_or(start);
        self.rec
            .span(Actor::Master, Activity::Algorithm, algo_start, start + ta);
        self.rec.span(
            Actor::Master,
            Activity::Communication,
            start + ta,
            start + ta + tc,
        );
        let start_eval = start + ta + tc;
        self.master_busy += ta + tc;
        self.master_free_at = start_eval;
        let tf = self.hooks.evaluation_time(worker);
        self.rec.span(
            Actor::Worker(worker),
            Activity::Evaluation,
            start_eval,
            start_eval + tf,
        );
        self.queue
            .schedule_at(start_eval + tf, ResultReady { worker, eval_id });
        f64::INFINITY
    }

    fn consume(&mut self, worker: usize, _eval_id: u64, ready_at: f64) -> f64 {
        let grant = self.master_free_at.max(ready_at);
        let wait = grant - ready_at;
        self.wait_sum += wait;
        self.wait_max = self.wait_max.max(wait);

        // Queue length at grant time: every result ready at or before the
        // grant is necessarily already in the event heap (time only moves
        // forward), so counting them is exact. Sampled to bound the O(W)
        // scan cost on large topologies.
        if self.completed.is_multiple_of(32) {
            self.max_queue = self.max_queue.max(1 + self.queue.count_at_or_before(grant));
        }

        let tc_in = self.hooks.comm_time();
        self.rec
            .span(Actor::Worker(worker), Activity::Idle, ready_at, grant);
        self.rec
            .span(Actor::Master, Activity::Communication, grant, grant + tc_in);
        let ta_c = self.hooks.consume(worker, grant + tc_in);
        self.completed += 1;
        self.pending_algo = Some(grant + tc_in);
        self.master_busy += tc_in + ta_c;
        self.master_free_at = grant + tc_in + ta_c;
        self.master_free_at
    }

    fn absorb_duplicate(&mut self, _worker: usize, _eval_id: u64, _ready_at: f64) -> f64 {
        unreachable!("the fault-free transport never duplicates messages")
    }

    fn ping(&mut self, _worker: usize) -> (f64, f64) {
        unreachable!("the fault-free transport never watches deadlines")
    }

    fn rearm_heartbeat(&mut self, _at: f64) {
        unreachable!("the fault-free policy has no heartbeat")
    }

    fn abandon(&mut self, _eval_id: u64) {
        unreachable!("the fault-free transport never abandons work")
    }
}

/// Runs the asynchronous master-slave simulation until `n` results have
/// been consumed.
///
/// `workers` is `P − 1`; the master does not evaluate in the asynchronous
/// topology (it is saturated with bookkeeping, matching the paper's
/// implementation). Activity spans and engine metrics are emitted through
/// `rec`; pass [`borg_obs::NoopRecorder`] for an uninstrumented run.
pub fn run_async<H: MasterSlaveHooks, R: Recorder + ?Sized>(
    hooks: &mut H,
    workers: usize,
    n: u64,
    rec: &R,
) -> RunOutcome {
    assert!(workers >= 1, "need at least one worker");
    assert!(n >= 1, "need at least one evaluation");

    let mut transport = AsyncTransport {
        hooks,
        rec,
        queue: EventQueue::new(),
        master_free_at: 0.0,
        master_busy: 0.0,
        completed: 0,
        wait_sum: 0.0,
        wait_max: 0.0,
        max_queue: 0,
        pending_algo: None,
    };
    let mut engine = MasterEngine::new(EngineConfig::fault_free_async(workers, n));
    engine.seed(&mut transport, rec);

    while let Some((ready_at, ev)) = transport.queue.pop() {
        engine.handle(
            Event::ResultArrived {
                worker: ev.worker,
                eval_id: ev.eval_id,
                at: ready_at,
            },
            &mut transport,
            rec,
        );
        if engine.finished() {
            break;
        }
    }
    assert!(
        engine.finished(),
        "event queue drained before N results were consumed"
    );
    // The final consume has no follow-up produce: close its span here.
    if let Some(algo_start) = transport.pending_algo.take() {
        transport.rec.span(
            Actor::Master,
            Activity::Algorithm,
            algo_start,
            transport.master_free_at,
        );
    }
    let elapsed = transport.master_free_at;
    rec.gauge("master.busy_seconds", transport.master_busy);
    rec.gauge("master.utilization", transport.master_busy / elapsed);
    RunOutcome {
        elapsed,
        completed: engine.completed(),
        master_busy: transport.master_busy,
        master_utilization: transport.master_busy / elapsed,
        mean_wait: transport.wait_sum / engine.completed() as f64,
        max_wait: transport.wait_max,
        max_queue: transport.max_queue,
        wasted_nfe: 0,
    }
}

/// DES adapter for the generational synchronous topology. Slot indices
/// `0..workers` are real workers (produce + send + remote evaluation);
/// slot `workers` is the master's own offspring (produced and evaluated
/// locally, no communication). Receives serialize on the master in
/// completion order; once the whole generation is in, the batch of
/// consumes runs in slot order — after which the engine's barrier
/// dispatches the next generation.
struct SyncTransport<'a, H: MasterSlaveHooks, R: Recorder + ?Sized> {
    hooks: &'a mut H,
    rec: &'a R,
    queue: EventQueue<ResultReady>,
    workers: usize,
    now: f64,
    master_busy: f64,
    arrivals_in_gen: usize,
}

impl<H: MasterSlaveHooks, R: Recorder + ?Sized> Clock for SyncTransport<'_, H, R> {
    fn now(&self) -> f64 {
        self.now
    }
}

impl<H: MasterSlaveHooks, R: Recorder + ?Sized> Transport for SyncTransport<'_, H, R> {
    fn dispatch(
        &mut self,
        worker: usize,
        eval_id: u64,
        _attempt: u32,
        _seq: u64,
        _log: &mut FaultLog,
    ) -> f64 {
        if worker < self.workers {
            let ta = self.hooks.produce(worker, self.now);
            let tc = self.hooks.comm_time();
            self.rec
                .span(Actor::Master, Activity::Algorithm, self.now, self.now + ta);
            self.rec.span(
                Actor::Master,
                Activity::Communication,
                self.now + ta,
                self.now + ta + tc,
            );
            self.master_busy += ta + tc;
            self.now += ta + tc;
            let tf = self.hooks.evaluation_time(worker);
            self.rec.span(
                Actor::Worker(worker),
                Activity::Evaluation,
                self.now,
                self.now + tf,
            );
            self.queue
                .schedule_at(self.now + tf, ResultReady { worker, eval_id });
        } else {
            // Master's own offspring (produced and evaluated locally).
            let ta = self.hooks.produce(worker, self.now);
            let tf = self.hooks.evaluation_time(worker);
            self.rec
                .span(Actor::Master, Activity::Algorithm, self.now, self.now + ta);
            self.rec.span(
                Actor::Master,
                Activity::Evaluation,
                self.now + ta,
                self.now + ta + tf,
            );
            self.master_busy += ta + tf;
            self.now += ta + tf;
            self.queue
                .schedule_at(self.now, ResultReady { worker, eval_id });
        }
        f64::INFINITY
    }

    fn consume(&mut self, worker: usize, _eval_id: u64, ready_at: f64) -> f64 {
        if worker < self.workers {
            // Receive, serialized on the master, no earlier than the
            // master finishing its own evaluation.
            let start = self.now.max(ready_at);
            self.rec
                .span(Actor::Worker(worker), Activity::Idle, ready_at, start);
            let tc = self.hooks.comm_time();
            self.rec
                .span(Actor::Master, Activity::Communication, start, start + tc);
            self.master_busy += tc;
            self.now = start + tc;
        }
        self.arrivals_in_gen += 1;
        if self.arrivals_in_gen == self.workers + 1 {
            self.arrivals_in_gen = 0;
            // Synchronous processing of the whole generation.
            for w in 0..=self.workers {
                let ta = self.hooks.consume(w, self.now);
                self.rec
                    .span(Actor::Master, Activity::Algorithm, self.now, self.now + ta);
                self.master_busy += ta;
                self.now += ta;
            }
        }
        self.now
    }

    fn absorb_duplicate(&mut self, _worker: usize, _eval_id: u64, _ready_at: f64) -> f64 {
        unreachable!("the synchronous transport never duplicates messages")
    }

    fn ping(&mut self, _worker: usize) -> (f64, f64) {
        unreachable!("the synchronous transport never watches deadlines")
    }

    fn rearm_heartbeat(&mut self, _at: f64) {
        unreachable!("the synchronous policy has no heartbeat")
    }

    fn abandon(&mut self, _eval_id: u64) {
        unreachable!("the synchronous transport never abandons work")
    }
}

/// Runs a generational synchronous master-slave simulation (Cantú-Paz's
/// topology, Fig. 1) until at least `n` evaluations have completed.
///
/// Per generation the master serially produces and sends one solution per
/// worker, evaluates one solution itself, receives results serially as
/// they arrive, then serially processes all `P` offspring before the next
/// generation begins (hence `T_A^sync ≈ P · T_A`).
pub fn run_sync<H: MasterSlaveHooks, R: Recorder + ?Sized>(
    hooks: &mut H,
    workers: usize,
    n: u64,
    rec: &R,
) -> RunOutcome {
    assert!(workers >= 1);
    assert!(n >= 1);
    let mut transport = SyncTransport {
        hooks,
        rec,
        queue: EventQueue::new(),
        workers,
        now: 0.0,
        master_busy: 0.0,
        arrivals_in_gen: 0,
    };
    // Generation width = workers + the self-evaluating master.
    let mut engine = MasterEngine::new(EngineConfig::sync_generational(workers + 1, n));
    engine.seed(&mut transport, rec);
    while let Some((ready_at, ev)) = transport.queue.pop() {
        engine.handle(
            Event::ResultArrived {
                worker: ev.worker,
                eval_id: ev.eval_id,
                at: ready_at,
            },
            &mut transport,
            rec,
        );
        if engine.finished() {
            break;
        }
    }
    assert!(
        engine.finished(),
        "event queue drained before N results were consumed"
    );
    let elapsed = transport.now;
    rec.gauge("master.busy_seconds", transport.master_busy);
    rec.gauge("master.utilization", transport.master_busy / elapsed);
    RunOutcome {
        elapsed,
        completed: engine.completed(),
        master_busy: transport.master_busy,
        master_utilization: transport.master_busy / elapsed,
        mean_wait: 0.0,
        max_wait: 0.0,
        max_queue: 0,
        wasted_nfe: 0,
    }
}

// ---------------------------------------------------------------------------
// Fault-tolerant asynchronous adapter
// ---------------------------------------------------------------------------

/// Problem-specific behaviour for the *fault-tolerant* asynchronous engine.
///
/// Unlike [`MasterSlaveHooks`], work items are identified by a stable
/// `eval_id` so the master can reissue a lost evaluation to a different
/// worker and suppress duplicate results. Implementations must treat
/// `reissue` as "resend the work item produced for `eval_id`" — the
/// candidate must not change, only the bookkeeping cost may differ.
pub trait FaultTolerantHooks {
    /// Master-side time to produce the *fresh* work item `eval_id` for
    /// `worker`, starting at simulated time `now`.
    fn produce(&mut self, worker: usize, eval_id: u64, now: f64) -> f64;

    /// Master-side time to resend existing work item `eval_id` to
    /// `worker`. Defaults to free: the candidate already exists, only the
    /// message must be rebuilt (charged separately as `comm_time`).
    fn reissue(&mut self, _worker: usize, _eval_id: u64, _now: f64) -> f64 {
        0.0
    }

    /// Worker-side time to evaluate work item `eval_id` on `worker`.
    fn evaluation_time(&mut self, worker: usize, eval_id: u64) -> f64;

    /// Master-side time to process the result of `eval_id` returned by
    /// `worker`, starting at `now`.
    fn consume(&mut self, worker: usize, eval_id: u64, now: f64) -> f64;

    /// One-way master↔worker message time.
    fn comm_time(&mut self) -> f64;
}

/// Outcome of a fault-injected run: the ordinary [`RunOutcome`] plus the
/// recovery ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultyRunOutcome {
    /// Timing/throughput aggregates (with `wasted_nfe` populated).
    pub outcome: RunOutcome,
    /// Injected vs detected vs recovered faults.
    pub fault_log: FaultLog,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum FaultEvent {
    /// A result message reaches the master.
    Arrival { worker: usize, eval_id: u64 },
    /// A worker physically dies (crash or hang strike).
    Death { worker: usize, respawn: bool },
    /// Deadline check for an outstanding evaluation. `deadline_bits`
    /// fingerprints the deadline this event was scheduled for; a reissue
    /// moves the deadline, turning the old event into a stale no-op.
    Timeout {
        eval_id: u64,
        worker: usize,
        deadline_bits: u64,
    },
    /// Background liveness sweep.
    Heartbeat,
    /// A crashed worker rejoins the pool.
    Respawn { worker: usize },
}

/// DES adapter for the fault-tolerant asynchronous topology: the engine's
/// dispatches consult the [`FaultPlan`] for the evaluation's fate (crash,
/// hang, straggle) and the result message's fate (deliver, drop,
/// duplicate), turning each into first-class DES events; deadlines become
/// [`FaultEvent::Timeout`] entries carrying the deadline fingerprint.
struct FaultyTransport<'a, H: FaultTolerantHooks, R: Recorder + ?Sized> {
    hooks: &'a mut H,
    plan: &'a FaultPlan,
    timeout: f64,
    rec: &'a R,
    queue: EventQueue<FaultEvent>,
    master_free_at: f64,
    master_busy: f64,
    wait_sum: f64,
    wait_max: f64,
}

impl<H: FaultTolerantHooks, R: Recorder + ?Sized> FaultyTransport<'_, H, R> {
    /// The evaluation ran to completion on the worker; decide the fate of
    /// the result message.
    fn finish_evaluation(
        &mut self,
        worker: usize,
        eval_id: u64,
        start_eval: f64,
        tf: f64,
        attempts: u32,
        log: &mut FaultLog,
    ) {
        let finish = start_eval + tf;
        self.rec.span(
            Actor::Worker(worker),
            Activity::Evaluation,
            start_eval,
            finish,
        );
        match self.plan.message_fate(eval_id, attempts) {
            MessageFate::Deliver => {
                self.queue
                    .schedule_at(finish, FaultEvent::Arrival { worker, eval_id });
            }
            MessageFate::Drop => {
                log.inject(FaultKind::MessageDrop, worker, eval_id, finish);
                log.wasted_nfe += 1;
            }
            MessageFate::Duplicate => {
                log.inject(FaultKind::MessageDuplicate, worker, eval_id, finish);
                self.queue
                    .schedule_at(finish, FaultEvent::Arrival { worker, eval_id });
                self.queue
                    .schedule_at(finish, FaultEvent::Arrival { worker, eval_id });
            }
        }
    }
}

impl<H: FaultTolerantHooks, R: Recorder + ?Sized> Clock for FaultyTransport<'_, H, R> {
    fn now(&self) -> f64 {
        self.queue.now()
    }
}

impl<H: FaultTolerantHooks, R: Recorder + ?Sized> Transport for FaultyTransport<'_, H, R> {
    fn dispatch(
        &mut self,
        worker: usize,
        eval_id: u64,
        attempt: u32,
        seq: u64,
        log: &mut FaultLog,
    ) -> f64 {
        let start = self.master_free_at.max(self.queue.now());
        let ta = if attempt == 0 {
            self.hooks.produce(worker, eval_id, start)
        } else {
            self.hooks.reissue(worker, eval_id, start)
        };
        let tc = self.hooks.comm_time();
        self.rec
            .span(Actor::Master, Activity::Algorithm, start, start + ta);
        self.rec.span(
            Actor::Master,
            Activity::Communication,
            start + ta,
            start + ta + tc,
        );
        self.master_busy += ta + tc;
        self.master_free_at = start + ta + tc;
        let start_eval = self.master_free_at;
        let tf = self.hooks.evaluation_time(worker, eval_id);

        let deadline = start_eval + self.timeout;
        self.queue.schedule_at(
            deadline,
            FaultEvent::Timeout {
                eval_id,
                worker,
                deadline_bits: deadline.to_bits(),
            },
        );

        match self.plan.dispatch_fate(worker, seq) {
            DispatchFate::Normal => {
                self.finish_evaluation(worker, eval_id, start_eval, tf, attempt, log);
            }
            DispatchFate::Straggle { factor } => {
                log.inject(FaultKind::Straggler, worker, eval_id, start_eval);
                self.finish_evaluation(worker, eval_id, start_eval, tf * factor, attempt, log);
            }
            DispatchFate::CrashDuring { frac } => {
                let at = start_eval + tf * frac;
                log.inject(FaultKind::Crash, worker, eval_id, at);
                log.wasted_nfe += 1;
                let respawn = self.plan.respawn_after().is_some();
                self.queue
                    .schedule_at(at, FaultEvent::Death { worker, respawn });
            }
            DispatchFate::HangDuring => {
                // A hang looks like a crash that never recovers: the
                // worker stops mid-evaluation and never speaks again, so
                // the master quarantines it once detected.
                let at = start_eval + tf * 0.5;
                log.inject(FaultKind::Hang, worker, eval_id, at);
                log.wasted_nfe += 1;
                self.queue.schedule_at(
                    at,
                    FaultEvent::Death {
                        worker,
                        respawn: false,
                    },
                );
            }
        }
        deadline
    }

    fn consume(&mut self, worker: usize, eval_id: u64, ready_at: f64) -> f64 {
        let grant = self.master_free_at.max(ready_at);
        let wait = grant - ready_at;
        self.wait_sum += wait;
        self.wait_max = self.wait_max.max(wait);
        self.rec
            .span(Actor::Worker(worker), Activity::Idle, ready_at, grant);
        let tc_in = self.hooks.comm_time();
        self.rec
            .span(Actor::Master, Activity::Communication, grant, grant + tc_in);
        let ta = self.hooks.consume(worker, eval_id, grant + tc_in);
        self.rec.span(
            Actor::Master,
            Activity::Algorithm,
            grant + tc_in,
            grant + tc_in + ta,
        );
        self.master_busy += tc_in + ta;
        self.master_free_at = grant + tc_in + ta;
        self.master_free_at
    }

    fn absorb_duplicate(&mut self, _worker: usize, _eval_id: u64, ready_at: f64) -> f64 {
        let grant = self.master_free_at.max(ready_at);
        let tc_in = self.hooks.comm_time();
        self.rec
            .span(Actor::Master, Activity::Communication, grant, grant + tc_in);
        self.master_busy += tc_in;
        self.master_free_at = grant + tc_in;
        self.master_free_at
    }

    fn ping(&mut self, _worker: usize) -> (f64, f64) {
        let start = self.master_free_at.max(self.queue.now());
        // One round-trip of master time.
        let ping = self.hooks.comm_time() + self.hooks.comm_time();
        self.rec
            .span(Actor::Master, Activity::Communication, start, start + ping);
        self.master_busy += ping;
        self.master_free_at = start + ping;
        (start, self.master_free_at)
    }

    fn rearm_heartbeat(&mut self, at: f64) {
        self.queue.schedule_at(at, FaultEvent::Heartbeat);
    }

    fn abandon(&mut self, _eval_id: u64) {}
}

/// Runs the asynchronous master-slave simulation under fault injection
/// until `n` results have been consumed (or every worker is lost).
///
/// The master survives worker crashes, hangs, stragglers, and message
/// drop/duplication per `plan`: it tracks a deadline per outstanding
/// evaluation, pings and reissues on timeout, quarantines dead workers
/// (heartbeat sweep), suppresses duplicate results by evaluation id, and
/// re-admits respawned workers — all decided by the shared
/// [`MasterEngine`]. With a quiet plan this engine follows the same event
/// structure as [`run_async`] (timeouts never fire as long as
/// `policy.timeout` exceeds the worst evaluation time).
pub fn run_async_faulty<H: FaultTolerantHooks, R: Recorder + ?Sized>(
    hooks: &mut H,
    workers: usize,
    n: u64,
    plan: &FaultPlan,
    policy: RecoveryPolicy,
    rec: &R,
) -> FaultyRunOutcome {
    run_async_faulty_inner(hooks, workers, n, plan, policy, rec, false).0
}

/// [`run_async_faulty`] with the engine's command trace enabled: also
/// returns every protocol [`Command`] in decision order. The trace is the
/// executor-independent transcript the differential equivalence tests
/// compare across adapters.
pub fn run_async_faulty_traced<H: FaultTolerantHooks, R: Recorder + ?Sized>(
    hooks: &mut H,
    workers: usize,
    n: u64,
    plan: &FaultPlan,
    policy: RecoveryPolicy,
    rec: &R,
) -> (FaultyRunOutcome, Vec<Command>) {
    run_async_faulty_inner(hooks, workers, n, plan, policy, rec, true)
}

fn run_async_faulty_inner<H: FaultTolerantHooks, R: Recorder + ?Sized>(
    hooks: &mut H,
    workers: usize,
    n: u64,
    plan: &FaultPlan,
    policy: RecoveryPolicy,
    rec: &R,
    record_commands: bool,
) -> (FaultyRunOutcome, Vec<Command>) {
    assert!(workers >= 1, "need at least one worker");
    assert!(n >= 1, "need at least one evaluation");
    assert!(
        policy.timeout.is_finite() && policy.timeout > 0.0,
        "recovery timeout must be positive and finite"
    );
    assert!(
        policy.heartbeat_interval.is_finite() && policy.heartbeat_interval > 0.0,
        "heartbeat interval must be positive and finite"
    );
    assert_eq!(
        plan.workers(),
        workers,
        "fault plan sized for a different worker pool"
    );

    let mut transport = FaultyTransport {
        hooks,
        plan,
        timeout: policy.timeout,
        rec,
        queue: EventQueue::new(),
        master_free_at: 0.0,
        master_busy: 0.0,
        wait_sum: 0.0,
        wait_max: 0.0,
    };
    let mut engine = MasterEngine::new(EngineConfig::fault_tolerant_async(workers, n, policy));
    if record_commands {
        engine.record_commands();
    }
    engine.seed(&mut transport, rec);

    while let Some((at, ev)) = transport.queue.pop() {
        let event = match ev {
            FaultEvent::Arrival { worker, eval_id } => Event::ResultArrived {
                worker,
                eval_id,
                at,
            },
            FaultEvent::Death { worker, respawn } => {
                if respawn {
                    let downtime = transport.plan.respawn_after().unwrap_or(0.0);
                    transport
                        .queue
                        .schedule_at(at + downtime, FaultEvent::Respawn { worker });
                }
                Event::WorkerDied {
                    worker,
                    at,
                    will_respawn: respawn,
                    lost_eval: None,
                }
            }
            FaultEvent::Timeout {
                eval_id,
                worker,
                deadline_bits,
            } => Event::DeadlineFired {
                eval_id,
                worker,
                deadline_bits,
                at,
            },
            FaultEvent::Heartbeat => Event::HeartbeatTick { at },
            FaultEvent::Respawn { worker } => Event::WorkerRespawned { worker, at },
        };
        engine.handle(event, &mut transport, rec);
        if engine.finished() {
            break;
        }
    }

    // If the queue drained first (every worker dead, no respawns) the
    // run ends early with however many results were consumed.
    let end = if engine.finished() {
        transport.master_free_at
    } else {
        transport.queue.now()
    };
    let completed = engine.completed();
    let master_busy = transport.master_busy;
    let wait_sum = transport.wait_sum;
    let wait_max = transport.wait_max;
    let commands = engine.take_commands();
    let mut log = engine.into_log();
    log.finalize(end);
    let elapsed = if end > 0.0 { end } else { f64::MIN_POSITIVE };
    rec.gauge("master.busy_seconds", master_busy);
    rec.gauge("master.utilization", master_busy / elapsed);
    let outcome = FaultyRunOutcome {
        outcome: RunOutcome {
            elapsed: end,
            completed,
            master_busy,
            master_utilization: master_busy / elapsed,
            mean_wait: wait_sum / completed.max(1) as f64,
            max_wait: wait_max,
            max_queue: 0, // not tracked under fault injection
            wasted_nfe: log.wasted_nfe,
        },
        fault_log: log,
    };
    (outcome, commands)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytical::{async_parallel_time, TimingParams};
    use borg_obs::{InMemoryRecorder, NoopRecorder};

    /// Constant-time hooks matching the analytical model's assumptions.
    struct ConstHooks {
        t: TimingParams,
    }

    impl MasterSlaveHooks for ConstHooks {
        fn produce(&mut self, _w: usize, _now: f64) -> f64 {
            // Per-interaction T_A is charged on consume; production of the
            // *initial* work items still costs T_A each.
            0.0
        }
        fn evaluation_time(&mut self, _w: usize) -> f64 {
            self.t.t_f
        }
        fn consume(&mut self, _w: usize, _now: f64) -> f64 {
            self.t.t_a
        }
        fn comm_time(&mut self) -> f64 {
            self.t.t_c
        }
    }

    #[test]
    fn unsaturated_async_matches_eq2() {
        // P = 17 (16 workers), T_F large enough that the master never
        // saturates: the DES must land on Eq. (2) up to pipeline fill.
        let t = TimingParams::new(0.01, 0.000_006, 0.000_03);
        let n = 20_000;
        let mut hooks = ConstHooks { t };
        let out = run_async(&mut hooks, 16, n, &NoopRecorder);
        let predicted = async_parallel_time(n, 17, t);
        let err = (out.elapsed - predicted).abs() / predicted;
        assert!(
            err < 0.01,
            "DES {} vs Eq.2 {} (err {err})",
            out.elapsed,
            predicted
        );
        assert_eq!(out.completed, n);
        // Workers start clustered (seeding spaces them only T_C apart) and
        // respace over the first few cycles; steady-state waits are tiny
        // relative to T_F.
        assert!(
            out.mean_wait < t.t_f / 10.0,
            "unexpected steady-state contention: mean wait {}",
            out.mean_wait
        );
    }

    #[test]
    fn saturated_async_is_bounded_by_master_throughput() {
        // Tiny T_F, many workers: throughput ≈ 1/(2 T_C + T_A), so the
        // elapsed time decouples from Eq. (2) — the analytical model's
        // failure mode the paper demonstrates.
        let t = TimingParams::new(0.000_1, 0.000_006, 0.000_03);
        let n = 10_000;
        let mut hooks = ConstHooks { t };
        let out = run_async(&mut hooks, 511, n, &NoopRecorder);
        let saturated = n as f64 * (2.0 * t.t_c + t.t_a);
        assert!(
            (out.elapsed - saturated).abs() / saturated < 0.05,
            "DES {} vs saturation bound {}",
            out.elapsed,
            saturated
        );
        let eq2 = async_parallel_time(n, 512, t);
        assert!(
            out.elapsed > 5.0 * eq2,
            "analytical model should be way off"
        );
        assert!(out.master_utilization > 0.99);
        assert!(out.mean_wait > 0.0);
    }

    #[test]
    fn async_elapsed_has_efficiency_peak_shape() {
        // Sweep P and check time first drops ~linearly then flattens.
        let t = TimingParams::new(0.001, 0.000_006, 0.000_03);
        let n = 5_000;
        let elapsed: Vec<f64> = [4usize, 8, 16, 64, 256]
            .iter()
            .map(|&w| {
                let mut hooks = ConstHooks { t };
                run_async(&mut hooks, w, n, &NoopRecorder).elapsed
            })
            .collect();
        assert!(
            elapsed[1] < elapsed[0] * 0.6,
            "doubling workers should ~halve time"
        );
        // Past saturation adding workers cannot speed things up.
        assert!(elapsed[4] > 0.9 * elapsed[3]);
        // And the saturated time cannot drop below the master bound.
        assert!(elapsed[4] >= n as f64 * (2.0 * t.t_c + t.t_a) * 0.99);
    }

    #[test]
    fn sync_matches_eq6_shape() {
        // Constant times, no straggling: generation time =
        // (P−1)(T_A + T_C) + T_A + T_F + (P−1) T_C + P·T_A… the Cantú-Paz
        // abstraction folds this into N/P (T_F + P T_C + P T_A). Check the
        // DES lands within a modest factor and scales the same way.
        let t = TimingParams::new(0.01, 0.000_006, 0.000_006);
        let n = 9_600;
        for workers in [7usize, 31] {
            let p = workers + 1;
            let mut hooks = ConstHooks { t };
            let out = run_sync(&mut hooks, workers, n, &NoopRecorder);
            let predicted = crate::analytical::sync_parallel_time(n, p as u32, t);
            let ratio = out.elapsed / predicted;
            assert!(
                (0.7..1.5).contains(&ratio),
                "P={p}: DES {} vs Eq.6 {} (ratio {ratio})",
                out.elapsed,
                predicted
            );
        }
    }

    #[test]
    fn sync_suffers_from_stragglers_async_does_not() {
        // High-variance T_F: the synchronous generation waits for the
        // slowest worker each round; the asynchronous pipeline does not.
        use crate::dist::Dist;
        use borg_core::rng::SplitMix64;

        struct NoisyHooks {
            tf: Dist,
            t: TimingParams,
            rng: rand::rngs::StdRng,
        }
        impl MasterSlaveHooks for NoisyHooks {
            fn produce(&mut self, _w: usize, _now: f64) -> f64 {
                0.0
            }
            fn evaluation_time(&mut self, _w: usize) -> f64 {
                self.tf.sample(&mut self.rng)
            }
            fn consume(&mut self, _w: usize, _now: f64) -> f64 {
                self.t.t_a
            }
            fn comm_time(&mut self) -> f64 {
                self.t.t_c
            }
        }

        let t = TimingParams::new(0.01, 0.000_006, 0.000_006);
        let n = 3_200;
        let workers = 15;
        let make = |seed: u64, cv: f64| NoisyHooks {
            tf: Dist::normal_cv(0.01, cv),
            t,
            rng: SplitMix64::new(seed).derive("noisy"),
        };
        let sync_low = run_sync(&mut make(1, 0.05), workers, n, &NoopRecorder).elapsed;
        let sync_high = run_sync(&mut make(1, 1.0), workers, n, &NoopRecorder).elapsed;
        let async_low = run_async(&mut make(2, 0.05), workers, n, &NoopRecorder).elapsed;
        let async_high = run_async(&mut make(2, 1.0), workers, n, &NoopRecorder).elapsed;
        let sync_penalty = sync_high / sync_low;
        let async_penalty = async_high / async_low;
        assert!(
            sync_penalty > 1.5,
            "sync should slow with variance: {sync_penalty}"
        );
        assert!(
            async_penalty < sync_penalty * 0.75,
            "async penalty {async_penalty} vs sync {sync_penalty}"
        );
    }

    #[test]
    fn trace_records_all_activity_kinds() {
        let t = TimingParams::new(0.001, 0.000_1, 0.000_2);
        let mut hooks = ConstHooks { t };
        let rec = InMemoryRecorder::new();
        run_async(&mut hooks, 3, 20, &rec);
        let trace = rec.span_trace();
        let spans = trace.spans();
        assert!(spans.iter().any(|s| s.activity == Activity::Evaluation));
        assert!(spans.iter().any(|s| s.activity == Activity::Communication));
        assert!(spans.iter().any(|s| s.activity == Activity::Algorithm));
        assert!(spans.iter().any(|s| matches!(s.actor, Actor::Worker(_))));
        assert!(spans.iter().any(|s| s.actor == Actor::Master));
        // The recorder also derives the paper's timing histograms.
        let snap = rec.snapshot();
        assert!(snap.histograms["t_f_seconds"].count() >= 20);
        assert!(snap.histograms["t_c_seconds"].count() > 0);
        assert!(snap.histograms["t_a_seconds"].count() > 0);
        assert!(snap.gauges.contains_key("master.utilization"));
    }

    #[test]
    fn deterministic_given_same_hooks() {
        let t = TimingParams::new(0.005, 0.000_01, 0.000_05);
        let a = run_async(&mut ConstHooks { t }, 9, 500, &NoopRecorder);
        let b = run_async(&mut ConstHooks { t }, 9, 500, &NoopRecorder);
        assert_eq!(a, b);
    }

    // --- fault-tolerant engine ---

    use borg_desim::fault::{FaultConfig, FaultPlan, ForcedCrash};

    /// Constant-time hooks for the fault-tolerant engine.
    struct ConstFtHooks {
        t: TimingParams,
    }

    impl FaultTolerantHooks for ConstFtHooks {
        fn produce(&mut self, _w: usize, _id: u64, _now: f64) -> f64 {
            0.0
        }
        fn evaluation_time(&mut self, _w: usize, _id: u64) -> f64 {
            self.t.t_f
        }
        fn consume(&mut self, _w: usize, _id: u64, _now: f64) -> f64 {
            self.t.t_a
        }
        fn comm_time(&mut self) -> f64 {
            self.t.t_c
        }
    }

    fn ft_policy(t: TimingParams) -> RecoveryPolicy {
        RecoveryPolicy::from_expected_eval_time(t.t_f, 4.0)
    }

    #[test]
    fn faulty_engine_with_quiet_plan_matches_run_async() {
        let t = TimingParams::new(0.01, 0.000_006, 0.000_03);
        let n = 5_000;
        let plan = FaultPlan::new(FaultConfig::default(), 16, n, 77);
        let base = run_async(&mut ConstHooks { t }, 16, n, &NoopRecorder);
        let faulty = run_async_faulty(
            &mut ConstFtHooks { t },
            16,
            n,
            &plan,
            ft_policy(t),
            &NoopRecorder,
        );
        assert_eq!(faulty.outcome.completed, n);
        assert_eq!(faulty.fault_log.injected(), 0);
        assert_eq!(faulty.fault_log.reissues, 0);
        assert_eq!(faulty.outcome.wasted_nfe, 0);
        // Identical event structure up to floating noise: the same serial
        // seeding and consume-then-produce master holds.
        let err = (faulty.outcome.elapsed - base.elapsed).abs() / base.elapsed;
        assert!(
            err < 0.01,
            "quiet faulty {} vs base {}",
            faulty.outcome.elapsed,
            base.elapsed
        );
    }

    #[test]
    fn crashes_and_drops_still_complete_the_budget() {
        let t = TimingParams::new(0.01, 0.000_006, 0.000_03);
        let n = 2_000;
        let cfg = FaultConfig {
            crash_rate: 0.25,
            drop_rate: 0.02,
            duplicate_rate: 0.02,
            straggler_rate: 0.01,
            ..FaultConfig::default()
        };
        let plan = FaultPlan::new(cfg, 16, n, 1234);
        assert!(plan.doomed_workers() > 0, "seed should doom someone");
        let out = run_async_faulty(
            &mut ConstFtHooks { t },
            16,
            n,
            &plan,
            ft_policy(t),
            &NoopRecorder,
        );
        assert_eq!(out.outcome.completed, n);
        assert!(out.fault_log.injected() > 0);
        assert!(out.fault_log.all_recovered());
        assert_eq!(out.outcome.wasted_nfe, out.fault_log.wasted_nfe);
        assert!(out.fault_log.wasted_nfe > 0);
    }

    #[test]
    fn kill_every_worker_without_respawn_ends_partial() {
        let t = TimingParams::new(0.01, 0.000_006, 0.000_03);
        let n = 10_000;
        let cfg = FaultConfig {
            forced_crashes: (0..4)
                .map(|w| ForcedCrash {
                    worker: w,
                    after_dispatches: 2,
                })
                .collect(),
            ..FaultConfig::default()
        };
        let plan = FaultPlan::new(cfg, 4, n, 5);
        let out = run_async_faulty(
            &mut ConstFtHooks { t },
            4,
            n,
            &plan,
            ft_policy(t),
            &NoopRecorder,
        );
        // No deadlock, no panic: the run ends early with what it had.
        assert!(out.outcome.completed < n);
        assert_eq!(out.fault_log.injected_of(FaultKind::Crash), 4);
        assert!(out.fault_log.all_recovered());
    }

    #[test]
    fn respawned_workers_rejoin_and_finish_the_run() {
        let t = TimingParams::new(0.01, 0.000_006, 0.000_03);
        let n = 3_000;
        let cfg = FaultConfig {
            forced_crashes: (0..4)
                .map(|w| ForcedCrash {
                    worker: w,
                    after_dispatches: 2 + w as u64,
                })
                .collect(),
            respawn_after: Some(0.5),
            ..FaultConfig::default()
        };
        let plan = FaultPlan::new(cfg, 4, n, 5);
        let out = run_async_faulty(
            &mut ConstFtHooks { t },
            4,
            n,
            &plan,
            ft_policy(t),
            &NoopRecorder,
        );
        assert_eq!(out.outcome.completed, n);
        assert_eq!(out.fault_log.respawns, 4);
        assert!(out.fault_log.all_recovered());
    }

    #[test]
    fn faulty_engine_is_deterministic() {
        let t = TimingParams::new(0.008, 0.000_01, 0.000_04);
        let n = 1_500;
        let cfg = FaultConfig {
            crash_rate: 0.2,
            hang_rate: 0.1,
            straggler_rate: 0.05,
            drop_rate: 0.03,
            duplicate_rate: 0.03,
            respawn_after: Some(1.0),
            ..FaultConfig::default()
        };
        let run = || {
            let plan = FaultPlan::new(cfg.clone(), 12, n, 99);
            run_async_faulty(
                &mut ConstFtHooks { t },
                12,
                n,
                &plan,
                ft_policy(t),
                &NoopRecorder,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.fault_log.injected() > 0);
    }

    #[test]
    fn hang_quarantines_worker_permanently() {
        let t = TimingParams::new(0.01, 0.000_006, 0.000_03);
        let n = 800;
        let cfg = FaultConfig {
            hang_rate: 1.0, // every worker hangs exactly once
            respawn_after: Some(0.1),
            ..FaultConfig::default()
        };
        let plan = FaultPlan::new(cfg, 6, 100_000, 21);
        assert_eq!(plan.doomed_workers(), 6);
        let out = run_async_faulty(
            &mut ConstFtHooks { t },
            6,
            n,
            &plan,
            ft_policy(t),
            &NoopRecorder,
        );
        // Hang points are drawn over ~100k/6 dispatches; with n = 800 most
        // workers hang late enough that the budget completes first — the
        // point is that hung workers never respawn and never deadlock us.
        assert_eq!(out.fault_log.respawns, 0);
        assert!(out.fault_log.all_recovered());
    }

    #[test]
    fn command_trace_mirrors_the_ledger() {
        let t = TimingParams::new(0.01, 0.000_006, 0.000_03);
        let n = 500;
        let cfg = FaultConfig {
            crash_rate: 0.3,
            drop_rate: 0.02,
            duplicate_rate: 0.02,
            respawn_after: Some(0.5),
            ..FaultConfig::default()
        };
        let plan = FaultPlan::new(cfg, 8, n, 4242);
        let (out, commands) = run_async_faulty_traced(
            &mut ConstFtHooks { t },
            8,
            n,
            &plan,
            ft_policy(t),
            &NoopRecorder,
        );
        assert!(!commands.is_empty());
        // The command trace and the ledger agree on every counter.
        let reissues = commands
            .iter()
            .filter(|c| matches!(c, Command::Dispatch { attempt, .. } if *attempt > 0))
            .count() as u64;
        let consumes = commands
            .iter()
            .filter(|c| matches!(c, Command::Consume { .. }))
            .count() as u64;
        let dups = commands
            .iter()
            .filter(|c| matches!(c, Command::SuppressDuplicate { .. }))
            .count() as u64;
        let retired = commands
            .iter()
            .filter(|c| matches!(c, Command::RetireWorker { .. }))
            .count() as u64;
        assert_eq!(reissues, out.fault_log.reissues);
        assert_eq!(consumes, out.outcome.completed);
        assert_eq!(dups, out.fault_log.duplicates_suppressed);
        assert_eq!(retired, out.fault_log.deaths_detected);
        // And an untraced run is bit-identical.
        let untraced = run_async_faulty(
            &mut ConstFtHooks { t },
            8,
            n,
            &plan,
            ft_policy(t),
            &NoopRecorder,
        );
        assert_eq!(untraced, out);
    }
}
