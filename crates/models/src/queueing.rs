//! The master-slave queueing engine shared by the performance simulation
//! model (this crate) and the full-algorithm virtual-time executors
//! (`borg-parallel`).
//!
//! The engine reproduces the event structure of the paper's SimPy model
//! (§IV-B): workers evaluate, then *request* the master; the master is an
//! exclusive FIFO resource *held* for `T_C + T_A + T_C` per interaction
//! (receive, process + produce, send), after which the worker is
//! *activated* again. What happens inside `T_A`/`T_F` is delegated to a
//! [`MasterSlaveHooks`] implementation: the performance model just samples
//! durations, the executors in `borg-parallel` run the real Borg MOEA.

use borg_desim::fault::{DispatchFate, FaultKind, FaultLog, FaultPlan, MessageFate};
use borg_desim::queue::EventQueue;
use borg_desim::trace::{Activity, Actor, SpanTrace};
use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};

/// Problem-specific behaviour plugged into the queueing engine.
///
/// The engine calls, per interaction: `consume(w)` (master absorbs `w`'s
/// result), `produce(w)` (master creates `w`'s next work item),
/// `evaluation_time(w)` (how long `w`'s new evaluation takes) and
/// `comm_time()` for each one-way message. Each returns the simulated
/// duration of that step.
pub trait MasterSlaveHooks {
    /// Master-side time to produce the next work item for `worker`.
    /// `now` is the simulated time at which production starts.
    fn produce(&mut self, worker: usize, now: f64) -> f64;

    /// Worker-side time to evaluate the most recently produced work item.
    fn evaluation_time(&mut self, worker: usize) -> f64;

    /// Master-side time to process the result returned by `worker`.
    /// `now` is the simulated time at which processing starts.
    fn consume(&mut self, worker: usize, now: f64) -> f64;

    /// One-way master↔worker message time.
    fn comm_time(&mut self) -> f64;
}

/// Aggregate outcome of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Total simulated elapsed time (until the N-th result is processed).
    pub elapsed: f64,
    /// Results processed (equals the configured N).
    pub completed: u64,
    /// Total time the master spent busy (communication + algorithm).
    pub master_busy: f64,
    /// Master utilization: busy / elapsed.
    pub master_utilization: f64,
    /// Mean time results waited for the master after arriving.
    pub mean_wait: f64,
    /// Worst wait.
    pub max_wait: f64,
    /// Longest master queue observed (results waiting simultaneously).
    pub max_queue: usize,
    /// Worker evaluations whose results never advanced the run (lost to
    /// crashes, dropped messages, or duplicate suppression). Always 0
    /// without fault injection; stragglers inflate `elapsed` but are
    /// *not* wasted — their results are still consumed.
    pub wasted_nfe: u64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct ResultReady {
    worker: usize,
}

/// Runs the asynchronous master-slave simulation until `n` results have
/// been consumed.
///
/// `workers` is `P − 1`; the master does not evaluate in the asynchronous
/// topology (it is saturated with bookkeeping, matching the paper's
/// implementation). Activity spans are recorded into `trace` when enabled.
pub fn run_async<H: MasterSlaveHooks>(
    hooks: &mut H,
    workers: usize,
    n: u64,
    trace: &mut SpanTrace,
) -> RunOutcome {
    assert!(workers >= 1, "need at least one worker");
    assert!(n >= 1, "need at least one evaluation");

    let mut queue: EventQueue<ResultReady> = EventQueue::new();
    let mut master_free_at = 0.0f64;
    let mut master_busy = 0.0f64;
    let mut completed = 0u64;
    let mut wait_sum = 0.0f64;
    let mut wait_max = 0.0f64;

    // Initial seeding: the master produces and ships one work item per
    // worker, serially.
    for w in 0..workers {
        let ta = hooks.produce(w, master_free_at);
        let tc = hooks.comm_time();
        trace.record(
            Actor::Master,
            Activity::Algorithm,
            master_free_at,
            master_free_at + ta,
        );
        trace.record(
            Actor::Master,
            Activity::Communication,
            master_free_at + ta,
            master_free_at + ta + tc,
        );
        let start_eval = master_free_at + ta + tc;
        master_busy += ta + tc;
        master_free_at = start_eval;
        let tf = hooks.evaluation_time(w);
        trace.record(
            Actor::Worker(w),
            Activity::Evaluation,
            start_eval,
            start_eval + tf,
        );
        queue.schedule_at(start_eval + tf, ResultReady { worker: w });
    }

    let mut max_queue = 0usize;
    while let Some((ready_at, ev)) = queue.pop() {
        let w = ev.worker;
        let grant = master_free_at.max(ready_at);
        let wait = grant - ready_at;
        wait_sum += wait;
        wait_max = wait_max.max(wait);

        // Queue length at grant time: every result ready at or before the
        // grant is necessarily already in the event heap (time only moves
        // forward), so counting them is exact. Sampled to bound the O(W)
        // scan cost on large topologies.
        if completed.is_multiple_of(32) {
            max_queue = max_queue.max(1 + queue.count_at_or_before(grant));
        }

        let tc_in = hooks.comm_time();
        trace.record(Actor::Worker(w), Activity::Idle, ready_at, grant);
        trace.record(Actor::Master, Activity::Communication, grant, grant + tc_in);
        let ta_c = hooks.consume(w, grant + tc_in);
        completed += 1;

        if completed >= n {
            let end = grant + tc_in + ta_c;
            trace.record(Actor::Master, Activity::Algorithm, grant + tc_in, end);
            master_busy += tc_in + ta_c;
            let elapsed = end;
            return RunOutcome {
                elapsed,
                completed,
                master_busy,
                master_utilization: master_busy / elapsed,
                mean_wait: wait_sum / completed as f64,
                max_wait: wait_max,
                max_queue,
                wasted_nfe: 0,
            };
        }

        let ta_p = hooks.produce(w, grant + tc_in + ta_c);
        let tc_out = hooks.comm_time();
        let hold_end = grant + tc_in + ta_c + ta_p + tc_out;
        trace.record(
            Actor::Master,
            Activity::Algorithm,
            grant + tc_in,
            grant + tc_in + ta_c + ta_p,
        );
        trace.record(
            Actor::Master,
            Activity::Communication,
            grant + tc_in + ta_c + ta_p,
            hold_end,
        );
        master_busy += tc_in + ta_c + ta_p + tc_out;
        master_free_at = hold_end;

        let tf = hooks.evaluation_time(w);
        trace.record(
            Actor::Worker(w),
            Activity::Evaluation,
            hold_end,
            hold_end + tf,
        );
        queue.schedule_at(hold_end + tf, ResultReady { worker: w });
    }
    unreachable!("event queue drained before N results were consumed");
}

/// Runs a generational synchronous master-slave simulation (Cantú-Paz's
/// topology, Fig. 1) until at least `n` evaluations have completed.
///
/// Per generation the master serially produces and sends one solution per
/// worker, evaluates one solution itself, receives results serially as
/// they arrive, then serially processes all `P` offspring before the next
/// generation begins (hence `T_A^sync ≈ P · T_A`).
pub fn run_sync<H: MasterSlaveHooks>(
    hooks: &mut H,
    workers: usize,
    n: u64,
    trace: &mut SpanTrace,
) -> RunOutcome {
    assert!(workers >= 1);
    assert!(n >= 1);
    let p = workers + 1; // master evaluates too
    let mut now = 0.0f64;
    let mut master_busy = 0.0f64;
    let mut completed = 0u64;

    while completed < n {
        let gen_start = now;
        // Sends (serialized on the master).
        let mut finish_times: Vec<(usize, f64)> = Vec::with_capacity(workers);
        for w in 0..workers {
            let ta = hooks.produce(w, now);
            let tc = hooks.comm_time();
            trace.record(Actor::Master, Activity::Algorithm, now, now + ta);
            trace.record(
                Actor::Master,
                Activity::Communication,
                now + ta,
                now + ta + tc,
            );
            master_busy += ta + tc;
            now += ta + tc;
            let tf = hooks.evaluation_time(w);
            trace.record(Actor::Worker(w), Activity::Evaluation, now, now + tf);
            finish_times.push((w, now + tf));
        }
        // Master's own offspring (produced and evaluated locally).
        let ta_own = hooks.produce(workers, now);
        let tf_own = hooks.evaluation_time(workers);
        trace.record(Actor::Master, Activity::Algorithm, now, now + ta_own);
        trace.record(
            Actor::Master,
            Activity::Evaluation,
            now + ta_own,
            now + ta_own + tf_own,
        );
        master_busy += ta_own + tf_own;
        now += ta_own + tf_own;

        // Receives, serialized in completion order, no earlier than the
        // master finishing its own evaluation.
        finish_times.sort_by(|a, b| a.1.total_cmp(&b.1));
        for &(w, t_done) in &finish_times {
            let start = now.max(t_done);
            trace.record(Actor::Worker(w), Activity::Idle, t_done, start);
            let tc = hooks.comm_time();
            trace.record(Actor::Master, Activity::Communication, start, start + tc);
            master_busy += tc;
            now = start + tc;
        }

        // Synchronous processing of the whole generation.
        for w in 0..=workers {
            let ta = hooks.consume(w, now);
            trace.record(Actor::Master, Activity::Algorithm, now, now + ta);
            master_busy += ta;
            now += ta;
        }
        completed += p as u64;
        debug_assert!(now > gen_start);
    }

    RunOutcome {
        elapsed: now,
        completed,
        master_busy,
        master_utilization: master_busy / now,
        mean_wait: 0.0,
        max_wait: 0.0,
        max_queue: 0,
        wasted_nfe: 0,
    }
}

// ---------------------------------------------------------------------------
// Fault-tolerant asynchronous engine
// ---------------------------------------------------------------------------

/// Problem-specific behaviour for the *fault-tolerant* asynchronous engine.
///
/// Unlike [`MasterSlaveHooks`], work items are identified by a stable
/// `eval_id` so the master can reissue a lost evaluation to a different
/// worker and suppress duplicate results. Implementations must treat
/// `reissue` as "resend the work item produced for `eval_id`" — the
/// candidate must not change, only the bookkeeping cost may differ.
pub trait FaultTolerantHooks {
    /// Master-side time to produce the *fresh* work item `eval_id` for
    /// `worker`, starting at simulated time `now`.
    fn produce(&mut self, worker: usize, eval_id: u64, now: f64) -> f64;

    /// Master-side time to resend existing work item `eval_id` to
    /// `worker`. Defaults to free: the candidate already exists, only the
    /// message must be rebuilt (charged separately as `comm_time`).
    fn reissue(&mut self, _worker: usize, _eval_id: u64, _now: f64) -> f64 {
        0.0
    }

    /// Worker-side time to evaluate work item `eval_id` on `worker`.
    fn evaluation_time(&mut self, worker: usize, eval_id: u64) -> f64;

    /// Master-side time to process the result of `eval_id` returned by
    /// `worker`, starting at `now`.
    fn consume(&mut self, worker: usize, eval_id: u64, now: f64) -> f64;

    /// One-way master↔worker message time.
    fn comm_time(&mut self) -> f64;
}

/// Master-side recovery policy: when to give up on an outstanding
/// evaluation and how aggressively to probe for dead workers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Deadline per outstanding evaluation. When it passes without a
    /// result the master pings the assigned worker and reissues.
    pub timeout: f64,
    /// Interval of the master's background liveness sweep; a worker that
    /// has been silent for a full interval past its death is declared
    /// dead even if none of its evaluations has timed out yet.
    pub heartbeat_interval: f64,
    /// Hard cap on reissues per evaluation; exceeding it abandons the
    /// evaluation (the run then finishes with fewer results — this only
    /// guards against pathological configurations such as a 100% message
    /// drop rate).
    pub max_reissues: u32,
}

impl RecoveryPolicy {
    /// The paper-flavoured policy: timeout `k · E[T_F]` (`k > 1` so an
    /// ordinary evaluation never trips it), heartbeat at half the
    /// timeout.
    pub fn from_expected_eval_time(expected_tf: f64, k: f64) -> Self {
        assert!(
            expected_tf > 0.0 && expected_tf.is_finite(),
            "expected evaluation time must be positive"
        );
        assert!(k > 1.0, "timeout multiplier must exceed 1");
        let timeout = k * expected_tf;
        RecoveryPolicy {
            timeout,
            heartbeat_interval: timeout / 2.0,
            max_reissues: 64,
        }
    }
}

/// Outcome of a fault-injected run: the ordinary [`RunOutcome`] plus the
/// recovery ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultyRunOutcome {
    /// Timing/throughput aggregates (with `wasted_nfe` populated).
    pub outcome: RunOutcome,
    /// Injected vs detected vs recovered faults.
    pub fault_log: FaultLog,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum FaultEvent {
    /// A result message reaches the master.
    Arrival { worker: usize, eval_id: u64 },
    /// A worker physically dies (crash or hang strike).
    Death { worker: usize, respawn: bool },
    /// Deadline check for an outstanding evaluation. `deadline_bits`
    /// fingerprints the deadline this event was scheduled for; a reissue
    /// moves the deadline, turning the old event into a stale no-op.
    Timeout {
        eval_id: u64,
        worker: usize,
        deadline_bits: u64,
    },
    /// Background liveness sweep.
    Heartbeat,
    /// A crashed worker rejoins the pool.
    Respawn { worker: usize },
}

#[derive(Debug, Clone, Copy)]
struct Outstanding {
    worker: usize,
    deadline: f64,
    attempts: u32,
}

struct FaultySim<'a, H: FaultTolerantHooks> {
    hooks: &'a mut H,
    plan: &'a FaultPlan,
    policy: RecoveryPolicy,
    trace: &'a mut SpanTrace,
    queue: EventQueue<FaultEvent>,
    n: u64,
    workers: usize,
    // Master bookkeeping.
    master_free_at: f64,
    master_busy: f64,
    completed: u64,
    wait_sum: f64,
    wait_max: f64,
    next_eval: u64,
    // Physical truth vs the master's beliefs.
    alive: Vec<bool>,
    dead_since: Vec<f64>,
    view_alive: Vec<bool>,
    current_eval: Vec<Option<u64>>,
    dispatch_count: Vec<u64>,
    pending_respawns: usize,
    // Recovery state.
    outstanding: BTreeMap<u64, Outstanding>,
    idle: BTreeSet<usize>,
    reissue_queue: VecDeque<u64>,
    done: HashSet<u64>,
    abandoned: u64,
    log: FaultLog,
    finished_at: Option<f64>,
}

impl<H: FaultTolerantHooks> FaultySim<'_, H> {
    /// Produce (or re-send) `eval_id` to `worker` and simulate the worker
    /// side, consulting the fault plan for the dispatch and message fate.
    fn dispatch(&mut self, worker: usize, eval_id: u64, attempts: u32) {
        let start = self.master_free_at.max(self.queue.now());
        let ta = if attempts == 0 {
            self.hooks.produce(worker, eval_id, start)
        } else {
            self.log.reissues += 1;
            self.hooks.reissue(worker, eval_id, start)
        };
        let tc = self.hooks.comm_time();
        self.trace
            .record(Actor::Master, Activity::Algorithm, start, start + ta);
        self.trace.record(
            Actor::Master,
            Activity::Communication,
            start + ta,
            start + ta + tc,
        );
        self.master_busy += ta + tc;
        self.master_free_at = start + ta + tc;
        let start_eval = self.master_free_at;

        self.current_eval[worker] = Some(eval_id);
        self.idle.remove(&worker);
        let seq = self.dispatch_count[worker];
        self.dispatch_count[worker] += 1;
        let tf = self.hooks.evaluation_time(worker, eval_id);

        let deadline = start_eval + self.policy.timeout;
        self.outstanding.insert(
            eval_id,
            Outstanding {
                worker,
                deadline,
                attempts,
            },
        );
        self.queue.schedule_at(
            deadline,
            FaultEvent::Timeout {
                eval_id,
                worker,
                deadline_bits: deadline.to_bits(),
            },
        );

        match self.plan.dispatch_fate(worker, seq) {
            DispatchFate::Normal => {
                self.finish_evaluation(worker, eval_id, start_eval, tf, attempts);
            }
            DispatchFate::Straggle { factor } => {
                self.log
                    .inject(FaultKind::Straggler, worker, eval_id, start_eval);
                self.finish_evaluation(worker, eval_id, start_eval, tf * factor, attempts);
            }
            DispatchFate::CrashDuring { frac } => {
                let at = start_eval + tf * frac;
                self.log.inject(FaultKind::Crash, worker, eval_id, at);
                self.log.wasted_nfe += 1;
                let respawn = self.plan.respawn_after().is_some();
                self.queue
                    .schedule_at(at, FaultEvent::Death { worker, respawn });
                if respawn {
                    self.pending_respawns += 1;
                }
            }
            DispatchFate::HangDuring => {
                // A hang looks like a crash that never recovers: the
                // worker stops mid-evaluation and never speaks again, so
                // the master quarantines it once detected.
                let at = start_eval + tf * 0.5;
                self.log.inject(FaultKind::Hang, worker, eval_id, at);
                self.log.wasted_nfe += 1;
                self.queue.schedule_at(
                    at,
                    FaultEvent::Death {
                        worker,
                        respawn: false,
                    },
                );
            }
        }
    }

    /// The evaluation ran to completion on the worker; decide the fate of
    /// the result message.
    fn finish_evaluation(
        &mut self,
        worker: usize,
        eval_id: u64,
        start_eval: f64,
        tf: f64,
        attempts: u32,
    ) {
        let finish = start_eval + tf;
        self.trace.record(
            Actor::Worker(worker),
            Activity::Evaluation,
            start_eval,
            finish,
        );
        match self.plan.message_fate(eval_id, attempts) {
            MessageFate::Deliver => {
                self.queue
                    .schedule_at(finish, FaultEvent::Arrival { worker, eval_id });
            }
            MessageFate::Drop => {
                self.log
                    .inject(FaultKind::MessageDrop, worker, eval_id, finish);
                self.log.wasted_nfe += 1;
            }
            MessageFate::Duplicate => {
                self.log
                    .inject(FaultKind::MessageDuplicate, worker, eval_id, finish);
                self.queue
                    .schedule_at(finish, FaultEvent::Arrival { worker, eval_id });
                self.queue
                    .schedule_at(finish, FaultEvent::Arrival { worker, eval_id });
            }
        }
    }

    /// Give a freed worker its next assignment: queued reissues first,
    /// then fresh work, otherwise park it idle.
    fn assign_next(&mut self, worker: usize) {
        self.current_eval[worker] = None;
        if !self.view_alive[worker] {
            return;
        }
        while let Some(id) = self.reissue_queue.pop_front() {
            if let Some(o) = self.outstanding.get(&id).copied() {
                self.dispatch(worker, id, o.attempts + 1);
                return;
            }
        }
        if self.completed + self.outstanding.len() as u64 + self.abandoned < self.n {
            let id = self.next_eval;
            self.next_eval += 1;
            self.dispatch(worker, id, 0);
        } else {
            self.idle.insert(worker);
        }
    }

    fn handle_arrival(&mut self, ready_at: f64, worker: usize, eval_id: u64) {
        if self.done.contains(&eval_id) {
            // Duplicate or superseded copy: absorb the message, count the
            // wasted work, free the worker if it was still pinned on it.
            let grant = self.master_free_at.max(ready_at);
            let tc_in = self.hooks.comm_time();
            self.trace
                .record(Actor::Master, Activity::Communication, grant, grant + tc_in);
            self.master_busy += tc_in;
            self.master_free_at = grant + tc_in;
            self.log.duplicates_suppressed += 1;
            self.log.wasted_nfe += 1;
            self.log.recover_eval(eval_id, self.master_free_at);
            if self.current_eval[worker] == Some(eval_id) {
                self.assign_next(worker);
            }
            return;
        }
        let Some(_) = self.outstanding.remove(&eval_id) else {
            // Neither done nor outstanding: abandoned past max_reissues.
            return;
        };
        let grant = self.master_free_at.max(ready_at);
        let wait = grant - ready_at;
        self.wait_sum += wait;
        self.wait_max = self.wait_max.max(wait);
        self.trace
            .record(Actor::Worker(worker), Activity::Idle, ready_at, grant);
        let tc_in = self.hooks.comm_time();
        self.trace
            .record(Actor::Master, Activity::Communication, grant, grant + tc_in);
        let ta = self.hooks.consume(worker, eval_id, grant + tc_in);
        self.trace.record(
            Actor::Master,
            Activity::Algorithm,
            grant + tc_in,
            grant + tc_in + ta,
        );
        self.master_busy += tc_in + ta;
        self.master_free_at = grant + tc_in + ta;
        self.completed += 1;
        self.done.insert(eval_id);
        self.log.recover_eval(eval_id, self.master_free_at);
        // Results prove liveness: a quarantined worker that speaks again
        // (e.g. a straggler mistaken for dead) rejoins the pool.
        self.view_alive[worker] = self.alive[worker] || self.view_alive[worker];
        if self.completed >= self.n {
            self.finished_at = Some(self.master_free_at);
            return;
        }
        if self.current_eval[worker] == Some(eval_id) {
            self.assign_next(worker);
        }
    }

    fn handle_timeout(&mut self, eval_id: u64, worker: usize, deadline_bits: u64) {
        let Some(o) = self.outstanding.get(&eval_id).copied() else {
            // Evaluation already consumed; if this worker's copy never
            // arrived (its message was dropped after a reissue raced it),
            // stop waiting on it.
            if self.current_eval[worker] == Some(eval_id) {
                self.assign_next(worker);
            }
            return;
        };
        if o.deadline.to_bits() != deadline_bits {
            return; // superseded by a reissue
        }
        let now = self.queue.now();
        let start = self.master_free_at.max(now);
        self.log.detect_eval(eval_id, start);
        // Ping the assigned worker: one round-trip of master time.
        let ping = self.hooks.comm_time() + self.hooks.comm_time();
        self.trace
            .record(Actor::Master, Activity::Communication, start, start + ping);
        self.master_busy += ping;
        self.master_free_at = start + ping;
        let w = o.worker;
        if !self.alive[w] {
            if self.view_alive[w] {
                self.view_alive[w] = false;
                self.idle.remove(&w);
                self.log.detect_worker_death(w, self.master_free_at);
            }
            self.current_eval[w] = None;
        }
        if o.attempts >= self.policy.max_reissues {
            self.outstanding.remove(&eval_id);
            self.abandoned += 1;
            return;
        }
        // Reissue: back to the pinged worker when it is alive (it lost
        // the message, or is straggling and the retry races it), else to
        // any idle worker, else queue until one frees up.
        if self.view_alive[w] {
            self.dispatch(w, eval_id, o.attempts + 1);
        } else if let Some(v) = self.idle.iter().next().copied() {
            self.idle.remove(&v);
            self.dispatch(v, eval_id, o.attempts + 1);
        } else {
            self.park_for_reissue(eval_id);
        }
    }

    /// Queue `eval_id` for reissue when a worker frees up, neutralising
    /// its pending timeout so it is not reissued twice.
    fn park_for_reissue(&mut self, eval_id: u64) {
        if let Some(o) = self.outstanding.get_mut(&eval_id) {
            o.deadline = f64::INFINITY;
            self.reissue_queue.push_back(eval_id);
        }
    }

    fn handle_heartbeat(&mut self) {
        let now = self.queue.now();
        for w in 0..self.workers {
            if self.alive[w]
                || !self.view_alive[w]
                || now - self.dead_since[w] < self.policy.heartbeat_interval
            {
                continue;
            }
            self.view_alive[w] = false;
            self.idle.remove(&w);
            self.log.detect_worker_death(w, now);
            if let Some(id) = self.current_eval[w].take() {
                if self.outstanding.contains_key(&id) {
                    if let Some(v) = self.idle.iter().next().copied() {
                        self.idle.remove(&v);
                        let attempts = self.outstanding[&id].attempts;
                        if attempts >= self.policy.max_reissues {
                            self.outstanding.remove(&id);
                            self.abandoned += 1;
                        } else {
                            self.dispatch(v, id, attempts + 1);
                        }
                    } else {
                        self.park_for_reissue(id);
                    }
                }
            }
        }
        // Keep sweeping only while the run can still make progress: some
        // worker is (or will be) alive and the target is still reachable
        // despite abandoned evaluations.
        if self.finished_at.is_none()
            && self.completed + self.abandoned < self.n
            && (self.alive.iter().any(|&a| a) || self.pending_respawns > 0)
        {
            self.queue
                .schedule_at(now + self.policy.heartbeat_interval, FaultEvent::Heartbeat);
        }
    }

    fn handle_respawn(&mut self, worker: usize) {
        self.pending_respawns = self.pending_respawns.saturating_sub(1);
        self.alive[worker] = true;
        self.view_alive[worker] = true;
        self.log.respawns += 1;
        self.assign_next(worker);
    }

    fn run(mut self) -> FaultyRunOutcome {
        // Initial seeding, one work item per worker, serially.
        for w in 0..self.workers {
            let id = self.next_eval;
            self.next_eval += 1;
            self.dispatch(w, id, 0);
        }
        self.queue
            .schedule_at(self.policy.heartbeat_interval, FaultEvent::Heartbeat);

        while let Some((at, ev)) = self.queue.pop() {
            match ev {
                FaultEvent::Arrival { worker, eval_id } => self.handle_arrival(at, worker, eval_id),
                FaultEvent::Death { worker, respawn } => {
                    self.alive[worker] = false;
                    self.dead_since[worker] = at;
                    if respawn {
                        let downtime = self.plan.respawn_after().unwrap_or(0.0);
                        self.queue
                            .schedule_at(at + downtime, FaultEvent::Respawn { worker });
                    }
                }
                FaultEvent::Timeout {
                    eval_id,
                    worker,
                    deadline_bits,
                } => self.handle_timeout(eval_id, worker, deadline_bits),
                FaultEvent::Heartbeat => self.handle_heartbeat(),
                FaultEvent::Respawn { worker } => self.handle_respawn(worker),
            }
            if self.finished_at.is_some() {
                break;
            }
        }

        // If the queue drained first (every worker dead, no respawns) the
        // run ends early with however many results were consumed.
        let end = self.finished_at.unwrap_or_else(|| self.queue.now());
        self.log.finalize(end);
        let elapsed = if end > 0.0 { end } else { f64::MIN_POSITIVE };
        FaultyRunOutcome {
            outcome: RunOutcome {
                elapsed: end,
                completed: self.completed,
                master_busy: self.master_busy,
                master_utilization: self.master_busy / elapsed,
                mean_wait: self.wait_sum / self.completed.max(1) as f64,
                max_wait: self.wait_max,
                max_queue: 0, // not tracked under fault injection
                wasted_nfe: self.log.wasted_nfe,
            },
            fault_log: self.log,
        }
    }
}

/// Runs the asynchronous master-slave simulation under fault injection
/// until `n` results have been consumed (or every worker is lost).
///
/// The master survives worker crashes, hangs, stragglers, and message
/// drop/duplication per `plan`: it tracks a deadline per outstanding
/// evaluation, pings and reissues on timeout, quarantines dead workers
/// (heartbeat sweep), suppresses duplicate results by evaluation id, and
/// re-admits respawned workers. With a quiet plan this engine follows the
/// same event structure as [`run_async`] (timeouts never fire as long as
/// `policy.timeout` exceeds the worst evaluation time).
pub fn run_async_faulty<H: FaultTolerantHooks>(
    hooks: &mut H,
    workers: usize,
    n: u64,
    plan: &FaultPlan,
    policy: RecoveryPolicy,
    trace: &mut SpanTrace,
) -> FaultyRunOutcome {
    assert!(workers >= 1, "need at least one worker");
    assert!(n >= 1, "need at least one evaluation");
    assert!(
        policy.timeout.is_finite() && policy.timeout > 0.0,
        "recovery timeout must be positive and finite"
    );
    assert!(
        policy.heartbeat_interval.is_finite() && policy.heartbeat_interval > 0.0,
        "heartbeat interval must be positive and finite"
    );
    assert_eq!(
        plan.workers(),
        workers,
        "fault plan sized for a different worker pool"
    );
    let sim = FaultySim {
        hooks,
        plan,
        policy,
        trace,
        queue: EventQueue::new(),
        n,
        workers,
        master_free_at: 0.0,
        master_busy: 0.0,
        completed: 0,
        wait_sum: 0.0,
        wait_max: 0.0,
        next_eval: 0,
        alive: vec![true; workers],
        dead_since: vec![0.0; workers],
        view_alive: vec![true; workers],
        current_eval: vec![None; workers],
        dispatch_count: vec![0; workers],
        pending_respawns: 0,
        outstanding: BTreeMap::new(),
        idle: BTreeSet::new(),
        reissue_queue: VecDeque::new(),
        done: HashSet::new(),
        abandoned: 0,
        log: FaultLog::default(),
        finished_at: None,
    };
    sim.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytical::{async_parallel_time, TimingParams};

    /// Constant-time hooks matching the analytical model's assumptions.
    struct ConstHooks {
        t: TimingParams,
    }

    impl MasterSlaveHooks for ConstHooks {
        fn produce(&mut self, _w: usize, _now: f64) -> f64 {
            // Per-interaction T_A is charged on consume; production of the
            // *initial* work items still costs T_A each.
            0.0
        }
        fn evaluation_time(&mut self, _w: usize) -> f64 {
            self.t.t_f
        }
        fn consume(&mut self, _w: usize, _now: f64) -> f64 {
            self.t.t_a
        }
        fn comm_time(&mut self) -> f64 {
            self.t.t_c
        }
    }

    #[test]
    fn unsaturated_async_matches_eq2() {
        // P = 17 (16 workers), T_F large enough that the master never
        // saturates: the DES must land on Eq. (2) up to pipeline fill.
        let t = TimingParams::new(0.01, 0.000_006, 0.000_03);
        let n = 20_000;
        let mut hooks = ConstHooks { t };
        let mut trace = SpanTrace::disabled();
        let out = run_async(&mut hooks, 16, n, &mut trace);
        let predicted = async_parallel_time(n, 17, t);
        let err = (out.elapsed - predicted).abs() / predicted;
        assert!(
            err < 0.01,
            "DES {} vs Eq.2 {} (err {err})",
            out.elapsed,
            predicted
        );
        assert_eq!(out.completed, n);
        // Workers start clustered (seeding spaces them only T_C apart) and
        // respace over the first few cycles; steady-state waits are tiny
        // relative to T_F.
        assert!(
            out.mean_wait < t.t_f / 10.0,
            "unexpected steady-state contention: mean wait {}",
            out.mean_wait
        );
    }

    #[test]
    fn saturated_async_is_bounded_by_master_throughput() {
        // Tiny T_F, many workers: throughput ≈ 1/(2 T_C + T_A), so the
        // elapsed time decouples from Eq. (2) — the analytical model's
        // failure mode the paper demonstrates.
        let t = TimingParams::new(0.000_1, 0.000_006, 0.000_03);
        let n = 10_000;
        let mut hooks = ConstHooks { t };
        let mut trace = SpanTrace::disabled();
        let out = run_async(&mut hooks, 511, n, &mut trace);
        let saturated = n as f64 * (2.0 * t.t_c + t.t_a);
        assert!(
            (out.elapsed - saturated).abs() / saturated < 0.05,
            "DES {} vs saturation bound {}",
            out.elapsed,
            saturated
        );
        let eq2 = async_parallel_time(n, 512, t);
        assert!(
            out.elapsed > 5.0 * eq2,
            "analytical model should be way off"
        );
        assert!(out.master_utilization > 0.99);
        assert!(out.mean_wait > 0.0);
    }

    #[test]
    fn async_elapsed_has_efficiency_peak_shape() {
        // Sweep P and check time first drops ~linearly then flattens.
        let t = TimingParams::new(0.001, 0.000_006, 0.000_03);
        let n = 5_000;
        let elapsed: Vec<f64> = [4usize, 8, 16, 64, 256]
            .iter()
            .map(|&w| {
                let mut hooks = ConstHooks { t };
                run_async(&mut hooks, w, n, &mut SpanTrace::disabled()).elapsed
            })
            .collect();
        assert!(
            elapsed[1] < elapsed[0] * 0.6,
            "doubling workers should ~halve time"
        );
        // Past saturation adding workers cannot speed things up.
        assert!(elapsed[4] > 0.9 * elapsed[3]);
        // And the saturated time cannot drop below the master bound.
        assert!(elapsed[4] >= n as f64 * (2.0 * t.t_c + t.t_a) * 0.99);
    }

    #[test]
    fn sync_matches_eq6_shape() {
        // Constant times, no straggling: generation time =
        // (P−1)(T_A + T_C) + T_A + T_F + (P−1) T_C + P·T_A… the Cantú-Paz
        // abstraction folds this into N/P (T_F + P T_C + P T_A). Check the
        // DES lands within a modest factor and scales the same way.
        let t = TimingParams::new(0.01, 0.000_006, 0.000_006);
        let n = 9_600;
        for workers in [7usize, 31] {
            let p = workers + 1;
            let mut hooks = ConstHooks { t };
            let out = run_sync(&mut hooks, workers, n, &mut SpanTrace::disabled());
            let predicted = crate::analytical::sync_parallel_time(n, p as u32, t);
            let ratio = out.elapsed / predicted;
            assert!(
                (0.7..1.5).contains(&ratio),
                "P={p}: DES {} vs Eq.6 {} (ratio {ratio})",
                out.elapsed,
                predicted
            );
        }
    }

    #[test]
    fn sync_suffers_from_stragglers_async_does_not() {
        // High-variance T_F: the synchronous generation waits for the
        // slowest worker each round; the asynchronous pipeline does not.
        use crate::dist::Dist;
        use borg_core::rng::SplitMix64;

        struct NoisyHooks {
            tf: Dist,
            t: TimingParams,
            rng: rand::rngs::StdRng,
        }
        impl MasterSlaveHooks for NoisyHooks {
            fn produce(&mut self, _w: usize, _now: f64) -> f64 {
                0.0
            }
            fn evaluation_time(&mut self, _w: usize) -> f64 {
                self.tf.sample(&mut self.rng)
            }
            fn consume(&mut self, _w: usize, _now: f64) -> f64 {
                self.t.t_a
            }
            fn comm_time(&mut self) -> f64 {
                self.t.t_c
            }
        }

        let t = TimingParams::new(0.01, 0.000_006, 0.000_006);
        let n = 3_200;
        let workers = 15;
        let make = |seed: u64, cv: f64| NoisyHooks {
            tf: Dist::normal_cv(0.01, cv),
            t,
            rng: SplitMix64::new(seed).derive("noisy"),
        };
        let sync_low = run_sync(&mut make(1, 0.05), workers, n, &mut SpanTrace::disabled()).elapsed;
        let sync_high = run_sync(&mut make(1, 1.0), workers, n, &mut SpanTrace::disabled()).elapsed;
        let async_low =
            run_async(&mut make(2, 0.05), workers, n, &mut SpanTrace::disabled()).elapsed;
        let async_high =
            run_async(&mut make(2, 1.0), workers, n, &mut SpanTrace::disabled()).elapsed;
        let sync_penalty = sync_high / sync_low;
        let async_penalty = async_high / async_low;
        assert!(
            sync_penalty > 1.5,
            "sync should slow with variance: {sync_penalty}"
        );
        assert!(
            async_penalty < sync_penalty * 0.75,
            "async penalty {async_penalty} vs sync {sync_penalty}"
        );
    }

    #[test]
    fn trace_records_all_activity_kinds() {
        let t = TimingParams::new(0.001, 0.000_1, 0.000_2);
        let mut hooks = ConstHooks { t };
        let mut trace = SpanTrace::new();
        run_async(&mut hooks, 3, 20, &mut trace);
        let spans = trace.spans();
        assert!(spans.iter().any(|s| s.activity == Activity::Evaluation));
        assert!(spans.iter().any(|s| s.activity == Activity::Communication));
        assert!(spans.iter().any(|s| s.activity == Activity::Algorithm));
        assert!(spans.iter().any(|s| matches!(s.actor, Actor::Worker(_))));
        assert!(spans.iter().any(|s| s.actor == Actor::Master));
    }

    #[test]
    fn deterministic_given_same_hooks() {
        let t = TimingParams::new(0.005, 0.000_01, 0.000_05);
        let a = run_async(&mut ConstHooks { t }, 9, 500, &mut SpanTrace::disabled());
        let b = run_async(&mut ConstHooks { t }, 9, 500, &mut SpanTrace::disabled());
        assert_eq!(a, b);
    }

    // --- fault-tolerant engine ---

    use borg_desim::fault::{FaultConfig, FaultPlan, ForcedCrash};

    /// Constant-time hooks for the fault-tolerant engine.
    struct ConstFtHooks {
        t: TimingParams,
    }

    impl FaultTolerantHooks for ConstFtHooks {
        fn produce(&mut self, _w: usize, _id: u64, _now: f64) -> f64 {
            0.0
        }
        fn evaluation_time(&mut self, _w: usize, _id: u64) -> f64 {
            self.t.t_f
        }
        fn consume(&mut self, _w: usize, _id: u64, _now: f64) -> f64 {
            self.t.t_a
        }
        fn comm_time(&mut self) -> f64 {
            self.t.t_c
        }
    }

    fn ft_policy(t: TimingParams) -> RecoveryPolicy {
        RecoveryPolicy::from_expected_eval_time(t.t_f, 4.0)
    }

    #[test]
    fn faulty_engine_with_quiet_plan_matches_run_async() {
        let t = TimingParams::new(0.01, 0.000_006, 0.000_03);
        let n = 5_000;
        let plan = FaultPlan::new(FaultConfig::default(), 16, n, 77);
        let base = run_async(&mut ConstHooks { t }, 16, n, &mut SpanTrace::disabled());
        let faulty = run_async_faulty(
            &mut ConstFtHooks { t },
            16,
            n,
            &plan,
            ft_policy(t),
            &mut SpanTrace::disabled(),
        );
        assert_eq!(faulty.outcome.completed, n);
        assert_eq!(faulty.fault_log.injected(), 0);
        assert_eq!(faulty.fault_log.reissues, 0);
        assert_eq!(faulty.outcome.wasted_nfe, 0);
        // Identical event structure up to floating noise: the same serial
        // seeding and consume-then-produce master holds.
        let err = (faulty.outcome.elapsed - base.elapsed).abs() / base.elapsed;
        assert!(
            err < 0.01,
            "quiet faulty {} vs base {}",
            faulty.outcome.elapsed,
            base.elapsed
        );
    }

    #[test]
    fn crashes_and_drops_still_complete_the_budget() {
        let t = TimingParams::new(0.01, 0.000_006, 0.000_03);
        let n = 2_000;
        let cfg = FaultConfig {
            crash_rate: 0.25,
            drop_rate: 0.02,
            duplicate_rate: 0.02,
            straggler_rate: 0.01,
            ..FaultConfig::default()
        };
        let plan = FaultPlan::new(cfg, 16, n, 1234);
        assert!(plan.doomed_workers() > 0, "seed should doom someone");
        let out = run_async_faulty(
            &mut ConstFtHooks { t },
            16,
            n,
            &plan,
            ft_policy(t),
            &mut SpanTrace::disabled(),
        );
        assert_eq!(out.outcome.completed, n);
        assert!(out.fault_log.injected() > 0);
        assert!(out.fault_log.all_recovered());
        assert_eq!(out.outcome.wasted_nfe, out.fault_log.wasted_nfe);
        assert!(out.fault_log.wasted_nfe > 0);
    }

    #[test]
    fn kill_every_worker_without_respawn_ends_partial() {
        let t = TimingParams::new(0.01, 0.000_006, 0.000_03);
        let n = 10_000;
        let cfg = FaultConfig {
            forced_crashes: (0..4)
                .map(|w| ForcedCrash {
                    worker: w,
                    after_dispatches: 2,
                })
                .collect(),
            ..FaultConfig::default()
        };
        let plan = FaultPlan::new(cfg, 4, n, 5);
        let out = run_async_faulty(
            &mut ConstFtHooks { t },
            4,
            n,
            &plan,
            ft_policy(t),
            &mut SpanTrace::disabled(),
        );
        // No deadlock, no panic: the run ends early with what it had.
        assert!(out.outcome.completed < n);
        assert_eq!(out.fault_log.injected_of(FaultKind::Crash), 4);
        assert!(out.fault_log.all_recovered());
    }

    #[test]
    fn respawned_workers_rejoin_and_finish_the_run() {
        let t = TimingParams::new(0.01, 0.000_006, 0.000_03);
        let n = 3_000;
        let cfg = FaultConfig {
            forced_crashes: (0..4)
                .map(|w| ForcedCrash {
                    worker: w,
                    after_dispatches: 2 + w as u64,
                })
                .collect(),
            respawn_after: Some(0.5),
            ..FaultConfig::default()
        };
        let plan = FaultPlan::new(cfg, 4, n, 5);
        let out = run_async_faulty(
            &mut ConstFtHooks { t },
            4,
            n,
            &plan,
            ft_policy(t),
            &mut SpanTrace::disabled(),
        );
        assert_eq!(out.outcome.completed, n);
        assert_eq!(out.fault_log.respawns, 4);
        assert!(out.fault_log.all_recovered());
    }

    #[test]
    fn faulty_engine_is_deterministic() {
        let t = TimingParams::new(0.008, 0.000_01, 0.000_04);
        let n = 1_500;
        let cfg = FaultConfig {
            crash_rate: 0.2,
            hang_rate: 0.1,
            straggler_rate: 0.05,
            drop_rate: 0.03,
            duplicate_rate: 0.03,
            respawn_after: Some(1.0),
            ..FaultConfig::default()
        };
        let run = || {
            let plan = FaultPlan::new(cfg.clone(), 12, n, 99);
            run_async_faulty(
                &mut ConstFtHooks { t },
                12,
                n,
                &plan,
                ft_policy(t),
                &mut SpanTrace::disabled(),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.fault_log.injected() > 0);
    }

    #[test]
    fn hang_quarantines_worker_permanently() {
        let t = TimingParams::new(0.01, 0.000_006, 0.000_03);
        let n = 800;
        let cfg = FaultConfig {
            hang_rate: 1.0, // every worker hangs exactly once
            respawn_after: Some(0.1),
            ..FaultConfig::default()
        };
        let plan = FaultPlan::new(cfg, 6, 100_000, 21);
        assert_eq!(plan.doomed_workers(), 6);
        let out = run_async_faulty(
            &mut ConstFtHooks { t },
            6,
            n,
            &plan,
            ft_policy(t),
            &mut SpanTrace::disabled(),
        );
        // Hang points are drawn over ~100k/6 dispatches; with n = 800 most
        // workers hang late enough that the budget completes first — the
        // point is that hung workers never respawn and never deadlock us.
        assert_eq!(out.fault_log.respawns, 0);
        assert!(out.fault_log.all_recovered());
    }
}
