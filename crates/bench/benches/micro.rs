//! Microbenchmarks of the building blocks: variation operators, ε-archive
//! insertion, hypervolume computation, the DES engine, and the Borg engine
//! step — the constituents of the paper's `T_A`.

use borg_core::algorithm::{BorgConfig, BorgEngine};
use borg_core::archive::EpsilonArchive;
use borg_core::operators::standard_borg_operators;
use borg_core::problem::{Bounds, Problem};
use borg_core::rng::rng_from_seed;
use borg_core::solution::Solution;
use borg_desim::EventQueue;
use borg_metrics::hypervolume::hypervolume;
use borg_metrics::mc_hypervolume::McHypervolume;
use borg_models::analytical::TimingParams;
use borg_models::perfsim::{simulate_async, PerfSimConfig, TimingModel};
use borg_problems::dtlz::Dtlz;
use borg_problems::refsets::dtlz2_front;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::Rng;

fn bench_operators(c: &mut Criterion) {
    let mut group = c.benchmark_group("operators");
    let l = 14;
    let bounds: Vec<Bounds> = (0..l).map(|_| Bounds::unit()).collect();
    let mut rng = rng_from_seed(1);
    for op in standard_borg_operators(l) {
        let parents: Vec<Vec<f64>> = (0..op.arity())
            .map(|_| (0..l).map(|_| rng.gen()).collect())
            .collect();
        let refs: Vec<&[f64]> = parents.iter().map(|p| p.as_slice()).collect();
        group.bench_function(op.name(), |b| {
            b.iter(|| op.evolve(black_box(&refs), &bounds, &mut rng))
        });
    }
    group.finish();
}

fn bench_archive(c: &mut Criterion) {
    let mut group = c.benchmark_group("archive");
    let mut rng = rng_from_seed(2);
    let points: Vec<Vec<f64>> = (0..5_000)
        .map(|_| (0..5).map(|_| rng.gen::<f64>() * 2.0).collect())
        .collect();
    for eps in [0.05, 0.1, 0.25] {
        group.bench_with_input(BenchmarkId::new("insert_5000_5d", eps), &eps, |b, &eps| {
            b.iter(|| {
                let mut a = EpsilonArchive::uniform(5, eps);
                for p in &points {
                    a.add(Solution::from_parts(vec![], p.clone(), vec![]));
                }
                a.len()
            })
        });
    }
    group.finish();
}

fn bench_hypervolume(c: &mut Criterion) {
    let mut group = c.benchmark_group("hypervolume");
    group.sample_size(20);
    let front3 = dtlz2_front(3, 12);
    let front5 = dtlz2_front(5, 5);
    group.bench_function("wfg_exact_3d_91pts", |b| {
        b.iter(|| hypervolume(black_box(&front3), &[1.0; 3]))
    });
    group.bench_function("wfg_exact_5d_126pts", |b| {
        b.iter(|| hypervolume(black_box(&front5), &[1.0; 5]))
    });
    let mc = McHypervolume::unit(5, 10_000, 3);
    group.bench_function("mc_5d_126pts_10k_samples", |b| {
        b.iter(|| mc.estimate(black_box(&front5)))
    });
    group.finish();
}

fn bench_desim(c: &mut Criterion) {
    let mut group = c.benchmark_group("desim");
    group.bench_function("event_queue_100k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..100_000u32 {
                q.schedule_at(f64::from(i % 977), i);
            }
            let mut count = 0;
            while q.pop().is_some() {
                count += 1;
            }
            count
        })
    });
    group.bench_function("perfsim_p64_n10k", |b| {
        b.iter(|| {
            simulate_async(&PerfSimConfig {
                processors: 64,
                evaluations: 10_000,
                timing: TimingModel::constant(TimingParams::new(0.001, 0.000_006, 0.000_03)),
                seed: 4,
            })
            .parallel_time
        })
    });
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("borg_engine");
    group.sample_size(20);
    group.bench_function("produce_consume_dtlz2_5d", |b| {
        let problem = Dtlz::dtlz2_5();
        let mut engine = BorgEngine::new(&problem, BorgConfig::new(5, 0.1), 5);
        let mut objs = vec![0.0; 5];
        let mut cons = vec![];
        // Warm the engine so the bench measures the steady state (the
        // paper's T_A), not initialization.
        for _ in 0..2_000 {
            let cand = engine.produce();
            problem.evaluate(&cand.variables, &mut objs, &mut cons);
            let sol = engine.make_solution(cand, objs.clone(), cons.clone());
            engine.consume(sol);
        }
        b.iter(|| {
            let cand = engine.produce();
            problem.evaluate(&cand.variables, &mut objs, &mut cons);
            let sol = engine.make_solution(cand, objs.clone(), cons.clone());
            engine.consume(sol);
            engine.nfe()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_operators,
    bench_archive,
    bench_hypervolume,
    bench_desim,
    bench_engine
);
criterion_main!(benches);
