//! Benchmarks of the shared master-slave protocol core (`borg-protocol`).
//!
//! Three views of its cost: the raw `MasterEngine` overhead per handled
//! event against a null transport (the price every executor pays per
//! master interaction), the fault-free DES master it drives, and the same
//! DES master with the full recovery machinery armed but quiet (zero
//! fault rates) — the gap between the last two is what deadline tracking
//! and duplicate suppression cost when nothing goes wrong.

use borg_desim::fault::{FaultConfig, FaultLog, FaultPlan};
use borg_models::queueing::{run_async, run_async_faulty, FaultTolerantHooks, MasterSlaveHooks};
use borg_obs::NoopRecorder;
use borg_protocol::{Clock, EngineConfig, Event, MasterEngine, RecoveryPolicy, Transport};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// A transport that does nothing and charges nothing: what remains is
/// the engine's own bookkeeping (deadline map, seen-id set, slot
/// assignment) per event.
struct NullTransport {
    now: f64,
}

impl Clock for NullTransport {
    fn now(&self) -> f64 {
        self.now
    }
}

impl Transport for NullTransport {
    fn dispatch(
        &mut self,
        _worker: usize,
        _eval_id: u64,
        _attempt: u32,
        _seq: u64,
        _log: &mut FaultLog,
    ) -> f64 {
        f64::INFINITY
    }
    fn consume(&mut self, _worker: usize, _eval_id: u64, ready_at: f64) -> f64 {
        ready_at
    }
    fn absorb_duplicate(&mut self, _worker: usize, _eval_id: u64, ready_at: f64) -> f64 {
        ready_at
    }
    fn ping(&mut self, _worker: usize) -> (f64, f64) {
        (self.now, self.now)
    }
    fn rearm_heartbeat(&mut self, _at: f64) {}
    fn abandon(&mut self, _eval_id: u64) {}
}

/// Drives a fault-free engine to completion with results delivered in
/// dispatch order (eval id `n` lands on worker `n % workers`).
fn drive_engine<R: borg_obs::Recorder + ?Sized>(workers: usize, budget: u64, rec: &R) -> u64 {
    let mut engine = MasterEngine::new(EngineConfig::fault_free_async(workers, budget));
    let mut t = NullTransport { now: 0.0 };
    engine.seed(&mut t, rec);
    let mut eval_id = 0u64;
    while !engine.finished() {
        t.now += 1.0;
        engine.handle(
            Event::ResultArrived {
                worker: eval_id as usize % workers,
                eval_id,
                at: t.now,
            },
            &mut t,
            rec,
        );
        eval_id += 1;
    }
    engine.completed()
}

struct ConstHooks {
    ta: f64,
    tf: f64,
    tc: f64,
}

impl MasterSlaveHooks for ConstHooks {
    fn produce(&mut self, _worker: usize, _now: f64) -> f64 {
        self.ta
    }
    fn evaluation_time(&mut self, _worker: usize) -> f64 {
        self.tf
    }
    fn consume(&mut self, _worker: usize, _now: f64) -> f64 {
        self.ta
    }
    fn comm_time(&mut self) -> f64 {
        self.tc
    }
}

impl FaultTolerantHooks for ConstHooks {
    fn produce(&mut self, _worker: usize, _eval_id: u64, _now: f64) -> f64 {
        self.ta
    }
    fn evaluation_time(&mut self, _worker: usize, _eval_id: u64) -> f64 {
        self.tf
    }
    fn consume(&mut self, _worker: usize, _eval_id: u64, _now: f64) -> f64 {
        self.ta
    }
    fn comm_time(&mut self) -> f64 {
        self.tc
    }
}

const HOOKS: ConstHooks = ConstHooks {
    ta: 0.000_03,
    tf: 0.01,
    tc: 0.000_006,
};

fn bench_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol");

    let (workers, events) = (64, 10_000u64);
    group.bench_function("engine_null_transport_w64_10k_events", |b| {
        b.iter(|| drive_engine(black_box(workers), events, &NoopRecorder))
    });

    let (workers, n) = (32, 2_000u64);
    group.bench_function("des_async_fault_free_w32_2k", |b| {
        b.iter(|| {
            let mut hooks = HOOKS;
            run_async(&mut hooks, black_box(workers), n, &NoopRecorder)
        })
    });

    // Recovery machinery armed (deadlines at 4·E[T_F], duplicate
    // suppression live) but no faults drawn: the steady-state overhead of
    // fault tolerance.
    let quiet = FaultConfig {
        crash_rate: 0.0,
        hang_rate: 0.0,
        straggler_rate: 0.0,
        straggler_factor: 1.0,
        drop_rate: 0.0,
        duplicate_rate: 0.0,
        respawn_after: None,
        forced_crashes: Vec::new(),
    };
    let plan = FaultPlan::new(quiet, workers, n, 42);
    let policy = RecoveryPolicy::from_expected_eval_time(HOOKS.tf, 4.0);
    group.bench_function("des_async_recovery_quiet_w32_2k", |b| {
        b.iter(|| {
            let mut hooks = HOOKS;
            run_async_faulty(
                &mut hooks,
                black_box(workers),
                n,
                &plan,
                policy,
                &NoopRecorder,
            )
        })
    });

    group.finish();
}

criterion_group!(benches, bench_protocol);
criterion_main!(benches);
