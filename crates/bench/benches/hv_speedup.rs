//! Bench regenerating Figure 3 (DTLZ2) and Figure 4 (UF11) hypervolume-
//! threshold speedup panels at smoke scale.

use borg_experiments::hvspeedup::{run_panel, HvSpeedupConfig};
use borg_experiments::suite::PaperProblem;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_hv_speedup(c: &mut Criterion) {
    let mut group = c.benchmark_group("hv_speedup");
    group.sample_size(10);

    for (name, problem) in [
        ("fig3_dtlz2", PaperProblem::Dtlz2),
        ("fig4_uf11", PaperProblem::Uf11),
    ] {
        let cfg = HvSpeedupConfig::new(problem).smoke();
        group.bench_with_input(BenchmarkId::new(name, "panel_tf10ms"), &cfg, |b, cfg| {
            b.iter(|| run_panel(cfg, 0.01))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hv_speedup);
criterion_main!(benches);
