//! Bench regenerating Figures 1–2 (master/worker timelines) and the
//! underlying traced queueing simulations.

use borg_experiments::timeline::{figure1, figure2, TimelineConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_timelines(c: &mut Criterion) {
    let mut group = c.benchmark_group("timelines");
    group.sample_size(20);
    let cfg = TimelineConfig::default();
    group.bench_function("fig1_sync", |b| b.iter(|| figure1(&cfg)));
    group.bench_function("fig2_async", |b| b.iter(|| figure2(&cfg)));
    group.finish();
}

criterion_group!(benches, bench_timelines);
criterion_main!(benches);
