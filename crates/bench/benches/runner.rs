//! Benches for the deterministic work-stealing runner: per-job dispatch
//! overhead (serial pool vs four workers over a uniform batch) and a
//! skewed, steal-heavy batch where the front chunks carry most of the
//! work — the case the steal-on-empty path exists for.

use borg_runner::map_jobs;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// A small CPU-bound spin whose cost scales with `weight`; the rotate/xor
/// mix keeps the loop from being optimized away.
fn spin(weight: u64) -> u64 {
    let mut acc = 0u64;
    for i in 0..weight {
        acc = acc.wrapping_add(i).rotate_left(7) ^ 0x9E37_79B9_7F4A_7C15;
    }
    acc
}

fn bench_runner(c: &mut Criterion) {
    let mut group = c.benchmark_group("runner");
    group.sample_size(10);
    group.bench_function("map_jobs_serial_256_uniform", |b| {
        b.iter(|| {
            let items: Vec<u64> = (0..256).collect();
            map_jobs(1, items, |i, x| spin(black_box(400)) ^ x ^ i as u64)
        })
    });
    group.bench_function("map_jobs_w4_256_uniform", |b| {
        b.iter(|| {
            let items: Vec<u64> = (0..256).collect();
            map_jobs(4, items, |i, x| spin(black_box(400)) ^ x ^ i as u64)
        })
    });
    group.bench_function("map_jobs_w4_64_skewed_steal_heavy", |b| {
        b.iter(|| {
            let items: Vec<u64> = (0..64).collect();
            map_jobs(4, items, |i, x| {
                // Front-loaded weights: worker 0's chunk dominates, so the
                // other workers drain their chunks and steal from its tail.
                let weight = if i < 16 { 4_000 } else { 100 };
                spin(black_box(weight)) ^ x
            })
        })
    });
    group.finish();
}

criterion_group!(benches, bench_runner);
criterion_main!(benches);
