//! Benches for the extension components: the island topology, the
//! algorithm-dynamics sweep, the fault-injected virtual executor (recovery
//! overhead vs the fault-free path), and the NSGA-II baseline's generation
//! step.

use borg_core::algorithm::BorgConfig;
use borg_core::nsga2::{Nsga2Config, Nsga2Engine};
use borg_core::problem::Problem;
use borg_core::solution::Solution;
use borg_desim::fault::FaultConfig;
use borg_experiments::dynamics::{run_dynamics, DynamicsConfig};
use borg_experiments::islands_exp::{run_islands_experiment, IslandsExpConfig};
use borg_models::dist::Dist;
use borg_obs::NoopRecorder;
use borg_parallel::islands::{run_islands, IslandConfig};
use borg_parallel::virtual_exec::{
    run_virtual_async, run_virtual_async_faulty, TaMode, VirtualConfig,
};
use borg_problems::dtlz::Dtlz;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_islands(c: &mut Criterion) {
    let mut group = c.benchmark_group("islands");
    group.sample_size(10);
    for k in [1usize, 8] {
        let problem = Dtlz::dtlz2_5();
        let cfg = IslandConfig {
            islands: k,
            workers_per_island: 64 / k,
            max_nfe: 2_000,
            t_f: Dist::Constant(0.001),
            t_c: Dist::Constant(0.000_006),
            t_a: TaMode::Sampled(Dist::Constant(0.000_03)),
            migration_interval: 500,
            migration_size: 4,
            seed: 1,
        };
        group.bench_with_input(BenchmarkId::new("run_2k_nfe", k), &cfg, |b, cfg| {
            b.iter(|| run_islands(&problem, BorgConfig::new(5, 0.1), cfg).elapsed)
        });
    }
    group.bench_function("experiment_smoke", |b| {
        let cfg = IslandsExpConfig::default().smoke();
        b.iter(|| run_islands_experiment(&cfg))
    });
    group.finish();
}

fn bench_dynamics(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamics");
    group.sample_size(10);
    let cfg = DynamicsConfig::default().smoke();
    group.bench_function("smoke_sweep", |b| b.iter(|| run_dynamics(&cfg)));
    group.finish();
}

fn bench_faults(c: &mut Criterion) {
    let mut group = c.benchmark_group("faults");
    group.sample_size(10);
    let problem = Dtlz::dtlz2_5();
    let cfg = VirtualConfig {
        processors: 64,
        max_nfe: 2_000,
        t_f: Dist::Constant(0.001),
        t_c: Dist::Constant(0.000_006),
        t_a: TaMode::Sampled(Dist::Constant(0.000_03)),
        seed: 7,
    };
    group.bench_function("virtual_2k_nfe_fault_free", |b| {
        b.iter(|| {
            run_virtual_async(
                &problem,
                BorgConfig::new(5, 0.1),
                &cfg,
                &NoopRecorder,
                |_, _| {},
            )
            .outcome
            .elapsed
        })
    });
    for f in [0.1, 0.25] {
        let faults = FaultConfig::degraded(f);
        group.bench_with_input(
            BenchmarkId::new("virtual_2k_nfe_degraded", f),
            &faults,
            |b, faults| {
                b.iter(|| {
                    run_virtual_async_faulty(
                        &problem,
                        BorgConfig::new(5, 0.1),
                        &cfg,
                        faults,
                        &NoopRecorder,
                        |_, _| {},
                    )
                    .outcome
                    .elapsed
                })
            },
        );
    }
    group.finish();
}

fn bench_nsga2(c: &mut Criterion) {
    let mut group = c.benchmark_group("nsga2");
    group.sample_size(20);
    group.bench_function("generation_dtlz2_5d", |b| {
        let problem = Dtlz::dtlz2_5();
        let mut engine = Nsga2Engine::new(&problem, Nsga2Config::default(), 2);
        let mut objs = vec![0.0; 5];
        let mut cons = vec![];
        // Warm up a few generations so sorting runs on a full 2N pool.
        for _ in 0..5 {
            step(&problem, &mut engine, &mut objs, &mut cons);
        }
        b.iter(|| {
            step(&problem, &mut engine, &mut objs, &mut cons);
            engine.nfe()
        })
    });
    group.finish();
}

fn step(problem: &Dtlz, engine: &mut Nsga2Engine, objs: &mut [f64], cons: &mut [f64]) {
    let candidates = engine.produce_generation();
    let offspring: Vec<Solution> = candidates
        .into_iter()
        .map(|vars| {
            problem.evaluate(&vars, objs, cons);
            Solution::from_parts(vars, objs.to_vec(), cons.to_vec())
        })
        .collect();
    engine.consume_generation(offspring);
}

criterion_group!(
    benches,
    bench_islands,
    bench_dynamics,
    bench_faults,
    bench_nsga2
);
criterion_main!(benches);
