//! Wire-transport benches: codec encode/decode ns/op for the frames the
//! hot path actually carries (`Work` out, `Outcome` back), and a full
//! Unix-socket loopback round trip through the framed [`Conn`] — the
//! per-evaluation wire overhead a networked deployment adds on top of
//! the evaluation itself.

use borg_net::codec::{decode_complete, encode, Msg, TraceCtx};
use borg_net::Conn;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::os::unix::net::UnixStream;
use std::time::Duration;

// The deployment stamps a trace context on every hot-path frame, so the
// benches carry one too — the measured cost includes trace propagation.
fn ctx() -> Option<TraceCtx> {
    Some(TraceCtx {
        trace_id: 123_456,
        parent_span: 7,
        sent_at: 0.061_803,
    })
}

fn work_msg() -> Msg {
    Msg::Work {
        eval_id: 123_456,
        attempt: 0,
        seq: 42,
        variables: (0..14).map(|i| f64::from(i) * 0.061_803).collect(),
        ctx: ctx(),
    }
}

fn outcome_msg() -> Msg {
    Msg::Outcome {
        worker: 3,
        eval_id: 123_456,
        attempt: 0,
        objectives: vec![0.25, 0.5, 0.75, 0.125, 0.625],
        constraints: Vec::new(),
        ctx: ctx(),
    }
}

fn bench_net(c: &mut Criterion) {
    let mut group = c.benchmark_group("net");
    group.sample_size(10);

    group.bench_function("codec_encode_work_14var", |b| {
        let msg = work_msg();
        b.iter(|| encode(black_box(&msg)))
    });
    group.bench_function("codec_decode_work_14var", |b| {
        let frame = encode(&work_msg());
        b.iter(|| decode_complete(black_box(&frame)).expect("bench frame decodes"))
    });
    group.bench_function("codec_encode_outcome_5obj", |b| {
        let msg = outcome_msg();
        b.iter(|| encode(black_box(&msg)))
    });
    group.bench_function("codec_decode_outcome_5obj", |b| {
        let frame = encode(&outcome_msg());
        b.iter(|| decode_complete(black_box(&frame)).expect("bench frame decodes"))
    });

    // One dispatch-shaped round trip over a real (loopback) Unix socket:
    // Work down the wire, Outcome back, both through the framed Conn.
    group.bench_function("uds_loopback_round_trip", |b| {
        let (m, w) = UnixStream::pair().expect("socketpair");
        for s in [&m, &w] {
            s.set_read_timeout(Some(Duration::from_secs(5)))
                .expect("set bench read timeout");
        }
        let mut master = Conn::new(borg_net::NetStream::Unix(m));
        let mut worker = Conn::new(borg_net::NetStream::Unix(w));
        let work = work_msg();
        let outcome = outcome_msg();
        b.iter(|| {
            master.send(&work).expect("send work");
            let got = worker.recv().expect("recv work").expect("work frame");
            worker.send(&outcome).expect("send outcome");
            let back = master.recv().expect("recv outcome").expect("outcome frame");
            black_box((got, back))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_net);
criterion_main!(benches);
