//! The `core` bench group: the algorithm-core hot paths the speed campaign
//! targets — ε-archive insertion (indexed vs the retained linear-scan
//! oracle), the steady-state tournament + replacement step, batch problem
//! evaluation over the flat objective matrix, and incremental hypervolume
//! insertion. Tracked by `cargo xtask bench` as the `core` trajectory
//! group.

use borg_core::algorithm::{BorgConfig, BorgEngine};
use borg_core::archive::{EpsilonArchive, LinearScanArchive};
use borg_core::matrix::ObjectiveMatrix;
use borg_core::problem::Problem;
use borg_core::rng::rng_from_seed;
use borg_core::solution::Solution;
use borg_metrics::incremental::IncrementalHv;
use borg_problems::dtlz::Dtlz;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::Rng;

/// A candidate stream of mutually nondominated front points in scrambled
/// order: the archive grows to ~n members, the regime where the linear
/// scan's O(members) per candidate dominates `T_A` and the ε-grid index
/// pays off.
fn candidate_stream(n: usize, m: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            // Bit-reversal-ish scramble so insertions arrive in no useful
            // order while every t stays distinct.
            let j = (i.wrapping_mul(0x9E37) ^ (i >> 3)) % n;
            let t = j as f64 / n as f64;
            let mut objs = vec![1.0 - t; m];
            objs[0] = t;
            objs
        })
        .collect()
}

fn bench_core(c: &mut Criterion) {
    let mut group = c.benchmark_group("core");
    group.sample_size(10);

    // ε-archive insertion at two scales, indexed vs the linear oracle. The
    // tiny ε keeps acceptance high so the archive really reaches ~n members
    // and the scan cost dominates.
    for &n in &[1_000usize, 10_000] {
        let stream = candidate_stream(n, 2);
        group.bench_function(format!("archive_add_{n}_indexed"), |b| {
            b.iter(|| {
                let mut a = EpsilonArchive::uniform(2, 1e-4);
                for objs in &stream {
                    a.add(Solution::from_parts(vec![], objs.clone(), vec![]));
                }
                black_box(a.len())
            })
        });
        group.bench_function(format!("archive_add_{n}_linear"), |b| {
            b.iter(|| {
                let mut a = LinearScanArchive::uniform(2, 1e-4);
                for objs in &stream {
                    a.add(Solution::from_parts(vec![], objs.clone(), vec![]));
                }
                black_box(a.len())
            })
        });
    }

    // One full steady-state iteration: adaptive selection + tournament
    // parents + variation (produce), evaluation, then archive offer +
    // population replacement (consume). The engine is warmed past its
    // initial fill first so every measured step takes the steady arm.
    let problem = Dtlz::new(borg_problems::dtlz::DtlzVariant::Dtlz2, 3);
    let mut engine = BorgEngine::new(
        &problem,
        BorgConfig::new(problem.num_objectives(), 0.05),
        11,
    );
    let mut objs = vec![0.0; problem.num_objectives()];
    let mut cons = vec![0.0; problem.num_constraints()];
    for _ in 0..500 {
        let cand = engine.produce();
        problem.evaluate(&cand.variables, &mut objs, &mut cons);
        let sol = engine.make_solution_recycled(cand, &objs, &cons);
        engine.consume(sol);
    }
    group.bench_function("steady_state_step", |b| {
        b.iter(|| {
            let cand = engine.produce();
            problem.evaluate(&cand.variables, &mut objs, &mut cons);
            let sol = engine.make_solution_recycled(cand, &objs, &cons);
            engine.consume(sol);
            engine.nfe()
        })
    });

    // Batch evaluation over the flat matrix: 256 DTLZ2 rows behind a single
    // virtual call.
    let mut rng = rng_from_seed(23);
    let l = problem.num_variables();
    let mut vars = ObjectiveMatrix::new(l);
    let mut row = vec![0.0; l];
    for _ in 0..256 {
        for slot in row.iter_mut() {
            *slot = rng.gen();
        }
        vars.push_row(&row);
    }
    let mut batch_objs = ObjectiveMatrix::new(problem.num_objectives());
    let mut batch_cons = ObjectiveMatrix::new(problem.num_constraints());
    group.bench_function("batch_dtlz2_eval_256", |b| {
        b.iter(|| {
            problem.evaluate_batch(black_box(&vars), &mut batch_objs, &mut batch_cons);
            batch_objs.rows()
        })
    });

    // Incremental hypervolume: 32 inserts against a ~200-member 3-D front
    // (the clone of the base tracker is amortized across the inserts).
    let mut base = IncrementalHv::new(vec![1.5; 3]);
    let mut rng = rng_from_seed(31);
    for _ in 0..200 {
        let p: Vec<f64> = (0..3).map(|_| rng.gen::<f64>()).collect();
        base.insert(&p);
    }
    let fresh: Vec<Vec<f64>> = (0..32)
        .map(|_| (0..3).map(|_| rng.gen::<f64>()).collect())
        .collect();
    group.bench_function("incremental_hv_insert_32", |b| {
        b.iter(|| {
            let mut inc = base.clone();
            for p in &fresh {
                inc.insert(p);
            }
            black_box(inc.value())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_core);
criterion_main!(benches);
