//! Observability overhead benchmarks.
//!
//! The borg-obs contract is that instrumentation is free unless a
//! collecting sink is attached: the `NoopRecorder`'s empty default methods
//! monomorphize away. This group measures that claim on the hottest
//! instrumented path — the `MasterEngine` event loop against a null
//! transport — by running the identical loop with the no-op recorder, the
//! full in-memory recorder, and the metrics-only variant. The no-op vs
//! in-memory gap is the price of turning observation on (target: the
//! no-op run within 5% of the pre-instrumentation engine; see README).
//! A fourth benchmark isolates the in-memory sink itself (mutex +
//! histogram insert per op) from the engine work around it.

use borg_desim::fault::FaultLog;
use borg_obs::span::{Activity, Actor};
use borg_obs::{InMemoryRecorder, NoopRecorder, Recorder};
use borg_protocol::{Clock, EngineConfig, Event, MasterEngine, Transport};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// A transport that does nothing and charges nothing (same shape as the
/// protocol bench): what remains is engine bookkeeping + recorder hooks.
struct NullTransport {
    now: f64,
}

impl Clock for NullTransport {
    fn now(&self) -> f64 {
        self.now
    }
}

impl Transport for NullTransport {
    fn dispatch(
        &mut self,
        _worker: usize,
        _eval_id: u64,
        _attempt: u32,
        _seq: u64,
        _log: &mut FaultLog,
    ) -> f64 {
        f64::INFINITY
    }
    fn consume(&mut self, _worker: usize, _eval_id: u64, ready_at: f64) -> f64 {
        ready_at
    }
    fn absorb_duplicate(&mut self, _worker: usize, _eval_id: u64, ready_at: f64) -> f64 {
        ready_at
    }
    fn ping(&mut self, _worker: usize) -> (f64, f64) {
        (self.now, self.now)
    }
    fn rearm_heartbeat(&mut self, _at: f64) {}
    fn abandon(&mut self, _eval_id: u64) {}
}

fn drive_engine<R: Recorder + ?Sized>(workers: usize, budget: u64, rec: &R) -> u64 {
    let mut engine = MasterEngine::new(EngineConfig::fault_free_async(workers, budget));
    let mut t = NullTransport { now: 0.0 };
    engine.seed(&mut t, rec);
    let mut eval_id = 0u64;
    while !engine.finished() {
        t.now += 1.0;
        engine.handle(
            Event::ResultArrived {
                worker: eval_id as usize % workers,
                eval_id,
                at: t.now,
            },
            &mut t,
            rec,
        );
        eval_id += 1;
    }
    engine.completed()
}

fn bench_obs(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs");

    let (workers, events) = (64, 10_000u64);
    group.bench_function("engine_event_loop_noop_recorder_w64_10k", |b| {
        b.iter(|| drive_engine(black_box(workers), events, &NoopRecorder))
    });
    group.bench_function("engine_event_loop_inmemory_recorder_w64_10k", |b| {
        b.iter(|| {
            let rec = InMemoryRecorder::new();
            drive_engine(black_box(workers), events, &rec)
        })
    });
    group.bench_function("engine_event_loop_metrics_only_recorder_w64_10k", |b| {
        b.iter(|| {
            let rec = InMemoryRecorder::metrics_only();
            drive_engine(black_box(workers), events, &rec)
        })
    });

    // The sink alone: one counter bump, one histogram observation, and
    // one span per iteration — the recorder cost the loops above add per
    // engine interaction, without the engine around it.
    group.bench_function("inmemory_sink_counter_observe_span", |b| {
        b.iter(|| {
            let rec = InMemoryRecorder::metrics_only();
            for i in 0..black_box(10_000u64) {
                rec.counter("engine.commands.dispatch", 1);
                rec.observe("engine.dispatch_latency_seconds", 1e-6 * i as f64);
                let at = i as f64;
                rec.span(
                    Actor::Worker(i as usize % 64),
                    Activity::Evaluation,
                    at,
                    at + 0.5,
                );
            }
            rec.snapshot().counters["engine.commands.dispatch"]
        })
    });

    group.finish();
}

criterion_group!(benches, bench_obs);
criterion_main!(benches);
