//! Benches for the schedule-space model checker: full exhaustive
//! exploration of the smoke scenarios (schedules/second is the figure of
//! merit — the exploration rate bounds how rich a scenario catalogue CI
//! can afford) plus the duplicate-heavy scenario whose overlay doubles
//! the pending-event fan-out.

use borg_mc::{run_scenario, scenarios};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_mc(c: &mut Criterion) {
    let mut group = c.benchmark_group("mc");
    group.sample_size(10);
    group.bench_function("explore_fault_free_async", |b| {
        b.iter(|| {
            let report = run_scenario(black_box(&scenarios::fault_free_async()));
            assert!(report.violations.is_empty());
            report.schedules
        })
    });
    group.bench_function("explore_duplicates_overlay", |b| {
        b.iter(|| {
            let report = run_scenario(black_box(&scenarios::duplicates()));
            assert!(report.violations.is_empty());
            report.schedules
        })
    });
    group.bench_function("explore_sync_generational", |b| {
        b.iter(|| {
            let report = run_scenario(black_box(&scenarios::sync_generational()));
            assert!(report.violations.is_empty());
            report.schedules
        })
    });
    group.finish();
}

criterion_group!(benches, bench_mc);
criterion_main!(benches);
