//! Bench regenerating Figure 5 (sync vs async efficiency surfaces).

use borg_experiments::heatmap::{run_figure5, HeatmapConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_heatmap(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_heatmap");
    group.sample_size(10);

    let smoke = HeatmapConfig::default().smoke();
    group.bench_function("smoke_grid", |b| b.iter(|| run_figure5(&smoke)));

    // One expensive corner cell: the largest simulated topology.
    let corner = HeatmapConfig {
        tf_grid: vec![1.0],
        p_grid: vec![16_384],
        min_evaluations: 4_000,
        ..HeatmapConfig::default()
    };
    group.bench_function("p16384_cell", |b| b.iter(|| run_figure5(&corner)));
    group.finish();
}

criterion_group!(benches, bench_heatmap);
criterion_main!(benches);
