//! Bench regenerating Table II cells (experimental + analytical +
//! simulation model) at smoke scale, plus one full smoke table.
//!
//! `cargo bench -p borg-bench --bench table2` writes the resulting rows to
//! stdout so the bench run doubles as a miniature reproduction.

use borg_experiments::suite::PaperProblem;
use borg_experiments::table2::{render_table2, run_table2, Table2Config};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);

    for p in [16u32, 256] {
        let cfg = Table2Config {
            evaluations: 2_000,
            replicates: 1,
            processors: vec![p],
            tf_means: vec![0.001],
            problems: vec![PaperProblem::Dtlz2],
            ..Table2Config::default()
        };
        group.bench_with_input(BenchmarkId::new("dtlz2_cell", p), &cfg, |b, cfg| {
            b.iter(|| run_table2(cfg))
        });
    }

    let smoke = Table2Config::default().smoke();
    group.bench_function("smoke_table_full", |b| b.iter(|| run_table2(&smoke)));
    group.finish();

    // Emit the miniature table alongside the timing numbers.
    let rows = run_table2(&Table2Config::default().smoke());
    println!("\n{}", render_table2(&rows).render());
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
