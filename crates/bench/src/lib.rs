//! # borg-bench
//!
//! Criterion benchmark suite for the Borg MOEA scalability reproduction.
//! The crate has no library content; every target lives in `benches/`:
//!
//! * `table2` — regenerates Table II cells (experimental + analytical +
//!   simulation model) at smoke scale;
//! * `hv_speedup` — Figures 3–4 hypervolume-speedup panels;
//! * `efficiency_heatmap` — Figure 5 efficiency surfaces;
//! * `timelines` — Figures 1–2 traced queueing simulations;
//! * `micro` — the constituents of the paper's `T_A`: operators, archive
//!   insertion, hypervolume, the DES engine, the queueing model, and the
//!   steady-state Borg engine step.
#![forbid(unsafe_code)]
