//! The BORG-Lxxx rule engine.
//!
//! Fifteen workspace-specific correctness rules run over the token stream
//! from [`crate::lexer`] and the brace-matched item tree from
//! [`crate::itemtree`]:
//!
//! * **BORG-L001** — no `.unwrap()` / `.expect()` in library code outside
//!   `#[cfg(test)]` / `#[test]` regions. Library failures must surface as
//!   `Result`/`Option` so the engine can report structured errors.
//! * **BORG-L002** — no entropy-seeded randomness (`thread_rng`,
//!   `rand::random`, `from_entropy`, `OsRng`) anywhere. All randomness flows
//!   through the seeded `SplitMix64` / `StdRng` plumbing in `borg-core::rng`
//!   so every run is reproducible from its seed.
//! * **BORG-L003** — no wall-clock types (`Instant`, `SystemTime`) inside
//!   the discrete-event simulator (`crates/desim`) or the performance model
//!   (`crates/models/src/perfsim*`). Those components operate on virtual
//!   time; wall-clock reads would make simulated schedules nondeterministic.
//! * **BORG-L004** — no `std::sync::Mutex`; `parking_lot` is the workspace
//!   standard (no poisoning, smaller guards).
//! * **BORG-L005** — no direct `==` / `!=` involving objective values.
//!   Objective comparisons must go through the dominance / epsilon-box
//!   predicates, not raw f64 equality.
//! * **BORG-L006** — no unbounded `.recv()` in the executor crate
//!   (`crates/parallel`) outside test regions. A master loop blocked on a
//!   plain `recv()` deadlocks when a worker crashes or hangs; every wait
//!   must be a `recv_timeout` / `try_recv` so the fault-recovery deadline
//!   sweep keeps running. Deliberate unbounded waits (e.g. a hung-worker
//!   park released by channel disconnect) carry an allowlist comment.
//! * **BORG-L007** — no direct construction of protocol recovery state
//!   (deadline maps, in-flight tables, seen-eval-id sets, reissue queues)
//!   in executor library code (`crates/models`, `crates/parallel`). That
//!   bookkeeping lives in `borg_protocol::MasterEngine`; a local copy in an
//!   executor re-creates the triplicated reissue/suppression logic the
//!   protocol crate exists to centralise.
//! * **BORG-L008** — no `println!` / `eprintln!` (or `print!` / `eprint!`)
//!   in library code outside test regions. Libraries report through the
//!   `borg_obs::Recorder` facade or return renderable values; terminal
//!   output belongs to bin code, the xtask console tool, and the borg-obs
//!   exporters (both carved out).
//! * **BORG-L009** — no direct `std::thread::spawn` in the experiments
//!   crate (`crates/experiments`) outside test regions. Experiment sweeps
//!   fan out through `borg-runner` (`crate::par::run_jobs`), whose
//!   index-ordered collection is what keeps parallel sweeps bit-identical
//!   to serial ones; a raw spawned thread bypasses that contract.
//! * **BORG-L010** — no iteration over `HashMap` / `HashSet` bindings in
//!   result-affecting library code. Hash iteration order varies with the
//!   hasher seed and insertion history; anything folded out of it (sums
//!   are safe only by luck, selection and tie-breaking are not) threatens
//!   the same-seed determinism gate. Use `BTreeMap` / `BTreeSet`, or
//!   allowlist a proven order-insensitive fold.
//! * **BORG-L011** — every `Ordering::Relaxed` carries a
//!   `// borg-lint: relaxed-ok(reason)` comment on the same or previous
//!   line, with a non-empty reason. Relaxed atomics are legal exactly
//!   when no other memory access depends on their ordering; the directive
//!   forces that argument to be written down where the ordering is
//!   chosen.
//! * **BORG-L012** — no `unreachable!` / `unimplemented!` / `todo!` or
//!   panicking slice indexing (`x[i]`) inside `pub fn` bodies of the
//!   protocol crate (`crates/protocol`). The engine is driven by
//!   adversarial event schedules (the model checker delivers them in
//!   every order); a public entry point must reject bad input, not panic
//!   on it. Private helpers may index behind validated invariants.
//! * **BORG-L013** — socket I/O in the wire transport (`crates/net`)
//!   must not `.unwrap()` / `.expect()`: wire errors (peer death,
//!   connection resets, read timeouts) are routine there and must reach
//!   the reconnect/reissue machinery as values. Additionally, every
//!   blocking `connect` / `accept` acquisition installs a read deadline
//!   (`set_read_timeout(Some(..))`) in the same function body before the
//!   stream escapes, and `set_read_timeout(None)` never removes one — an
//!   unguarded read blocks forever when the peer hangs, which is exactly
//!   the fault the chaos proxy injects. Extends BORG-L006's
//!   no-unbounded-wait contract to the wire.
//! * **BORG-L014** — metric names fed to the `borg_obs::Recorder` hooks
//!   (`.counter(..)`, `.gauge(..)`, `.observe(..)`, `.flight(..)`) in
//!   library code must be `'static` lowercase dotted literals (or
//!   consts/helpers that resolve to one, e.g. the `metrics::*` catalogue
//!   or `event_metric(..)`), never `format!`-built strings. Dynamic
//!   names defeat the stable-schema tap deltas, the metric catalogue
//!   docs, and the allocation-free flight recorder (whose codes are
//!   `&'static str` by type — a leaked formatted name would be a memory
//!   leak per call).
//! * **BORG-L015** — no per-call heap allocation (`.to_vec()`, `.collect()`,
//!   `Vec::new()`) inside algorithm-core functions marked
//!   `// borg-lint: hot-path` (`crates/core` library code). Those functions
//!   sit on the produce/consume path the paper's `T_A` measures; the speed
//!   campaign removed their allocations (arena buffers, in-place outputs,
//!   SoA rows), and this rule keeps them out. A justified allocation
//!   carries the usual `// borg-lint: allow(BORG-L015)` escape.
//!
//! A violation is suppressed by a `// borg-lint: allow(BORG-Lxxx)` comment
//! on the same line or the line directly above — or, item-wide, by one on
//! the item's header (or the line above it), which covers the whole item.

use crate::files::{discover, FileClass, SourceFile};
use crate::itemtree::{self, Item, ItemKind};
use crate::lexer::{lex, LexedFile, Token, TokenKind};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::path::Path;

/// Static description of one rule (drives `--list` output and README docs).
pub struct Rule {
    pub id: &'static str,
    pub summary: &'static str,
}

/// All rules, in id order.
pub const RULES: [Rule; 15] = [
    Rule {
        id: "BORG-L001",
        summary: "no unwrap()/expect() in library code outside test regions",
    },
    Rule {
        id: "BORG-L002",
        summary: "no entropy-seeded RNG; randomness must flow through seeded borg-core::rng",
    },
    Rule {
        id: "BORG-L003",
        summary: "no wall-clock (Instant/SystemTime) in borg-desim or the perfsim model",
    },
    Rule {
        id: "BORG-L004",
        summary: "no std::sync::Mutex; parking_lot is the workspace standard",
    },
    Rule {
        id: "BORG-L005",
        summary: "no direct f64 ==/!= on objective values; use dominance/epsilon predicates",
    },
    Rule {
        id: "BORG-L006",
        summary: "no unbounded .recv() in executor library code; use recv_timeout/try_recv",
    },
    Rule {
        id: "BORG-L007",
        summary: "no executor-local recovery state (deadline maps, seen-id sets); \
                  use borg_protocol::MasterEngine",
    },
    Rule {
        id: "BORG-L008",
        summary: "no println!/eprintln! in library code; report through borg_obs::Recorder \
                  or return renderable values",
    },
    Rule {
        id: "BORG-L009",
        summary: "no std::thread::spawn in crates/experiments; fan sweeps out through \
                  borg-runner (crate::par::run_jobs)",
    },
    Rule {
        id: "BORG-L010",
        summary: "no HashMap/HashSet iteration in result-affecting library code; \
                  use BTreeMap/BTreeSet or allowlist a proven order-insensitive fold",
    },
    Rule {
        id: "BORG-L011",
        summary: "every Ordering::Relaxed carries a `// borg-lint: relaxed-ok(reason)` \
                  justification on the same or previous line",
    },
    Rule {
        id: "BORG-L012",
        summary: "no unreachable!/unimplemented!/todo! or panicking slice indexing in \
                  borg-protocol pub fn bodies; entry points reject bad input",
    },
    Rule {
        id: "BORG-L013",
        summary: "socket I/O in borg-net must not unwrap()/expect(); blocking \
                  connect/accept installs set_read_timeout(Some(..)) before the stream \
                  escapes, and set_read_timeout(None) never removes a deadline",
    },
    Rule {
        id: "BORG-L014",
        summary: "recorder metric names in library code are lowercase dotted 'static \
                  literals (or catalogue consts); never format!-built strings",
    },
    Rule {
        id: "BORG-L015",
        summary: "no .to_vec()/.collect()/Vec::new() in borg-core functions marked \
                  `// borg-lint: hot-path`; use arena buffers / in-place outputs",
    },
];

/// One reported lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    pub message: String,
}

/// Runs every rule over one source file and applies the allowlist.
pub fn check_source(rel_path: &str, class: FileClass, source: &str) -> Vec<Violation> {
    let lexed = lex(source);
    let items = itemtree::parse(&lexed.tokens);
    let regions = test_regions_of(&items, &lexed.tokens);
    let in_test = |line: u32| regions.iter().any(|&(a, b)| a <= line && line <= b);

    let mut found = Vec::new();
    rule_l001(rel_path, class, &lexed.tokens, &in_test, &mut found);
    rule_l002(rel_path, &lexed.tokens, &mut found);
    rule_l003(rel_path, &lexed.tokens, &mut found);
    rule_l004(rel_path, &lexed.tokens, &mut found);
    rule_l005(rel_path, class, &lexed.tokens, &in_test, &mut found);
    rule_l006(rel_path, class, &lexed.tokens, &in_test, &mut found);
    rule_l007(rel_path, class, &lexed.tokens, &in_test, &mut found);
    rule_l008(rel_path, class, &lexed.tokens, &in_test, &mut found);
    rule_l009(rel_path, class, &lexed.tokens, &in_test, &mut found);
    rule_l010(rel_path, class, &lexed.tokens, &in_test, &mut found);
    rule_l011(rel_path, class, &lexed, &in_test, &mut found);
    rule_l012(rel_path, class, &lexed.tokens, &items, &in_test, &mut found);
    rule_l013(rel_path, class, &lexed.tokens, &items, &in_test, &mut found);
    rule_l014(rel_path, class, &lexed.tokens, source, &in_test, &mut found);
    rule_l015(rel_path, class, &lexed, &items, &in_test, &mut found);

    let allows = allow_map(&lexed);
    let item_allows = item_allow_ranges(&items, &allows);
    found.retain(|v| {
        let allowed_at = |line: u32| allows.get(&line).is_some_and(|set| set.contains(v.rule));
        let item_allowed = item_allows
            .iter()
            .any(|(rule, a, b)| *rule == v.rule && *a <= v.line && v.line <= *b);
        !(allowed_at(v.line) || (v.line > 1 && allowed_at(v.line - 1)) || item_allowed)
    });
    found.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    found
}

/// Outcome of linting the whole workspace.
pub struct WorkspaceReport {
    pub files_scanned: usize,
    pub violations: Vec<Violation>,
}

/// Runs the lint pass over every discovered workspace source file.
pub fn check_workspace(root: &Path) -> Result<WorkspaceReport, String> {
    let files = discover(root)?;
    let mut violations = Vec::new();
    for file in &files {
        violations.extend(check_file(file)?);
    }
    Ok(WorkspaceReport {
        files_scanned: files.len(),
        violations,
    })
}

fn check_file(file: &SourceFile) -> Result<Vec<Violation>, String> {
    let source = std::fs::read_to_string(&file.abs_path)
        .map_err(|e| format!("read {}: {e}", file.abs_path.display()))?;
    Ok(check_source(&file.rel_path, file.class, &source))
}

fn allow_map(lexed: &LexedFile) -> HashMap<u32, HashSet<&str>> {
    let mut map: HashMap<u32, HashSet<&str>> = HashMap::new();
    for allow in &lexed.allows {
        let entry = map.entry(allow.line).or_default();
        for rule in &allow.rules {
            entry.insert(rule.as_str());
        }
    }
    map
}

// ---------------------------------------------------------------------------
// Test-region detection and item-scoped allows
// ---------------------------------------------------------------------------

/// Inclusive line ranges covered by `#[cfg(test)]` / `#[test]` items,
/// computed from the item tree: a test-attributed item's whole span is a
/// region (children included), and function bodies — opaque to the tree —
/// fall back to the token scan so statement-level test attributes inside
/// them are still honored.
fn test_regions_of(items: &[Item], tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    for item in items {
        item.walk(&mut |it| {
            if is_test_attribute(&it.attr_idents) {
                regions.push((it.start_line, it.end_line));
            } else if it.kind == ItemKind::Fn {
                if let Some((open, close)) = it.body {
                    regions.extend(scan_test_regions(
                        &tokens[open..=close.min(tokens.len() - 1)],
                    ));
                }
            }
        });
    }
    regions
}

/// Token-scan fallback for test regions (attributes anywhere in a slice).
fn scan_test_regions(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if is_punct(tokens, i, "#") && is_punct(tokens, i + 1, "[") {
            let (idents, close) = attribute_idents(tokens, i + 1);
            if is_test_attribute(&idents) {
                if let Some(end_line) = item_end_line(tokens, close + 1) {
                    regions.push((tokens[i].line, end_line));
                }
            }
            i = close + 1;
        } else {
            i += 1;
        }
    }
    regions
}

/// `(rule, first_line, last_line)` spans from item-scoped allow
/// directives: a `// borg-lint: allow(...)` on an item's header line, on
/// any of its attribute lines, or on the line directly above the item
/// suppresses the named rules across the item's whole span.
fn item_allow_ranges<'a>(
    items: &[Item],
    allows: &HashMap<u32, HashSet<&'a str>>,
) -> Vec<(&'a str, u32, u32)> {
    let mut ranges = Vec::new();
    for item in items {
        item.walk(&mut |it| {
            let first = it.start_line.saturating_sub(1);
            for line in first..=it.header_line {
                if let Some(rules) = allows.get(&line) {
                    for rule in rules {
                        ranges.push((*rule, it.start_line, it.end_line));
                    }
                }
            }
        });
    }
    ranges
}

/// Collects identifier texts inside the attribute starting at `open` (the
/// index of `[`); returns them with the index of the matching `]`.
fn attribute_idents(tokens: &[Token], open: usize) -> (Vec<String>, usize) {
    let mut idents = Vec::new();
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        match tokens[i].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return (idents, i);
                }
            }
            _ if tokens[i].kind == TokenKind::Ident => idents.push(tokens[i].text.clone()),
            _ => {}
        }
        i += 1;
    }
    (idents, tokens.len().saturating_sub(1))
}

/// Whether an attribute's identifiers mark a test item: `#[test]`, or a
/// `#[cfg(..)]` mentioning `test` without negation (`cfg(not(test))` is
/// live code in a normal build and stays in scope).
fn is_test_attribute(idents: &[String]) -> bool {
    match idents.first().map(String::as_str) {
        Some("test") => true,
        Some("cfg") | Some("cfg_attr") => {
            idents.iter().any(|t| t == "test") && !idents.iter().any(|t| t == "not")
        }
        _ => false,
    }
}

/// Finds the last line of the item following an attribute: skips further
/// attributes, then brace-matches the body (or stops at a top-level `;`).
fn item_end_line(tokens: &[Token], mut i: usize) -> Option<u32> {
    let mut depth = 0usize;
    while i < tokens.len() {
        if depth == 0 && is_punct(tokens, i, "#") && is_punct(tokens, i + 1, "[") {
            let (_, close) = attribute_idents(tokens, i + 1);
            i = close + 1;
            continue;
        }
        match tokens[i].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return Some(tokens[i].line);
                }
            }
            ";" if depth == 0 => return Some(tokens[i].line),
            _ => {}
        }
        i += 1;
    }
    tokens.last().map(|t| t.line)
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

fn rule_l001(
    rel_path: &str,
    class: FileClass,
    tokens: &[Token],
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Violation>,
) {
    if class != FileClass::Library {
        return;
    }
    for i in 1..tokens.len() {
        let t = &tokens[i];
        if t.kind == TokenKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && is_punct(tokens, i - 1, ".")
            && is_punct(tokens, i + 1, "(")
            && !in_test(t.line)
        {
            out.push(Violation {
                rule: "BORG-L001",
                file: rel_path.to_string(),
                line: t.line,
                message: format!(
                    "`.{}()` in library code; propagate the error (or move the call into a \
                     test region)",
                    t.text
                ),
            });
        }
    }
}

fn rule_l002(rel_path: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let what = match t.text.as_str() {
            "thread_rng" => Some("`thread_rng()` draws an entropy-seeded generator"),
            "from_entropy" => Some("`from_entropy()` seeds from the OS entropy pool"),
            "OsRng" => Some("`OsRng` reads OS entropy directly"),
            "random"
                if is_ident(tokens, i.wrapping_sub(1), "::") && path_head_is(tokens, i, "rand") =>
            {
                Some("`rand::random()` uses the entropy-seeded thread-local generator")
            }
            _ => None,
        };
        if let Some(what) = what {
            out.push(Violation {
                rule: "BORG-L002",
                file: rel_path.to_string(),
                line: t.line,
                message: format!(
                    "{what}; derive a seeded StdRng via borg-core::rng (SplitMix64) instead"
                ),
            });
        }
    }
}

/// Whether the token at `i` is the tail of a `rand::` path (`rand :: random`).
fn path_head_is(tokens: &[Token], i: usize, head: &str) -> bool {
    i >= 2 && is_punct(tokens, i - 1, "::") && is_ident(tokens, i - 2, head)
}

fn rule_l003(rel_path: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    let virtual_time_scope = rel_path.starts_with("crates/desim/src/")
        || rel_path.starts_with("crates/models/src/perfsim");
    if !virtual_time_scope {
        return;
    }
    for t in tokens {
        if t.kind == TokenKind::Ident && (t.text == "Instant" || t.text == "SystemTime") {
            out.push(Violation {
                rule: "BORG-L003",
                file: rel_path.to_string(),
                line: t.line,
                message: format!(
                    "`{}` is wall-clock time inside a virtual-time component; use simulated \
                     clocks (desim event time) instead",
                    t.text
                ),
            });
        }
    }
}

fn rule_l004(rel_path: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    let mut i = 0;
    while i + 4 < tokens.len() {
        if is_ident(tokens, i, "std")
            && is_punct(tokens, i + 1, "::")
            && is_ident(tokens, i + 2, "sync")
            && is_punct(tokens, i + 3, "::")
        {
            let after = i + 4;
            if is_ident(tokens, after, "Mutex") {
                push_l004(rel_path, tokens[after].line, out);
            } else if is_punct(tokens, after, "{") {
                // `use std::sync::{Arc, Mutex};` — scan the brace group.
                let mut depth = 0usize;
                let mut j = after;
                while j < tokens.len() {
                    match tokens[j].text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        "Mutex" if tokens[j].kind == TokenKind::Ident => {
                            push_l004(rel_path, tokens[j].line, out);
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
        }
        i += 1;
    }
}

fn push_l004(rel_path: &str, line: u32, out: &mut Vec<Violation>) {
    out.push(Violation {
        rule: "BORG-L004",
        file: rel_path.to_string(),
        line,
        message: "`std::sync::Mutex` is forbidden; use `parking_lot::Mutex` (workspace standard)"
            .to_string(),
    });
}

/// Tokens that bound the L005 search window: an `==` on one side of these
/// cannot syntactically involve an expression on the other side.
const L005_WINDOW_STOPS: &[&str] = &[",", ";", "{", "}"];
const L005_WINDOW: usize = 10;

fn rule_l005(
    rel_path: &str,
    class: FileClass,
    tokens: &[Token],
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Violation>,
) {
    if class == FileClass::TestOrBench {
        return;
    }
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.kind != TokenKind::Punct || (t.text != "==" && t.text != "!=") || in_test(t.line) {
            continue;
        }
        let backward = window_has_objectives(tokens, i, true);
        let forward = window_has_objectives(tokens, i, false);
        if backward || forward {
            out.push(Violation {
                rule: "BORG-L005",
                file: rel_path.to_string(),
                line: t.line,
                message: format!(
                    "direct `{}` on objective values; compare via dominance or epsilon-box \
                     predicates, not raw f64 equality",
                    t.text
                ),
            });
        }
    }
}

/// Looks up to [`L005_WINDOW`] tokens before/after position `i` for the
/// identifier `objectives`, stopping at expression boundaries.
fn window_has_objectives(tokens: &[Token], i: usize, backward: bool) -> bool {
    for step in 1..=L005_WINDOW {
        let j = if backward {
            match i.checked_sub(step) {
                Some(j) => j,
                None => return false,
            }
        } else {
            i + step
        };
        let Some(t) = tokens.get(j) else { return false };
        if t.kind == TokenKind::Punct && L005_WINDOW_STOPS.contains(&t.text.as_str()) {
            return false;
        }
        if t.kind == TokenKind::Ident && t.text == "objectives" {
            return true;
        }
    }
    false
}

fn rule_l006(
    rel_path: &str,
    class: FileClass,
    tokens: &[Token],
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Violation>,
) {
    // Scope: the executor crate's library sources (where a blocked master
    // loop means a deadlocked run), plus the self-test fixture.
    let executor_scope =
        rel_path.starts_with("crates/parallel/src/") || rel_path == FIXTURE_SCAN_PATH;
    if !executor_scope || class != FileClass::Library {
        return;
    }
    for i in 1..tokens.len() {
        let t = &tokens[i];
        // `.recv(` exactly — `recv_timeout` / `try_recv` are different
        // identifiers and stay silent.
        if t.kind == TokenKind::Ident
            && t.text == "recv"
            && is_punct(tokens, i - 1, ".")
            && is_punct(tokens, i + 1, "(")
            && !in_test(t.line)
        {
            out.push(Violation {
                rule: "BORG-L006",
                file: rel_path.to_string(),
                line: t.line,
                message: "unbounded `.recv()` in executor code can deadlock on a crashed or \
                          hung worker; use `recv_timeout`/`try_recv` (or allowlist a deliberate \
                          disconnect-released park)"
                    .to_string(),
            });
        }
    }
}

/// Identifiers that name protocol recovery state. A declaration binding one
/// of these to a collection type outside `borg-protocol` is an executor
/// growing its own reissue/suppression bookkeeping.
const L007_STATE_NAMES: &[&str] = &[
    "in_flight",
    "outstanding",
    "completed_ids",
    "seen_eval_ids",
    "seen_ids",
    "reissue_queue",
    "deadlines",
    "deadline_map",
];

/// Collection types that hold per-eval recovery state. A scalar named
/// `deadline` or a `Vec<f64>` of samples is fine; a keyed map/set of
/// eval-ids is the protocol engine's job.
const L007_COLLECTIONS: &[&str] = &["HashMap", "HashSet", "BTreeMap", "BTreeSet", "VecDeque"];

/// Tokens that bound the L007 backward search: a binding name on the far
/// side of these cannot be the one annotated with the collection type.
const L007_WINDOW_STOPS: &[&str] = &[",", ";", "{", "}"];
const L007_WINDOW: usize = 12;

fn rule_l007(
    rel_path: &str,
    class: FileClass,
    tokens: &[Token],
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Violation>,
) {
    // Scope: the executor crates' library sources (the homes of the three
    // master-slave adapters), plus the self-test fixture. `crates/protocol`
    // deliberately stays out of scope — it is where this state belongs.
    let executor_scope = rel_path.starts_with("crates/models/src/")
        || rel_path.starts_with("crates/parallel/src/")
        || rel_path == FIXTURE_SCAN_PATH;
    if !executor_scope || class != FileClass::Library {
        return;
    }
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident
            || !L007_COLLECTIONS.contains(&t.text.as_str())
            || in_test(t.line)
        {
            continue;
        }
        if let Some(name) = l007_state_name_behind(tokens, i) {
            out.push(Violation {
                rule: "BORG-L007",
                file: rel_path.to_string(),
                line: t.line,
                message: format!(
                    "`{name}` declared as `{}` re-creates protocol recovery state in an \
                     executor; route reissue/suppression bookkeeping through \
                     borg_protocol::MasterEngine",
                    t.text
                ),
            });
        }
    }
}

/// Looks up to [`L007_WINDOW`] tokens before the collection type at `i` for
/// a recovery-state binding name, stopping at declaration boundaries.
fn l007_state_name_behind(tokens: &[Token], i: usize) -> Option<String> {
    for step in 1..=L007_WINDOW {
        let j = i.checked_sub(step)?;
        let t = tokens.get(j)?;
        if t.kind == TokenKind::Punct && L007_WINDOW_STOPS.contains(&t.text.as_str()) {
            return None;
        }
        if t.kind == TokenKind::Ident && L007_STATE_NAMES.contains(&t.text.as_str()) {
            return Some(t.text.clone());
        }
    }
    None
}

/// Print macros caught by L008. `write!`/`writeln!` to a caller-supplied
/// sink stay legal — the rule targets ambient stdout/stderr only.
const L008_PRINT_MACROS: &[&str] = &["println", "eprintln", "print", "eprint"];

fn rule_l008(
    rel_path: &str,
    class: FileClass,
    tokens: &[Token],
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Violation>,
) {
    // Carve-outs: the xtask console tool (its whole interface is terminal
    // output) and the borg-obs exporters (the designated rendering sink).
    let exempt =
        rel_path.starts_with("crates/xtask/src/") || rel_path.starts_with("crates/obs/src/export");
    if class != FileClass::Library || exempt {
        return;
    }
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.kind == TokenKind::Ident
            && L008_PRINT_MACROS.contains(&t.text.as_str())
            && is_punct(tokens, i + 1, "!")
            && !in_test(t.line)
        {
            out.push(Violation {
                rule: "BORG-L008",
                file: rel_path.to_string(),
                line: t.line,
                message: format!(
                    "`{}!` writes to the terminal from library code; record through \
                     borg_obs::Recorder or return a renderable value (terminal output \
                     belongs to bin code)",
                    t.text
                ),
            });
        }
    }
}

fn rule_l009(
    rel_path: &str,
    class: FileClass,
    tokens: &[Token],
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Violation>,
) {
    // Scope: the experiments crate (library and bin sources — the sweep
    // drivers and the CLI both belong to the deterministic-runner
    // contract), plus the self-test fixture.
    let experiments_scope =
        rel_path.starts_with("crates/experiments/src/") || rel_path == FIXTURE_SCAN_PATH;
    if !experiments_scope || class == FileClass::TestOrBench {
        return;
    }
    for i in 2..tokens.len() {
        let t = &tokens[i];
        // `thread::spawn` exactly (covers `std::thread::spawn` too);
        // `scope.spawn` — a structured pool handle — is preceded by `.`
        // and stays silent.
        if t.kind == TokenKind::Ident
            && t.text == "spawn"
            && is_punct(tokens, i - 1, "::")
            && is_ident(tokens, i - 2, "thread")
            && !in_test(t.line)
        {
            out.push(Violation {
                rule: "BORG-L009",
                file: rel_path.to_string(),
                line: t.line,
                message: "`std::thread::spawn` in the experiments crate bypasses the \
                          deterministic work-stealing runner; fan the sweep out through \
                          `crate::par::run_jobs` (borg-runner) instead"
                    .to_string(),
            });
        }
    }
}

/// Crates whose library code feeds archives, metrics, or experiment
/// results — where hash-order iteration can leak into a reported value
/// and break the same-seed determinism gate.
const L010_SCOPE: &[&str] = &[
    "crates/core/src/",
    "crates/metrics/src/",
    "crates/models/src/",
    "crates/desim/src/",
    "crates/protocol/src/",
    "crates/parallel/src/",
    "crates/experiments/src/",
    "crates/runner/src/",
    "crates/obs/src/",
    "crates/mc/src/",
    "crates/net/src/",
];

/// Iteration methods whose visit order is the hasher's, not the caller's.
const L010_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
];

/// Glue tokens allowed between a binding name and its `HashMap`/`HashSet`
/// type or constructor (`let m: HashMap<..>`, `m = HashMap::new()`,
/// `m: &mut HashMap<..>`).
const L010_BINDING_GLUE: &[&str] = &[":", "=", "&", "mut", "<"];

fn rule_l010(
    rel_path: &str,
    class: FileClass,
    tokens: &[Token],
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Violation>,
) {
    let in_scope =
        L010_SCOPE.iter().any(|p| rel_path.starts_with(p)) || rel_path == FIXTURE_SCAN_PATH;
    if !in_scope || class != FileClass::Library {
        return;
    }

    // Pass 1: names bound to a hash collection (declarations, fields,
    // params, and `= HashMap::new()` initializers).
    let mut hashed: HashSet<&str> = HashSet::new();
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        let mut j = i;
        while j > 0 {
            let prev = &tokens[j - 1];
            let glue = (prev.kind == TokenKind::Punct || prev.text == "mut")
                && L010_BINDING_GLUE.contains(&prev.text.as_str());
            if glue {
                j -= 1;
            } else {
                break;
            }
        }
        if j < i && j > 0 && tokens[j - 1].kind == TokenKind::Ident {
            hashed.insert(tokens[j - 1].text.as_str());
        }
    }
    if hashed.is_empty() {
        return;
    }

    // Pass 2: iteration over those names.
    for i in 1..tokens.len() {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident || in_test(t.line) {
            continue;
        }
        // `name.iter()` / `name.keys()` / …
        if L010_ITER_METHODS.contains(&t.text.as_str())
            && is_punct(tokens, i - 1, ".")
            && is_punct(tokens, i + 1, "(")
            && i >= 2
            && tokens[i - 2].kind == TokenKind::Ident
            && hashed.contains(tokens[i - 2].text.as_str())
        {
            push_l010(rel_path, t.line, &tokens[i - 2].text, &t.text, out);
            continue;
        }
        // `for pat in name {` / `for pat in &name {`
        if hashed.contains(t.text.as_str()) && is_punct(tokens, i + 1, "{") {
            let mut j = i - 1;
            while j > 0 && (is_punct(tokens, j, "&") || is_ident(tokens, j, "mut")) {
                j -= 1;
            }
            if is_ident(tokens, j, "in") {
                push_l010(rel_path, t.line, &t.text, "for-loop", out);
            }
        }
    }
}

fn push_l010(rel_path: &str, line: u32, name: &str, how: &str, out: &mut Vec<Violation>) {
    out.push(Violation {
        rule: "BORG-L010",
        file: rel_path.to_string(),
        line,
        message: format!(
            "iterating hash collection `{name}` ({how}) visits entries in hasher order, \
             which can leak into results; use BTreeMap/BTreeSet or allowlist a proven \
             order-insensitive fold"
        ),
    });
}

fn rule_l011(
    rel_path: &str,
    class: FileClass,
    lexed: &LexedFile,
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Violation>,
) {
    if class != FileClass::Library {
        return;
    }
    let tokens = &lexed.tokens;
    let justified = |line: u32| {
        lexed
            .relaxed_oks
            .iter()
            .any(|d| d.line == line || d.line + 1 == line)
    };
    for i in 2..tokens.len() {
        let t = &tokens[i];
        if t.kind == TokenKind::Ident
            && t.text == "Relaxed"
            && is_punct(tokens, i - 1, "::")
            && is_ident(tokens, i - 2, "Ordering")
            && !in_test(t.line)
            && !justified(t.line)
        {
            out.push(Violation {
                rule: "BORG-L011",
                file: rel_path.to_string(),
                line: t.line,
                message: "`Ordering::Relaxed` without a `// borg-lint: relaxed-ok(reason)` \
                          justification on the same or previous line; state why no other \
                          memory access depends on this ordering (an empty reason does \
                          not count)"
                    .to_string(),
            });
        }
    }
}

/// Panic macros forbidden in protocol entry points.
const L012_PANIC_MACROS: &[&str] = &["unreachable", "unimplemented", "todo"];

fn rule_l012(
    rel_path: &str,
    class: FileClass,
    tokens: &[Token],
    items: &[Item],
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Violation>,
) {
    // Scope: the protocol crate's library sources (the engine is driven by
    // adversarial schedules — see crates/mc), plus the self-test fixture.
    let protocol_scope =
        rel_path.starts_with("crates/protocol/src/") || rel_path == FIXTURE_SCAN_PATH;
    if !protocol_scope || class != FileClass::Library {
        return;
    }
    for item in items {
        item.walk(&mut |it| {
            if it.kind != ItemKind::Fn || !it.is_pub {
                return;
            }
            let Some((open, close)) = it.body else { return };
            for i in open..=close.min(tokens.len() - 1) {
                let t = &tokens[i];
                if in_test(t.line) {
                    continue;
                }
                if t.kind == TokenKind::Ident
                    && L012_PANIC_MACROS.contains(&t.text.as_str())
                    && is_punct(tokens, i + 1, "!")
                {
                    out.push(Violation {
                        rule: "BORG-L012",
                        file: rel_path.to_string(),
                        line: t.line,
                        message: format!(
                            "`{}!` inside protocol entry point `{}`; the engine is driven \
                             by adversarial event schedules — reject the input (or record \
                             a counter) instead of panicking",
                            t.text,
                            it.name.as_deref().unwrap_or("?"),
                        ),
                    });
                }
                // `x[i]` / `call()[i]` / `arr[0][1]` — panicking index.
                if t.kind == TokenKind::Punct
                    && t.text == "["
                    && i > open
                    && (tokens[i - 1].kind == TokenKind::Ident
                        || tokens[i - 1].text == ")"
                        || tokens[i - 1].text == "]")
                {
                    out.push(Violation {
                        rule: "BORG-L012",
                        file: rel_path.to_string(),
                        line: t.line,
                        message: format!(
                            "slice indexing inside protocol entry point `{}` panics on an \
                             out-of-range value; use `.get()` and handle the miss (or \
                             validate bounds at entry and allowlist the item)",
                            it.name.as_deref().unwrap_or("?"),
                        ),
                    });
                }
            }
        });
    }
}

/// Identifier texts whose presence in a `fn` body marks it as socket I/O
/// (the wire scope of BORG-L013). `connect` / `accept` acquisitions are
/// matched structurally instead (see below), so a field or wrapper named
/// `connect` does not put a function in scope by itself.
const L013_SOCKET_TOKENS: &[&str] = &[
    "TcpStream",
    "TcpListener",
    "UnixStream",
    "UnixListener",
    "NetStream",
    "NetListener",
    "read_exact",
    "write_all",
    "set_read_timeout",
    "set_nonblocking",
    "shutdown",
];

fn rule_l013(
    rel_path: &str,
    class: FileClass,
    tokens: &[Token],
    items: &[Item],
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Violation>,
) {
    // Scope: the wire transport crate's library sources, plus the fixture.
    let net_scope = rel_path.starts_with("crates/net/src/") || rel_path == FIXTURE_SCAN_PATH;
    if !net_scope || class != FileClass::Library {
        return;
    }
    for item in items {
        item.walk(&mut |it| {
            if it.kind != ItemKind::Fn {
                return;
            }
            let Some((open, close)) = it.body else { return };
            let close = close.min(tokens.len() - 1);
            let name = it.name.as_deref().unwrap_or("?");

            // One scan of the body collects everything the three checks
            // need: socket evidence, consuming unwraps, blocking
            // acquisitions, and the timeout guard.
            let mut socket_fn = false;
            let mut unwraps: Vec<(u32, String)> = Vec::new();
            let mut acquires: Vec<(u32, String)> = Vec::new();
            let mut has_timeout_guard = false;
            for i in (open + 1)..=close {
                let t = &tokens[i];
                if t.kind != TokenKind::Ident {
                    continue;
                }
                match t.text.as_str() {
                    s if L013_SOCKET_TOKENS.contains(&s) => {
                        socket_fn = true;
                        if s == "set_read_timeout" && is_punct(tokens, i + 1, "(") {
                            if is_ident(tokens, i + 2, "Some") {
                                has_timeout_guard = true;
                            } else if is_ident(tokens, i + 2, "None") && !in_test(t.line) {
                                out.push(Violation {
                                    rule: "BORG-L013",
                                    file: rel_path.to_string(),
                                    line: t.line,
                                    message: format!(
                                        "`set_read_timeout(None)` in `{name}` removes the read \
                                         deadline; a blocking socket read with no timeout hangs \
                                         forever when the peer dies mid-frame"
                                    ),
                                });
                            }
                        }
                    }
                    // `TcpStream::connect(..)` / `stream.connect(..)` —
                    // a blocking connection acquisition.
                    "connect"
                        if (is_punct(tokens, i - 1, "::") || is_punct(tokens, i - 1, "."))
                            && is_punct(tokens, i + 1, "(") =>
                    {
                        socket_fn = true;
                        acquires.push((t.line, "connect".to_string()));
                    }
                    // Raw zero-arg `.accept()` (the std form). The
                    // workspace wrapper takes the timeout as an argument
                    // and installs it before returning, so `.accept(dur)`
                    // is already guarded.
                    "accept"
                        if is_punct(tokens, i - 1, ".")
                            && is_punct(tokens, i + 1, "(")
                            && is_punct(tokens, i + 2, ")") =>
                    {
                        socket_fn = true;
                        acquires.push((t.line, "accept".to_string()));
                    }
                    u @ ("unwrap" | "expect")
                        if is_punct(tokens, i - 1, ".") && is_punct(tokens, i + 1, "(") =>
                    {
                        unwraps.push((t.line, u.to_string()));
                    }
                    _ => {}
                }
            }

            if socket_fn {
                for (line, which) in &unwraps {
                    if !in_test(*line) {
                        out.push(Violation {
                            rule: "BORG-L013",
                            file: rel_path.to_string(),
                            line: *line,
                            message: format!(
                                "`.{which}()` on a socket I/O path in `{name}`; wire errors \
                                 (peer death, resets, read timeouts) are routine — propagate \
                                 them so the reconnect/reissue machinery can act"
                            ),
                        });
                    }
                }
            }
            if !has_timeout_guard {
                for (line, which) in &acquires {
                    if !in_test(*line) {
                        out.push(Violation {
                            rule: "BORG-L013",
                            file: rel_path.to_string(),
                            line: *line,
                            message: format!(
                                "blocking `{which}` in `{name}` without \
                                 `set_read_timeout(Some(..))` in the same body; install the \
                                 read deadline before the stream escapes so no read can \
                                 block forever"
                            ),
                        });
                    }
                }
            }
        });
    }
}

// ---------------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------------

/// The `borg_obs::Recorder` hooks whose first argument is a metric name.
const L014_METHODS: &[&str] = &["counter", "gauge", "observe", "flight"];

fn rule_l014(
    rel_path: &str,
    class: FileClass,
    tokens: &[Token],
    source: &str,
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Violation>,
) {
    // Scope: all library code (the catalogue/stable-schema contract is a
    // library concern; bins and tests may label ad hoc).
    if class != FileClass::Library {
        return;
    }
    let lines: Vec<&str> = source.lines().collect();
    for i in 2..tokens.len() {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident
            || !L014_METHODS.contains(&t.text.as_str())
            || !is_punct(tokens, i - 1, ".")
            || !is_punct(tokens, i + 1, "(")
            || in_test(t.line)
        {
            continue;
        }
        // First token of the name argument (skip a leading borrow).
        let mut j = i + 2;
        while is_punct(tokens, j, "&") {
            j += 1;
        }
        let Some(arg) = tokens.get(j) else { continue };
        if arg.kind == TokenKind::Ident && arg.text == "format" && is_punct(tokens, j + 1, "!") {
            out.push(Violation {
                rule: "BORG-L014",
                file: rel_path.to_string(),
                line: t.line,
                message: format!(
                    "`format!`-built metric name fed to `.{}()`; recorder names must be \
                     `'static` lowercase dotted literals from the metric catalogue \
                     (dynamic names break the stable tap schema and would leak per call \
                     through the allocation-free flight recorder)",
                    t.text
                ),
            });
            continue;
        }
        // A quoted literal (the lexer blanks string/char literal text);
        // numeric literals (e.g. `Histogram::observe(0.25)`) pass through.
        if arg.kind == TokenKind::Literal && arg.text.is_empty() {
            let Some(name) = first_quoted_on_line(&lines, arg.line) else {
                continue;
            };
            let well_formed = !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_');
            if !well_formed {
                out.push(Violation {
                    rule: "BORG-L014",
                    file: rel_path.to_string(),
                    line: arg.line,
                    message: format!(
                        "metric name {name:?} fed to `.{}()` is not a lowercase dotted \
                         literal; recorder names use `[a-z0-9._]` only (see the metric \
                         catalogue in crates/net/src/metrics.rs and DESIGN §11)",
                        t.text
                    ),
                });
            }
        }
    }
}

fn rule_l015(
    rel_path: &str,
    class: FileClass,
    lexed: &LexedFile,
    items: &[Item],
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Violation>,
) {
    // Scope: algorithm-core library code (plus the fixture).
    let core_scope = rel_path.starts_with("crates/core/src/") || rel_path == FIXTURE_SCAN_PATH;
    if class != FileClass::Library || !core_scope || lexed.hot_paths.is_empty() {
        return;
    }
    let tokens = &lexed.tokens;
    for item in items {
        item.walk(&mut |it| {
            if it.kind != ItemKind::Fn {
                return;
            }
            // A fn opts in via `// borg-lint: hot-path` on its header, its
            // attribute lines, or the line directly above.
            let first = it.start_line.saturating_sub(1);
            let marked = lexed
                .hot_paths
                .iter()
                .any(|&h| first <= h && h <= it.header_line);
            if !marked {
                return;
            }
            let Some((open, close)) = it.body else { return };
            let close = close.min(tokens.len().saturating_sub(1));
            for i in open..=close {
                let t = &tokens[i];
                if t.kind != TokenKind::Ident || in_test(t.line) {
                    continue;
                }
                let what = match t.text.as_str() {
                    "to_vec" if is_punct(tokens, i.wrapping_sub(1), ".") => {
                        Some("`.to_vec()` clones into a fresh Vec")
                    }
                    "collect"
                        if is_punct(tokens, i.wrapping_sub(1), ".")
                            && (is_punct(tokens, i + 1, "(") || is_punct(tokens, i + 1, "::")) =>
                    {
                        Some("`.collect()` materializes a fresh collection")
                    }
                    "Vec" if is_punct(tokens, i + 1, "::") && is_ident(tokens, i + 2, "new") => {
                        Some("`Vec::new()` allocates per call")
                    }
                    _ => None,
                };
                if let Some(what) = what {
                    out.push(Violation {
                        rule: "BORG-L015",
                        file: rel_path.to_string(),
                        line: t.line,
                        message: format!(
                            "{what} inside a `// borg-lint: hot-path` function; reuse an arena \
                             / scratch buffer or an in-place output (justified allocations \
                             carry `// borg-lint: allow(BORG-L015)`)"
                        ),
                    });
                }
            }
        });
    }
}

/// The first double-quoted string on a 1-based source line, if any.
fn first_quoted_on_line<'a>(lines: &[&'a str], line: u32) -> Option<&'a str> {
    let text = lines.get(line as usize - 1)?;
    let start = text.find('"')? + 1;
    let len = text[start..].find('"')?;
    Some(&text[start..start + len])
}

fn is_punct(tokens: &[Token], i: usize, text: &str) -> bool {
    tokens
        .get(i)
        .is_some_and(|t| t.kind == TokenKind::Punct && t.text == text)
}

fn is_ident(tokens: &[Token], i: usize, text: &str) -> bool {
    tokens.get(i).is_some_and(|t| {
        (t.kind == TokenKind::Ident || t.kind == TokenKind::Punct) && t.text == text
    })
}

// ---------------------------------------------------------------------------
// Self-test against the annotated fixture
// ---------------------------------------------------------------------------

/// Path (workspace-relative) the fixture is checked under. The spoofed
/// `crates/desim/src/` prefix puts BORG-L003 in scope so one fixture file
/// can exercise every rule.
pub const FIXTURE_SCAN_PATH: &str = "crates/desim/src/__lint_fixture__.rs";

/// Runs the lint pass over the annotated fixture and diffs the reported
/// violations against the `//~ BORG-Lxxx` expectations embedded in it.
///
/// This proves both directions: every seeded violation is caught, and the
/// test-region / allowlist escapes genuinely suppress reports.
pub fn self_test(fixture: &Path) -> Result<usize, String> {
    let source = std::fs::read_to_string(fixture)
        .map_err(|e| format!("read fixture {}: {e}", fixture.display()))?;
    let expected = parse_expectations(&source);
    if expected.is_empty() {
        return Err(format!(
            "fixture {} contains no //~ expectations",
            fixture.display()
        ));
    }
    let found: BTreeSet<(u32, String)> =
        check_source(FIXTURE_SCAN_PATH, FileClass::Library, &source)
            .into_iter()
            .map(|v| (v.line, v.rule.to_string()))
            .collect();

    let missing: Vec<_> = expected.difference(&found).collect();
    let unexpected: Vec<_> = found.difference(&expected).collect();
    if missing.is_empty() && unexpected.is_empty() {
        return Ok(expected.len());
    }
    let mut msg = String::from("lint self-test failed:\n");
    for (line, rule) in missing {
        msg.push_str(&format!(
            "  missed expected {rule} at fixture line {line}\n"
        ));
    }
    for (line, rule) in unexpected {
        msg.push_str(&format!("  unexpected {rule} at fixture line {line}\n"));
    }
    Err(msg)
}

/// Parses `//~ BORG-Lxxx [BORG-Lyyy ...]` markers; each names a violation
/// expected on its own line.
fn parse_expectations(source: &str) -> BTreeSet<(u32, String)> {
    let mut expected = BTreeSet::new();
    for (idx, text) in source.lines().enumerate() {
        let line = idx as u32 + 1;
        if let Some(pos) = text.find("//~") {
            for word in text[pos + 3..].split_whitespace() {
                let exact_rule_id = word.len() == "BORG-L001".len()
                    && word.starts_with("BORG-L")
                    && word["BORG-L".len()..].chars().all(|c| c.is_ascii_digit());
                if exact_rule_id {
                    expected.insert((line, word.to_string()));
                }
            }
        }
    }
    expected
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_lib(src: &str) -> Vec<Violation> {
        check_source("crates/core/src/archive.rs", FileClass::Library, src)
    }

    fn rules_at(violations: &[Violation]) -> Vec<(&str, u32)> {
        violations.iter().map(|v| (v.rule, v.line)).collect()
    }

    #[test]
    fn l001_flags_unwrap_and_expect_in_library_code() {
        let v = check_lib("fn f() { x.unwrap(); }\nfn g() { y.expect(\"msg\"); }");
        assert_eq!(rules_at(&v), [("BORG-L001", 1), ("BORG-L001", 2)]);
    }

    #[test]
    fn l001_ignores_unwrap_or_and_bins_and_tests() {
        assert!(check_lib("fn f() { x.unwrap_or(0); }").is_empty());
        let bin = check_source(
            "crates/experiments/src/bin/borg-exp.rs",
            FileClass::Bin,
            "fn main() { x.unwrap(); }",
        );
        assert!(bin.is_empty());
        let tst = check_source(
            "tests/e2e.rs",
            FileClass::TestOrBench,
            "fn f() { x.unwrap(); }",
        );
        assert!(tst.is_empty());
    }

    #[test]
    fn l001_exempts_cfg_test_modules_and_test_fns() {
        let src = "fn lib() -> u32 { 1 }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       #[test]\n\
                       fn t() { x.unwrap(); }\n\
                   }\n";
        assert!(check_lib(src).is_empty());
        let src2 = "#[test]\nfn t() { x.unwrap(); }\nfn lib() { y.unwrap(); }";
        assert_eq!(rules_at(&check_lib(src2)), [("BORG-L001", 3)]);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn lib() { x.unwrap(); }";
        assert_eq!(rules_at(&check_lib(src)), [("BORG-L001", 2)]);
    }

    #[test]
    fn l002_flags_entropy_sources_everywhere_including_tests() {
        let src = "#[cfg(test)]\nmod tests {\n fn t() { let mut r = rand::thread_rng(); }\n}";
        assert_eq!(rules_at(&check_lib(src)), [("BORG-L002", 3)]);
        let v = check_lib("let x: f64 = rand::random();\nlet r = StdRng::from_entropy();");
        assert_eq!(rules_at(&v), [("BORG-L002", 1), ("BORG-L002", 2)]);
    }

    #[test]
    fn l003_only_applies_to_virtual_time_components() {
        let src = "use std::time::Instant;";
        assert!(check_lib(src).is_empty());
        let v = check_source("crates/desim/src/sim.rs", FileClass::Library, src);
        assert_eq!(rules_at(&v), [("BORG-L003", 1)]);
        let v = check_source("crates/models/src/perfsim.rs", FileClass::Library, src);
        assert_eq!(rules_at(&v), [("BORG-L003", 1)]);
    }

    #[test]
    fn l004_flags_std_mutex_including_brace_imports() {
        let v = check_lib("use std::sync::Mutex;");
        assert_eq!(rules_at(&v), [("BORG-L004", 1)]);
        let v = check_lib("use std::sync::{Arc,\n    Mutex};");
        assert_eq!(rules_at(&v), [("BORG-L004", 2)]);
        assert!(check_lib("use std::sync::Arc;\nuse parking_lot::Mutex;").is_empty());
    }

    #[test]
    fn l005_flags_objective_equality_both_directions() {
        let v = check_lib("if a.objectives()[0] == b { }\nif c != d.objectives()[1] { }");
        assert_eq!(rules_at(&v), [("BORG-L005", 1), ("BORG-L005", 2)]);
        // Equality in an unrelated argument is not flagged across a comma.
        assert!(check_lib("f(a.objectives(), b == c);").is_empty());
        // Tests may compare exact values they constructed.
        let src = "#[cfg(test)]\nmod tests {\n fn t() { assert!(s.objectives()[0] == 1.0); }\n}";
        assert!(check_lib(src).is_empty());
    }

    #[test]
    fn l006_flags_unbounded_recv_only_in_executor_library_code() {
        let src = "fn master() { let item = result_rx.recv(); }";
        // Out of scope: a non-executor crate.
        assert!(check_lib(src).is_empty());
        // In scope: crates/parallel library sources.
        let v = check_source("crates/parallel/src/threads.rs", FileClass::Library, src);
        assert_eq!(rules_at(&v), [("BORG-L006", 1)]);
        // Bounded waits are fine.
        let bounded = "fn master() { let a = rx.recv_timeout(t); let b = rx.try_recv(); }";
        assert!(check_source(
            "crates/parallel/src/threads.rs",
            FileClass::Library,
            bounded
        )
        .is_empty());
        // Test regions are exempt (a test may block on a known-finite send).
        let tst = "#[cfg(test)]\nmod tests {\n fn t() { rx.recv(); }\n}";
        assert!(check_source("crates/parallel/src/threads.rs", FileClass::Library, tst).is_empty());
        // The allowlist escape works for deliberate parks.
        let allowed = "fn park() { let _ = stop_rx.recv(); } // borg-lint: allow(BORG-L006)";
        assert!(check_source(
            "crates/parallel/src/threads.rs",
            FileClass::Library,
            allowed
        )
        .is_empty());
    }

    #[test]
    fn l007_flags_executor_local_recovery_state() {
        let src = "fn master() { let mut in_flight: HashMap<u64, InFlight> = HashMap::new(); }";
        // Out of scope: a non-executor crate, and the protocol crate itself.
        assert!(check_lib(src).is_empty());
        assert!(check_source("crates/protocol/src/engine.rs", FileClass::Library, src).is_empty());
        // In scope: both executor crates' library sources.
        let v = check_source("crates/parallel/src/threads.rs", FileClass::Library, src);
        assert_eq!(rules_at(&v), [("BORG-L007", 1)]);
        let v = check_source("crates/models/src/queueing.rs", FileClass::Library, src);
        assert_eq!(rules_at(&v), [("BORG-L007", 1)]);
        // Struct fields are declarations too.
        let field = "struct Shadow {\n    deadlines: BTreeMap<u64, f64>,\n}";
        let v = check_source("crates/parallel/src/threads.rs", FileClass::Library, field);
        assert_eq!(rules_at(&v), [("BORG-L007", 2)]);
    }

    #[test]
    fn l007_ignores_benign_names_boundaries_and_tests() {
        let in_parallel =
            |src| check_source("crates/parallel/src/threads.rs", FileClass::Library, src);
        // A collection bound to a non-protocol name is fine.
        assert!(
            in_parallel("let candidates: HashMap<u64, Candidate> = HashMap::new();").is_empty()
        );
        // A protocol name without a collection type is fine (e.g. a count).
        assert!(in_parallel("let in_flight: usize = proto.outstanding_len();").is_empty());
        // A name in an unrelated argument is not matched across a comma.
        assert!(in_parallel("report(outstanding, HashMap::new());").is_empty());
        // Test regions may build whatever expectation tables they like.
        let tst = "#[cfg(test)]\nmod tests {\n fn t() { let deadlines: HashSet<u64> = x; }\n}";
        assert!(in_parallel(tst).is_empty());
        // The allowlist escape works.
        let allowed =
            "let in_flight: HashMap<u64, F> = HashMap::new(); // borg-lint: allow(BORG-L007)";
        assert!(in_parallel(allowed).is_empty());
    }

    #[test]
    fn l008_flags_print_macros_in_library_code() {
        let v = check_lib("fn f() { println!(\"x = {x}\"); }\nfn g() { eprintln!(\"oops\"); }");
        assert_eq!(rules_at(&v), [("BORG-L008", 1), ("BORG-L008", 2)]);
        // `writeln!` to a caller-supplied sink is fine, as is a plain
        // identifier named `println` without the macro bang.
        assert!(check_lib("fn f(w: &mut W) { writeln!(w, \"x\").ok(); }").is_empty());
        assert!(check_lib("fn f() { let println = 3; }").is_empty());
    }

    #[test]
    fn l008_exempts_bins_tests_and_carved_out_paths() {
        let src = "fn f() { println!(\"progress\"); }";
        let bin = check_source(
            "crates/experiments/src/bin/borg-exp.rs",
            FileClass::Bin,
            src,
        );
        assert!(bin.is_empty());
        let tst = check_source("tests/e2e.rs", FileClass::TestOrBench, src);
        assert!(tst.is_empty());
        // The console tool and the obs exporters are carved out by path.
        assert!(check_source("crates/xtask/src/golden.rs", FileClass::Library, src).is_empty());
        assert!(check_source("crates/obs/src/export.rs", FileClass::Library, src).is_empty());
        // Test regions inside a library file are exempt.
        let region = "#[cfg(test)]\nmod tests {\n fn t() { println!(\"dbg\"); }\n}";
        assert!(check_lib(region).is_empty());
        // The allowlist escape works.
        let allowed = "fn f() { println!(\"x\"); } // borg-lint: allow(BORG-L008)";
        assert!(check_lib(allowed).is_empty());
    }

    #[test]
    fn l009_flags_raw_thread_spawn_in_experiments() {
        let src = "fn sweep() { let h = std::thread::spawn(worker); }";
        // Out of scope: any other crate may spawn (borg-runner itself must).
        assert!(check_lib(src).is_empty());
        assert!(check_source("crates/runner/src/lib.rs", FileClass::Library, src).is_empty());
        // In scope: experiments library and bin sources.
        let v = check_source("crates/experiments/src/table2.rs", FileClass::Library, src);
        assert_eq!(rules_at(&v), [("BORG-L009", 1)]);
        let v = check_source(
            "crates/experiments/src/bin/borg-exp.rs",
            FileClass::Bin,
            src,
        );
        assert_eq!(rules_at(&v), [("BORG-L009", 1)]);
        // The bare `thread::spawn` path form is the same call.
        let bare = "fn sweep() { thread::spawn(|| work()); }";
        let v = check_source("crates/experiments/src/faults.rs", FileClass::Library, bare);
        assert_eq!(rules_at(&v), [("BORG-L009", 1)]);
    }

    #[test]
    fn l009_ignores_scoped_pools_tests_and_allowlist() {
        let in_exp =
            |src| check_source("crates/experiments/src/table2.rs", FileClass::Library, src);
        // A structured scope handle is not a raw spawn.
        assert!(in_exp("fn pool(scope: &Scope) { scope.spawn(|| work()); }").is_empty());
        // An unrelated `spawn` identifier without the `thread::` path is silent.
        assert!(in_exp("fn f() { spawn(); }").is_empty());
        // Test regions are exempt (a test may exercise raw threads).
        let tst = "#[cfg(test)]\nmod tests {\n fn t() { std::thread::spawn(|| 1); }\n}";
        assert!(in_exp(tst).is_empty());
        // The allowlist escape works.
        let allowed = "fn f() { std::thread::spawn(run); } // borg-lint: allow(BORG-L009)";
        assert!(in_exp(allowed).is_empty());
    }

    #[test]
    fn l013_flags_socket_unwraps_only_in_net_library_code() {
        let src = "fn pump(s: &mut TcpStream) { s.read_exact(&mut buf).unwrap(); }";
        // Out of scope: other crates get the generic L001 but not L013.
        assert_eq!(rules_at(&check_lib(src)), [("BORG-L001", 1)]);
        // In scope: the same unwrap is also a wire-contract violation.
        let v = check_source("crates/net/src/transport.rs", FileClass::Library, src);
        assert_eq!(rules_at(&v), [("BORG-L001", 1), ("BORG-L013", 1)]);
        // An unwrap in a fn with no socket evidence stays L001-only even
        // inside the net crate.
        let plain = "fn parse(x: Option<u32>) -> u32 { x.unwrap() }";
        let v = check_source("crates/net/src/codec.rs", FileClass::Library, plain);
        assert_eq!(rules_at(&v), [("BORG-L001", 1)]);
        // Test regions are exempt.
        let tst = "#[cfg(test)]\nmod tests {\n fn t(s: &mut TcpStream) \
                   { s.read_exact(&mut b).unwrap(); }\n}";
        assert!(check_source("crates/net/src/transport.rs", FileClass::Library, tst).is_empty());
    }

    #[test]
    fn l013_requires_read_deadlines_on_blocking_acquisitions() {
        let in_net = |src| check_source("crates/net/src/transport.rs", FileClass::Library, src);
        // A connect with no deadline in the same body.
        let bare = "fn dial(a: &str) -> std::io::Result<TcpStream> { TcpStream::connect(a) }";
        assert_eq!(rules_at(&in_net(bare)), [("BORG-L013", 1)]);
        // A raw zero-arg accept with no deadline.
        let acc = "fn admit(l: &TcpListener) { let (s, _) = l.accept()?; }";
        assert_eq!(rules_at(&in_net(acc)), [("BORG-L013", 1)]);
        // Installing the deadline in the same body is the sanctioned shape.
        let guarded = "fn dial(a: &str) -> std::io::Result<TcpStream> {\n\
                       let s = TcpStream::connect(a)?;\n\
                       s.set_read_timeout(Some(t))?;\n\
                       Ok(s)\n}";
        assert!(in_net(guarded).is_empty());
        // The workspace wrapper form carries the timeout as an argument.
        let wrapper = "fn admit(l: &NetListener) { let s = l.accept(timeout)?; }";
        assert!(in_net(wrapper).is_empty());
        // Removing a deadline is flagged wherever it happens.
        let none = "fn unguard(s: &NetStream) { s.set_read_timeout(None).ok(); }";
        assert_eq!(rules_at(&in_net(none)), [("BORG-L013", 1)]);
        // A field access or wrapper named `connect` is not an acquisition.
        let field = "fn go(o: &Opts) { connect_with_backoff(&o.connect, &mut b, t); }";
        assert!(in_net(field).is_empty());
        // The allowlist escape works for deliberate probes.
        let allowed = "fn probe(a: &str) -> bool { TcpStream::connect(a).is_ok() } \
             // borg-lint: allow(BORG-L013)";
        assert!(in_net(allowed).is_empty());
    }

    #[test]
    fn l014_flags_dynamic_and_malformed_metric_names_in_library_code() {
        // format!-built names are flagged wherever library code records.
        let dynamic = "fn f(rec: &dyn Recorder, w: usize) \
                       { rec.counter(&format!(\"net.w{w}\"), 1); }";
        assert_eq!(rules_at(&check_lib(dynamic)), [("BORG-L014", 1)]);
        // Malformed literals: uppercase and hyphens are out of charset.
        let upper = "fn f(rec: &dyn Recorder) { rec.gauge(\"engine.Outstanding\", 1.0); }";
        assert_eq!(rules_at(&check_lib(upper)), [("BORG-L014", 1)]);
        let hyphen =
            "fn f(rec: &dyn Recorder) { rec.flight(\"net.worker-death\", 0.0, 0, 0, 0.0); }";
        assert_eq!(rules_at(&check_lib(hyphen)), [("BORG-L014", 1)]);
        // Catalogue consts, helper calls, well-formed literals, and
        // value-first sinks stay silent.
        let fine = "fn f(rec: &dyn Recorder, h: &mut Histogram, e: &Event) {\n\
                    rec.counter(metrics::FRAMES_SENT, 1);\n\
                    rec.counter(event_metric(e), 1);\n\
                    rec.observe(\"net.rtt_seconds\", 0.5);\n\
                    h.observe(0.25);\n}";
        assert!(check_lib(fine).is_empty());
        // Bins and tests may label ad hoc.
        let v = check_source(
            "crates/experiments/src/bin/borg-exp.rs",
            FileClass::Bin,
            dynamic,
        );
        assert!(v.is_empty());
        let tst = "#[cfg(test)]\nmod tests {\n fn t(rec: &dyn Recorder) \
                   { rec.counter(&format!(\"x{0}\", 1), 1); }\n}";
        assert!(check_lib(tst).is_empty());
        // The allowlist escape works.
        let allowed = "fn f(rec: &dyn Recorder) \
                       { rec.gauge(\"Legacy.Name\", 1.0); } // borg-lint: allow(BORG-L014)";
        assert!(check_lib(allowed).is_empty());
    }

    #[test]
    fn l015_flags_allocations_only_in_marked_core_functions() {
        let src = "// borg-lint: hot-path\n\
                   fn produce(&mut self) -> Vec<f64> {\n\
                       let parents: Vec<usize> = idxs.iter().collect();\n\
                       let snapshot = xs.to_vec();\n\
                       let mut out = Vec::new();\n\
                       out\n\
                   }\n\
                   fn cold(&self) -> Vec<f64> { xs.to_vec() }\n";
        assert_eq!(
            rules_at(&check_lib(src)),
            [("BORG-L015", 3), ("BORG-L015", 4), ("BORG-L015", 5)]
        );
        // Out of scope: the same source outside crates/core.
        let elsewhere = check_source("crates/metrics/src/hypervolume.rs", FileClass::Library, src);
        assert!(elsewhere.is_empty());
    }

    #[test]
    fn l015_recognizes_turbofish_collect_and_honors_allows() {
        let src = "// borg-lint: hot-path\n\
                   fn consume(&mut self) {\n\
                       let v = it.collect::<Vec<_>>();\n\
                   }\n";
        assert_eq!(rules_at(&check_lib(src)), [("BORG-L015", 3)]);
        let allowed = "// borg-lint: hot-path\n\
                       fn consume(&mut self) {\n\
                           // borg-lint: allow(BORG-L015)\n\
                           let v = it.collect::<Vec<_>>();\n\
                       }\n";
        assert!(check_lib(allowed).is_empty());
        // `Vec::with_capacity` and reuse via clear/extend are the sanctioned
        // shapes and stay silent.
        let sanctioned = "// borg-lint: hot-path\n\
                          fn produce(&mut self, out: &mut Vec<f64>) {\n\
                              out.clear();\n\
                              out.extend_from_slice(&xs);\n\
                          }\n";
        assert!(check_lib(sanctioned).is_empty());
    }

    #[test]
    fn allowlist_suppresses_on_same_or_preceding_line() {
        let same = "fn f() { x.unwrap(); } // borg-lint: allow(BORG-L001)";
        assert!(check_lib(same).is_empty());
        let above = "// borg-lint: allow(BORG-L001)\nfn f() { x.unwrap(); }";
        assert!(check_lib(above).is_empty());
        let wrong_rule = "// borg-lint: allow(BORG-L002)\nfn f() { x.unwrap(); }";
        assert_eq!(rules_at(&check_lib(wrong_rule)), [("BORG-L001", 2)]);
        let too_far = "// borg-lint: allow(BORG-L001)\n\nfn f() { x.unwrap(); }";
        assert_eq!(rules_at(&check_lib(too_far)), [("BORG-L001", 3)]);
    }

    #[test]
    fn expectation_parser_reads_markers() {
        let exp = parse_expectations("x.unwrap(); //~ BORG-L001\ny(); //~ BORG-L002 BORG-L004\n");
        let items: Vec<_> = exp.into_iter().collect();
        assert_eq!(
            items,
            [
                (1, "BORG-L001".to_string()),
                (2, "BORG-L002".to_string()),
                (2, "BORG-L004".to_string()),
            ]
        );
    }
}
