//! Golden-cell regression gate: one Table II cell and one faults-sweep
//! cell, pinned to checked-in CSVs under `results/golden/`.
//!
//! The same-seed-twice arm in [`crate::determinism`] proves a build agrees
//! with *itself*; this gate proves it agrees with the build that generated
//! the goldens — i.e. that a refactor of the master-slave protocol did not
//! change the schedule, the archive, or the fault ledger for fixed seeds.
//! Both cells run the real Borg MOEA in the virtual-time executor with
//! **sampled** `T_A` (`TaMode::Measured` charges wall-clock noise into the
//! virtual schedule, which would make a cross-build golden meaningless) and
//! the exact replicate-seed derivation Table II and the faults sweep use,
//! so a drift here is a drift in the published experiment tables.
//!
//! Regenerate deliberately with `cargo xtask golden --bless` — never to
//! silence a diff you cannot explain.

use borg_desim::fault::FaultConfig;
use borg_experiments::suite::PaperProblem;
use borg_experiments::table2::replicate_seeds;
use borg_models::dist::Dist;
use borg_obs::NoopRecorder;
use borg_parallel::virtual_exec::{
    run_virtual_async, run_virtual_async_faulty, TaMode, VirtualConfig, VirtualRunResult,
};
use std::path::Path;

/// Golden CSV location, relative to the workspace root.
pub const GOLDEN_REL: &str = "results/golden/protocol_cells.csv";

/// Root seed shared with `Table2Config::default` / `FaultsConfig::default`,
/// so these cells pin the same replicate streams the experiments consume.
const ROOT_SEED: u64 = 20130520;
const TF_MEAN: f64 = 0.001;
const PROCESSORS: u32 = 8;
const REPLICATES: u32 = 2;
const MAX_NFE: u64 = 2_000;
/// Failure rate for the faults-sweep cell (ties to the sweep's worst column).
const FAILURE_RATE: f64 = 0.25;

/// Summary of a passing golden comparison.
pub struct GoldenReport {
    /// Data rows compared (excludes the header).
    pub rows: usize,
}

fn cell_config(seed: u64) -> VirtualConfig {
    VirtualConfig {
        processors: PROCESSORS,
        max_nfe: MAX_NFE,
        t_f: Dist::normal_cv(TF_MEAN, 0.1),
        t_c: Dist::Constant(0.000_006),
        t_a: TaMode::Sampled(Dist::Constant(0.000_03)),
        seed,
    }
}

/// FNV-1a over every archive member's variable and objective bits, in
/// archive order — a compact, bit-exact fingerprint of the final front.
fn archive_fingerprint(result: &VirtualRunResult) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |value: u64| {
        for byte in value.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        }
    };
    for s in result.engine.archive().solutions() {
        for v in s.variables() {
            mix(v.to_bits());
        }
        for o in s.objectives() {
            mix(o.to_bits());
        }
    }
    h
}

fn push_row(out: &mut String, arm: &str, f: f64, replicate: u32, seed: u64, r: &VirtualRunResult) {
    use std::fmt::Write as _;
    let log = &r.fault_log;
    // Floats are serialized as raw bit patterns: the gate's contract is
    // bit-identity, and decimal round-tripping would hide 1-ulp drift.
    let _ = writeln!(
        out,
        "{arm},{},{PROCESSORS},{:016x},{f},{replicate},{seed:016x},{:016x},{},{},{:016x},{},{},{},{},{},{}",
        PaperProblem::Dtlz2.name(),
        TF_MEAN.to_bits(),
        r.outcome.elapsed.to_bits(),
        r.engine.nfe(),
        r.engine.archive().solutions().len(),
        archive_fingerprint(r),
        log.injected(),
        log.detected(),
        log.recovered(),
        log.reissues,
        log.duplicates_suppressed,
        log.wasted_nfe,
    );
}

/// Recomputes both golden cells with the current engine and renders the CSV.
pub fn compute() -> String {
    let mut out = String::from(
        "arm,problem,P,tf_bits,f,replicate,seed,elapsed_bits,nfe,archive_len,\
         archive_fnv,injected,detected,recovered,reissues,dups_suppressed,wasted_nfe\n",
    );
    let problem = PaperProblem::Dtlz2.build();
    let borg = PaperProblem::Dtlz2.borg_config(0.1);
    let seeds = replicate_seeds(
        ROOT_SEED,
        PaperProblem::Dtlz2,
        TF_MEAN,
        PROCESSORS,
        REPLICATES,
    );

    for (i, &seed) in seeds.iter().enumerate() {
        let r = run_virtual_async(
            problem.as_ref(),
            borg.clone(),
            &cell_config(seed),
            &NoopRecorder,
            |_, _| {},
        );
        push_row(&mut out, "table2", 0.0, i as u32, seed, &r);
    }

    let faults = FaultConfig::degraded(FAILURE_RATE);
    for (i, &seed) in seeds.iter().enumerate() {
        let r = run_virtual_async_faulty(
            problem.as_ref(),
            borg.clone(),
            &cell_config(seed),
            &faults,
            &NoopRecorder,
            |_, _| {},
        );
        push_row(&mut out, "faults", FAILURE_RATE, i as u32, seed, &r);
    }
    out
}

/// Compares the current engine's cells against the checked-in golden CSV.
pub fn check(root: &Path) -> Result<GoldenReport, String> {
    let path = root.join(GOLDEN_REL);
    let golden = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "golden CSV {} unreadable ({e}); generate it with `cargo xtask golden --bless`",
            path.display()
        )
    })?;
    let current = compute();
    if golden == current {
        return Ok(GoldenReport {
            rows: current.lines().count().saturating_sub(1),
        });
    }
    // Point at the first diverging line so the failure is actionable.
    for (n, (g, c)) in golden.lines().zip(current.lines()).enumerate() {
        if g != c {
            return Err(format!(
                "golden drift at {GOLDEN_REL}:{}: golden `{g}` vs current `{c}`",
                n + 1
            ));
        }
    }
    Err(format!(
        "golden drift: {GOLDEN_REL} has {} lines, current output has {}",
        golden.lines().count(),
        current.lines().count()
    ))
}

/// Regenerates the golden CSV from the current engine.
pub fn bless(root: &Path) -> Result<(), String> {
    let path = root.join(GOLDEN_REL);
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    }
    std::fs::write(&path, compute()).map_err(|e| format!("write {}: {e}", path.display()))?;
    println!("golden CSV written to {}", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_cells_are_reproducible_in_process() {
        // The golden gate is only meaningful if compute() is deterministic.
        let a = compute();
        let b = compute();
        assert_eq!(a, b);
        assert_eq!(a.lines().count(), 1 + 2 * REPLICATES as usize);
    }

    #[test]
    fn faults_arm_actually_injects() {
        let csv = compute();
        let faults_row = csv
            .lines()
            .find(|l| l.starts_with("faults,"))
            .expect("faults arm present");
        let injected: u64 = faults_row
            .split(',')
            .nth(11)
            .expect("injected column")
            .parse()
            .expect("numeric injected column");
        assert!(injected > 0, "faults cell injected nothing: {faults_row}");
    }

    #[test]
    fn checked_in_golden_matches_current_engine() {
        let root = crate::files::workspace_root().expect("workspace root");
        let report = check(&root).expect("golden CSV must match the current engine");
        assert_eq!(report.rows, 2 * REPLICATES as usize);
    }
}
