//! A minimal Rust lexer for the custom lint pass.
//!
//! The environment has no crates.io access, so `syn`/`proc-macro2` are
//! unavailable; the lint rules instead run over a hand-rolled token stream.
//! The lexer understands exactly what the rules need: identifiers, multi-
//! character operators (`==`, `!=`, `::`, …), string/char/lifetime
//! disambiguation, nested block comments, raw strings — and it captures
//! `// borg-lint: allow(...)` comments so the rule engine can honor
//! allowlists. It does **not** attempt full fidelity (no token values for
//! literals beyond their text).

/// Kinds of tokens the rule engine distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Any literal (number, string, char, byte string).
    Literal,
    /// A lifetime such as `'a`.
    Lifetime,
    /// Punctuation, possibly multi-character (`==`, `::`, `..=`).
    Punct,
}

/// One lexed token with its source line (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: u32,
}

/// A `// borg-lint: allow(RULE, ...)` directive found in a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowDirective {
    /// Rule ids named in the directive, e.g. `BORG-L001`.
    pub rules: Vec<String>,
    /// Line the comment appears on (1-based).
    pub line: u32,
}

/// A `// borg-lint: relaxed-ok(reason)` directive justifying a relaxed
/// atomic ordering on its line (BORG-L011). The reason is mandatory —
/// an empty parenthesis is not a directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelaxedOkDirective {
    /// The justification text inside the parentheses.
    pub reason: String,
    /// Line the comment appears on (1-based).
    pub line: u32,
}

/// Result of lexing one file.
#[derive(Debug, Default)]
pub struct LexedFile {
    pub tokens: Vec<Token>,
    pub allows: Vec<AllowDirective>,
    pub relaxed_oks: Vec<RelaxedOkDirective>,
    /// Lines carrying a `// borg-lint: hot-path` marker. The marker sits on
    /// (or directly above) a function header and opts that function into
    /// the allocation lint BORG-L015.
    pub hot_paths: Vec<u32>,
}

/// Multi-character punctuation recognized as single tokens, longest first.
/// Only operators the rules inspect (or that would confuse them if split)
/// need to be here; everything else lexes as single characters. `>>` is
/// absent on purpose: whether it is a shift or two closing angle brackets
/// is contextual, and the lexer decides with an angle-depth counter.
const MULTI_PUNCT: &[&str] = &[
    "..=", "<<=", ">>=", "==", "!=", "<=", ">=", "::", "->", "=>", "..", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "|=", "&=", "<<",
];

/// Lexes Rust source into the token stream the rules consume.
pub fn lex(source: &str) -> LexedFile {
    let chars: Vec<char> = source.chars().collect();
    let mut out = LexedFile::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    // Open generic angle brackets at the cursor. `<` opens one when the
    // preceding token could start a generic path (identifier, `::`, or a
    // closing `>`); statement boundaries reset it. Heuristic, but exact on
    // rustfmt-formatted code, where a shift at angle depth ≥ 2 cannot occur.
    let mut angle_depth: u32 = 0;

    while i < chars.len() {
        let c = chars[i];

        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }

        // Line comments (incl. doc comments) — may carry allow directives.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i;
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            if let Some(directive) = parse_allow_directive(&text, line) {
                out.allows.push(directive);
            }
            if let Some(directive) = parse_relaxed_ok_directive(&text, line) {
                out.relaxed_oks.push(directive);
            }
            if is_hot_path_directive(&text) {
                out.hot_paths.push(line);
            }
            continue;
        }

        // Block comments, which nest in Rust.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let mut depth = 1;
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            continue;
        }

        // Raw / byte strings: r"..", r#".."#, b"..", br#".."#.
        if (c == 'r' || c == 'b') && is_raw_or_byte_string_start(&chars, i) {
            let (next_i, newlines) = consume_string_like(&chars, i);
            out.tokens.push(Token {
                kind: TokenKind::Literal,
                text: String::new(),
                line,
            });
            line += newlines;
            i = next_i;
            continue;
        }

        // Identifiers and keywords, including raw identifiers (`r#type`).
        // Raw *strings* (`r#"…"`) were consumed above, so an `r#` here is
        // always an identifier prefix.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            if c == 'r'
                && chars.get(i + 1) == Some(&'#')
                && chars
                    .get(i + 2)
                    .is_some_and(|x| x.is_alphabetic() || *x == '_')
            {
                i += 2;
            }
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }

        // Numbers (suffixes and exponents folded into the token).
        if c.is_ascii_digit() {
            let start = i;
            i += 1;
            while i < chars.len() {
                let d = chars[i];
                if d.is_alphanumeric() || d == '_' {
                    // `1e-9`: sign directly after an exponent marker.
                    if (d == 'e' || d == 'E')
                        && matches!(chars.get(i + 1), Some('+') | Some('-'))
                        && chars.get(i + 2).is_some_and(|x| x.is_ascii_digit())
                    {
                        i += 2;
                    }
                    i += 1;
                } else if d == '.' && chars.get(i + 1).is_some_and(|x| x.is_ascii_digit()) {
                    // A decimal point — but not the `..` of a range.
                    i += 1;
                } else {
                    break;
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::Literal,
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }

        // Ordinary strings.
        if c == '"' {
            let (next_i, newlines) = consume_quoted(&chars, i + 1, '"');
            out.tokens.push(Token {
                kind: TokenKind::Literal,
                text: String::new(),
                line,
            });
            line += newlines;
            i = next_i;
            continue;
        }

        // `'` starts either a char literal or a lifetime.
        if c == '\'' {
            if is_lifetime(&chars, i) {
                let start = i;
                i += 1;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    text: chars[start..i].iter().collect(),
                    line,
                });
            } else {
                let (next_i, newlines) = consume_quoted(&chars, i + 1, '\'');
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: String::new(),
                    line,
                });
                line += newlines;
                i = next_i;
            }
            continue;
        }

        // `>>` at angle depth ≥ 2 is two closing brackets of nested
        // generics (`Vec<Vec<u64>>`), not a shift: split it so the rules
        // see the type structure. `>>=` is always a shift-assign.
        if c == '>'
            && chars.get(i + 1) == Some(&'>')
            && chars.get(i + 2) != Some(&'=')
            && angle_depth >= 2
        {
            for _ in 0..2 {
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: ">".to_string(),
                    line,
                });
            }
            angle_depth -= 2;
            i += 2;
            continue;
        }

        // Punctuation, longest known operator first.
        let mut text = c.to_string();
        for op in MULTI_PUNCT {
            let op_chars: Vec<char> = op.chars().collect();
            if chars[i..].starts_with(&op_chars) {
                text = (*op).to_string();
                break;
            }
        }
        if text == ">" && chars.get(i + 1) == Some(&'>') {
            // A real shift (or shift outside generic context): the depth
            // check above declined to split, so keep the pair whole.
            text = ">>".to_string();
        }
        match text.as_str() {
            "<" => {
                let opens_generic = out
                    .tokens
                    .last()
                    .is_some_and(|t| t.kind == TokenKind::Ident || t.text == "::" || t.text == ">");
                if opens_generic {
                    angle_depth += 1;
                }
            }
            ">" => angle_depth = angle_depth.saturating_sub(1),
            ";" | "{" | "}" => angle_depth = 0,
            _ => {}
        }
        i += text.chars().count();
        out.tokens.push(Token {
            kind: TokenKind::Punct,
            text,
            line,
        });
    }

    out
}

/// Recognizes `// borg-lint: allow(BORG-L001, BORG-L002)` comments.
fn parse_allow_directive(comment: &str, line: u32) -> Option<AllowDirective> {
    let body = comment.trim_start_matches('/').trim();
    let rest = body.strip_prefix("borg-lint:")?.trim();
    let args = rest.strip_prefix("allow(")?.strip_suffix(')')?;
    let rules: Vec<String> = args
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        None
    } else {
        Some(AllowDirective { rules, line })
    }
}

/// Recognizes `// borg-lint: relaxed-ok(<non-empty reason>)` comments.
fn parse_relaxed_ok_directive(comment: &str, line: u32) -> Option<RelaxedOkDirective> {
    let body = comment.trim_start_matches('/').trim();
    let rest = body.strip_prefix("borg-lint:")?.trim();
    let reason = rest.strip_prefix("relaxed-ok(")?.strip_suffix(')')?.trim();
    if reason.is_empty() {
        None
    } else {
        Some(RelaxedOkDirective {
            reason: reason.to_string(),
            line,
        })
    }
}

/// Recognizes `// borg-lint: hot-path` comments (no arguments).
fn is_hot_path_directive(comment: &str) -> bool {
    let body = comment.trim_start_matches('/').trim();
    body.strip_prefix("borg-lint:")
        .is_some_and(|rest| rest.trim() == "hot-path")
}

/// Whether position `i` (at `r` or `b`) begins a raw or byte string.
fn is_raw_or_byte_string_start(chars: &[char], i: usize) -> bool {
    let mut j = i;
    // Optional second prefix letter: br / rb.
    if matches!(chars.get(j), Some('r') | Some('b'))
        && matches!(chars.get(j + 1), Some('r') | Some('b'))
        && chars.get(j) != chars.get(j + 1)
    {
        j += 1;
    }
    match chars.get(j) {
        Some('r') => {
            // Raw: any number of #, then a quote.
            let mut k = j + 1;
            while chars.get(k) == Some(&'#') {
                k += 1;
            }
            chars.get(k) == Some(&'"') && (j == i || chars[i] == 'b')
        }
        Some('b') if j == i => chars.get(j + 1) == Some(&'"'),
        _ => false,
    }
}

/// Consumes a (possibly raw/byte) string starting at the prefix; returns
/// the index after the closing delimiter and the newline count inside.
fn consume_string_like(chars: &[char], mut i: usize) -> (usize, u32) {
    // Skip prefix letters, remembering whether `r` makes this a raw string
    // (raw strings have no escape processing).
    let mut raw = false;
    while matches!(chars.get(i), Some('r') | Some('b')) {
        raw |= chars[i] == 'r';
        i += 1;
    }
    let mut hashes = 0usize;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    debug_assert_eq!(chars.get(i), Some(&'"'));
    i += 1;
    let mut newlines = 0u32;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            newlines += 1;
        }
        if c == '\\' && !raw {
            i += 2;
            continue;
        }
        if c == '"' {
            // Raw strings need the matching number of closing hashes.
            let mut k = i + 1;
            let mut seen = 0usize;
            while seen < hashes && chars.get(k) == Some(&'#') {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return (k, newlines);
            }
        }
        i += 1;
    }
    (i, newlines)
}

/// Consumes a quoted literal body (after the opening quote); returns the
/// index after the closing quote and the newline count inside.
fn consume_quoted(chars: &[char], mut i: usize, quote: char) -> (usize, u32) {
    let mut newlines = 0u32;
    while i < chars.len() {
        let c = chars[i];
        if c == '\\' {
            i += 2;
            continue;
        }
        if c == '\n' {
            newlines += 1;
        }
        if c == quote {
            return (i + 1, newlines);
        }
        i += 1;
    }
    (i, newlines)
}

/// Disambiguates `'a` (lifetime) from `'a'` (char literal) at a `'`.
fn is_lifetime(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some(c) if c.is_alphabetic() || *c == '_' => {
            // `'x'` is a char literal; `'x,` / `'x>` / `'x ` is a lifetime.
            // Identifier chars may follow (`'static`).
            let mut j = i + 2;
            while chars
                .get(j)
                .is_some_and(|x| x.is_alphanumeric() || *x == '_')
            {
                j += 1;
            }
            chars.get(j) != Some(&'\'')
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn idents_and_puncts_tokenize() {
        let lexed = lex("let x = a.unwrap();");
        let texts: Vec<&str> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["let", "x", "=", "a", ".", "unwrap", "(", ")", ";"]);
    }

    #[test]
    fn multi_char_operators_stay_whole() {
        let lexed = lex("a == b != c :: d ..= e .. f");
        let puncts: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Punct)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(puncts, ["==", "!=", "::", "..=", ".."]);
    }

    #[test]
    fn comments_are_skipped_but_lines_advance() {
        let lexed = lex("// hello\n/* multi\nline */ x");
        assert_eq!(lexed.tokens.len(), 1);
        assert_eq!(lexed.tokens[0].text, "x");
        assert_eq!(lexed.tokens[0].line, 3);
    }

    #[test]
    fn nested_block_comments() {
        assert_eq!(idents("/* a /* b */ c */ real"), ["real"]);
    }

    #[test]
    fn strings_do_not_leak_tokens() {
        assert_eq!(idents(r#"let s = "fn unwrap :: Instant";"#), ["let", "s"]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        assert_eq!(
            idents(r##"let s = r#"has "quotes" and unwrap"# ; tail"##),
            ["let", "s", "tail"]
        );
    }

    #[test]
    fn char_literal_versus_lifetime() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, ["'a", "'a"]);
        let literals = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .count();
        assert_eq!(literals, 2);
    }

    #[test]
    fn numeric_literals_with_suffix_and_ranges() {
        let lexed = lex("0.5f64..1_000e-3");
        let texts: Vec<&str> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["0.5f64", "..", "1_000e-3"]);
    }

    #[test]
    fn allow_directives_are_captured() {
        let lexed = lex("x(); // borg-lint: allow(BORG-L001, BORG-L003)\ny();");
        assert_eq!(lexed.allows.len(), 1);
        assert_eq!(lexed.allows[0].line, 1);
        assert_eq!(lexed.allows[0].rules, ["BORG-L001", "BORG-L003"]);
    }

    #[test]
    fn nested_generics_split_but_shifts_stay_whole() {
        let lexed = lex("let m: Vec<Vec<u64>> = v; let s = a >> b; let t = c >>= 1;");
        let puncts: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Punct)
            .map(|t| t.text.as_str())
            .collect();
        // The nested-generic close is two `>` tokens; the shifts survive.
        assert_eq!(
            puncts,
            [":", "<", "<", ">", ">", "=", ";", "=", ">>", ";", "=", ">>=", ";"]
        );
    }

    #[test]
    fn triple_nested_generics_split_fully() {
        let lexed = lex("x: Option<Option<Option<u8>>>");
        let closes = lexed.tokens.iter().filter(|t| t.text == ">").count();
        assert_eq!(closes, 3);
        assert!(!lexed.tokens.iter().any(|t| t.text == ">>"));
    }

    #[test]
    fn turbofish_counts_toward_angle_depth() {
        let lexed = lex("m.entry::<BTreeMap<u64, Vec<u8>>>(k)");
        let closes = lexed.tokens.iter().filter(|t| t.text == ">").count();
        assert_eq!(closes, 3);
    }

    #[test]
    fn comparison_does_not_poison_shift_after_boundary() {
        // `a < b` bumps the heuristic depth, but the `;` boundary resets
        // it before the shift on the next statement.
        let lexed = lex("let p = a < b; let q = c >> d;");
        assert!(lexed.tokens.iter().any(|t| t.text == ">>"));
    }

    #[test]
    fn raw_identifiers_lex_as_single_idents() {
        let lexed = lex("let r#type = r#fn + 1;");
        let idents: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["let", "r#type", "r#fn"]);
    }

    #[test]
    fn raw_identifier_does_not_break_raw_strings() {
        assert_eq!(
            idents(r##"let s = r#"not an ident"# ; r#match"##),
            ["let", "s", "r#match"]
        );
    }

    #[test]
    fn relaxed_ok_directives_are_captured() {
        let lexed =
            lex("x.load(Ordering::Relaxed); // borg-lint: relaxed-ok(counter is monotonic)\ny();");
        assert_eq!(lexed.relaxed_oks.len(), 1);
        assert_eq!(lexed.relaxed_oks[0].line, 1);
        assert_eq!(lexed.relaxed_oks[0].reason, "counter is monotonic");
    }

    #[test]
    fn relaxed_ok_requires_a_reason() {
        assert!(lex("// borg-lint: relaxed-ok()").relaxed_oks.is_empty());
        assert!(lex("// borg-lint: relaxed-ok(  )").relaxed_oks.is_empty());
        assert!(lex("// mentions relaxed-ok(x) in prose")
            .relaxed_oks
            .is_empty());
    }

    #[test]
    fn non_directive_comments_are_ignored() {
        assert!(lex("// borg-lint: allow()").allows.is_empty());
        assert!(lex("// just a note about allow(BORG-L001)")
            .allows
            .is_empty());
    }

    #[test]
    fn hot_path_directives_are_captured() {
        let lexed = lex("// borg-lint: hot-path\nfn f() {}\n// borg-lint: hot-path \nfn g() {}");
        assert_eq!(lexed.hot_paths, [1, 3]);
        assert!(lex("// borg-lint: hot-path(arg)").hot_paths.is_empty());
        assert!(lex("// prose mentioning a hot-path").hot_paths.is_empty());
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let lexed = lex("let s = \"a\nb\nc\";\nlast");
        let last = lexed.tokens.last().expect("tokens");
        assert_eq!(last.text, "last");
        assert_eq!(last.line, 4);
    }
}
