//! `cargo xtask` — the workspace correctness toolchain.
//!
//! The `check` subcommand runs the custom BORG-Lxxx static-analysis pass
//! over every workspace crate (see [`rules`] for the rule catalog), with an
//! annotated-fixture self-test as a preflight so a silently broken lint
//! pass cannot report a clean workspace. `--determinism` additionally runs
//! a same-seed-twice virtual-time Borg run and demands bit-identical
//! archives, plus the jobs=1-vs-jobs=4 parallel-runner arm. The `bench`
//! subcommand records the perf trajectory (see [`bench`]).
//!
//! Exit codes: `0` clean, `1` violations or determinism divergence,
//! `2` usage / IO / self-test errors.

#![forbid(unsafe_code)]

mod bench;
mod determinism;
mod files;
mod golden;
mod itemtree;
mod lexer;
mod mc_cmd;
mod rules;

use rules::{Violation, RULES};
use std::process::ExitCode;

const FIXTURE_REL: &str = "crates/xtask/fixtures/violations.rs";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    match args.first().map(String::as_str) {
        Some("check") => check_command(&args[1..]),
        Some("golden") => golden_command(&args[1..]),
        Some("bench") => bench_command(&args[1..]),
        Some("mc") => mc_cmd::mc_command(&args[1..]),
        Some("help") | Some("--help") | Some("-h") => {
            print_help();
            Ok(ExitCode::SUCCESS)
        }
        Some(other) => Err(format!("unknown command `{other}`; try `cargo xtask help`")),
        None => {
            print_help();
            Ok(ExitCode::from(2))
        }
    }
}

fn print_help() {
    println!(
        "cargo xtask — workspace correctness toolchain\n\
         \n\
         USAGE:\n\
         \x20   cargo xtask check [--json] [--determinism] [--self-test] [--list]\n\
         \x20   cargo xtask golden --bless\n\
         \x20   cargo xtask bench [--compare FILE [--max-regress PCT]]\n\
         \x20   cargo xtask mc [--smoke] [--depth N] [--json]\n\
         \n\
         FLAGS:\n\
         \x20   --json          machine-readable JSON report on stdout\n\
         \x20   --determinism   also run the same-seed-twice determinism gate\n\
         \x20                   (incl. the jobs=1-vs-jobs=4 parallel-runner\n\
         \x20                   arm and the networked chaos-loopback-vs-DES-\n\
         \x20                   oracle arm) and diff golden Table II / faults\n\
         \x20                   cells\n\
         \x20   --self-test     run only the annotated-fixture self-test\n\
         \x20   --list          print the rule catalog and exit\n\
         \x20   --bless         (golden) regenerate results/golden CSVs\n\
         \n\
         SUBCOMMANDS:\n\
         \x20   bench           run the smoke criterion groups (protocol,\n\
         \x20                   faults, obs, runner, mc, net) and write\n\
         \x20                   BENCH_runner.json with median ns/op per group;\n\
         \x20                   --compare diffs against a blessed trajectory\n\
         \x20                   file and fails on > --max-regress % slowdowns\n\
         \x20                   (a suspected regression is re-measured once)\n\
         \x20   mc              explore every event-delivery schedule into the\n\
         \x20                   protocol engine (borg-mc): --smoke runs the CI\n\
         \x20                   subset, --depth caps deliveries per schedule\n\
         \n\
         RULES:"
    );
    for rule in &RULES {
        println!("    {}  {}", rule.id, rule.summary);
    }
}

fn bench_command(args: &[String]) -> Result<ExitCode, String> {
    let usage = "usage: cargo xtask bench [--compare FILE [--max-regress PCT]]";
    let mut compare_path: Option<std::path::PathBuf> = None;
    let mut max_regress = 10.0f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--compare" => {
                compare_path = Some(std::path::PathBuf::from(
                    it.next().ok_or("--compare needs a baseline file")?,
                ))
            }
            "--max-regress" => {
                max_regress = it
                    .next()
                    .ok_or("--max-regress needs a percent")?
                    .parse()
                    .map_err(|e| format!("--max-regress: {e}"))?
            }
            other => return Err(format!("{usage} (got `{other}`)")),
        }
    }
    let root = files::workspace_root()?;
    // Read the baseline up front: the committed trajectory file is the
    // usual baseline, and the run below overwrites it.
    let baseline = match &compare_path {
        Some(path) => Some(
            std::fs::read_to_string(root.join(path))
                .map_err(|e| format!("read baseline {}: {e}", path.display()))?,
        ),
        None => None,
    };
    let report = bench::run(&root)?;
    for (group, median_ns, benches) in &report.groups {
        println!("bench trajectory: {group:<10} median {median_ns:>12} ns/op ({benches} benches)");
    }
    println!("wrote {}", report.out_path.display());
    let Some(baseline) = baseline else {
        return Ok(ExitCode::SUCCESS);
    };
    let mut rows = bench::compare(&baseline, &report, max_regress)?;
    if rows.iter().any(|r| r.regressed) {
        // A busy machine can skew a single measurement past the bar; a true
        // regression reproduces. Re-measure once and keep the faster sample.
        println!("bench compare: regression suspected; re-measuring once to rule out noise");
        let retry_report = bench::run(&root)?;
        let retry = bench::compare(&baseline, &retry_report, max_regress)?;
        bench::keep_faster(&mut rows, &retry);
    }
    let mut regressed = false;
    for r in &rows {
        let verdict = if r.regressed {
            regressed = true;
            "  REGRESSED"
        } else {
            ""
        };
        println!(
            "bench compare: {:<10} {:>12} -> {:>12} ns/op ({:+.1}%){verdict}",
            r.group, r.baseline_ns, r.current_ns, r.delta_pct
        );
    }
    if regressed {
        println!("bench FAIL: group median slowed more than {max_regress}% vs the baseline");
        Ok(ExitCode::from(1))
    } else {
        println!("bench compare OK: no group slowed more than {max_regress}%");
        Ok(ExitCode::SUCCESS)
    }
}

fn golden_command(args: &[String]) -> Result<ExitCode, String> {
    match args {
        [flag] if flag == "--bless" => {
            let root = files::workspace_root()?;
            golden::bless(&root)?;
            Ok(ExitCode::SUCCESS)
        }
        _ => Err("usage: cargo xtask golden --bless".to_string()),
    }
}

struct CheckFlags {
    json: bool,
    determinism: bool,
    self_test_only: bool,
    list: bool,
}

fn parse_flags(args: &[String]) -> Result<CheckFlags, String> {
    let mut flags = CheckFlags {
        json: false,
        determinism: false,
        self_test_only: false,
        list: false,
    };
    for arg in args {
        match arg.as_str() {
            "--json" => flags.json = true,
            "--determinism" => flags.determinism = true,
            "--self-test" => flags.self_test_only = true,
            "--list" => flags.list = true,
            other => return Err(format!("unknown flag `{other}` for `check`")),
        }
    }
    Ok(flags)
}

fn check_command(args: &[String]) -> Result<ExitCode, String> {
    let flags = parse_flags(args)?;
    if flags.list {
        for rule in &RULES {
            println!("{}  {}", rule.id, rule.summary);
        }
        return Ok(ExitCode::SUCCESS);
    }

    let root = files::workspace_root()?;
    let fixture = root.join(FIXTURE_REL);

    // Preflight: prove the lint pass still catches every seeded violation
    // (and keeps honoring the test-region / allowlist escapes) before
    // trusting its verdict on the real tree.
    let expected_found = rules::self_test(&fixture)?;
    if flags.self_test_only {
        if !flags.json {
            println!("self-test OK: {expected_found} seeded violations caught, escapes silent");
        } else {
            println!("{{\"self_test\":{{\"ok\":true,\"expected_violations\":{expected_found}}}}}");
        }
        return Ok(ExitCode::SUCCESS);
    }

    let report = rules::check_workspace(&root)?;
    let determinism_result = if flags.determinism {
        Some(determinism::run(&root))
    } else {
        None
    };

    let lint_clean = report.violations.is_empty();
    let det_clean = !matches!(determinism_result, Some(Err(_)));

    if flags.json {
        print_json(&report, expected_found, determinism_result.as_ref());
    } else {
        print_human(&report, expected_found, determinism_result.as_ref());
    }

    if lint_clean && det_clean {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::from(1))
    }
}

fn print_human(
    report: &rules::WorkspaceReport,
    expected_found: usize,
    determinism: Option<&Result<determinism::DeterminismReport, String>>,
) {
    for v in &report.violations {
        println!("{}:{}: {}: {}", v.file, v.line, v.rule, v.message);
    }
    if report.violations.is_empty() {
        println!(
            "lint OK: {} files scanned, 0 violations (self-test caught {} seeded)",
            report.files_scanned, expected_found
        );
    } else {
        println!(
            "lint FAIL: {} violation(s) across {} files",
            report.violations.len(),
            report.files_scanned
        );
    }
    match determinism {
        Some(Ok(d)) => println!(
            "determinism OK: seed-identical archives ({} members, NFE {}, virtual {:.4}s); \
             fault replay identical ({} injected, {} reissues); \
             recorder-attached run identical ({} evals observed); \
             flight dumps byte-identical ({} events); \
             jobs=1 ≡ jobs=4 sweeps ({} rows, {} metrics lines byte-identical); \
             networked chaos loopback ≡ DES oracle ({} wire results, {} wire faults, \
             {} live-tap frames); \
             golden cells match ({} rows)",
            d.archive_size,
            d.nfe,
            d.elapsed,
            d.faults_injected,
            d.fault_reissues,
            d.recorder_evals,
            d.flight_events,
            d.parallel_rows,
            d.parallel_jsonl_lines,
            d.net_wire_results,
            d.net_wire_faults,
            d.tap_frames,
            d.golden_rows
        ),
        Some(Err(e)) => println!("determinism FAIL: {e}"),
        None => {}
    }
}

fn print_json(
    report: &rules::WorkspaceReport,
    expected_found: usize,
    determinism: Option<&Result<determinism::DeterminismReport, String>>,
) {
    let mut out = String::from("{");
    out.push_str(&format!(
        "\"ok\":{},\"files_scanned\":{},\"self_test\":{{\"ok\":true,\"expected_violations\":{}}},",
        report.violations.is_empty() && !matches!(determinism, Some(Err(_))),
        report.files_scanned,
        expected_found
    ));
    out.push_str("\"violations\":[");
    for (i, v) in report.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&violation_json(v));
    }
    out.push(']');
    match determinism {
        Some(Ok(d)) => out.push_str(&format!(
            ",\"determinism\":{{\"ok\":true,\"archive_size\":{},\"nfe\":{},\"elapsed\":{},\
             \"faults_injected\":{},\"fault_reissues\":{},\"recorder_evals\":{},\
             \"flight_events\":{},\"parallel_rows\":{},\"parallel_jsonl_lines\":{},\
             \"net_wire_results\":{},\"net_wire_faults\":{},\"tap_frames\":{},\
             \"golden_rows\":{}}}",
            d.archive_size,
            d.nfe,
            d.elapsed,
            d.faults_injected,
            d.fault_reissues,
            d.recorder_evals,
            d.flight_events,
            d.parallel_rows,
            d.parallel_jsonl_lines,
            d.net_wire_results,
            d.net_wire_faults,
            d.tap_frames,
            d.golden_rows
        )),
        Some(Err(e)) => out.push_str(&format!(
            ",\"determinism\":{{\"ok\":false,\"error\":{}}}",
            json_string(e)
        )),
        None => {}
    }
    out.push('}');
    println!("{out}");
}

fn violation_json(v: &Violation) -> String {
    format!(
        "{{\"rule\":{},\"file\":{},\"line\":{},\"message\":{}}}",
        json_string(v.rule),
        json_string(&v.file),
        v.line,
        json_string(&v.message)
    )
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("plain"), "\"plain\"");
    }

    #[test]
    fn flag_parsing() {
        let f = parse_flags(&["--json".into(), "--determinism".into()]).expect("flags");
        assert!(f.json && f.determinism && !f.self_test_only);
        assert!(parse_flags(&["--bogus".into()]).is_err());
    }
}
