//! A brace-matched item tree over the lexed token stream.
//!
//! The first-generation rules ran over the flat token stream with
//! backward windows; the semantic rules (BORG-L010..L012) need to know
//! *where* they are — which item a token belongs to, whether that item
//! is a `pub fn` of a protocol entry point, and which line range an
//! item-scoped allow directive covers. This module parses the token
//! stream into a tree of items (functions, modules, impls, traits,
//! type definitions) by brace matching. Function bodies are treated as
//! opaque token ranges — the rules scan them linearly — while module,
//! impl, and trait bodies recurse into child items.
//!
//! The parser is deliberately forgiving: anything it cannot classify
//! becomes an [`ItemKind::Other`] spanning to the next top-level `;` or
//! brace group, so a novel syntax form degrades to a coarse span rather
//! than a parse failure.

use crate::lexer::{Token, TokenKind};

/// What sort of item a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `fn` — body is an opaque token range, no children.
    Fn,
    /// `mod` — children are the items inside the braces.
    Mod,
    /// `impl` — children are the associated items.
    Impl,
    /// `trait` — children are the trait items (default bodies included).
    Trait,
    /// `struct` / `enum` / `union` — no children.
    TypeDef,
    /// Anything else (`use`, `const`, `static`, `type`, macros, …).
    Other,
}

/// One parsed item.
#[derive(Debug)]
pub struct Item {
    pub kind: ItemKind,
    /// Declared name, when the form has one (`fn NAME`, `mod NAME`, …).
    pub name: Option<String>,
    /// Whether the item carries a `pub` visibility (any restriction —
    /// `pub(crate)` counts; the rules that care treat restricted
    /// visibility as non-public separately if they need to).
    pub is_pub: bool,
    /// Identifier texts inside the item's outer attributes, in order
    /// (drives `#[cfg(test)]` / `#[test]` detection).
    pub attr_idents: Vec<String>,
    /// First line of the item, attributes included (1-based).
    pub start_line: u32,
    /// Line of the declaring keyword (`fn`, `mod`, `impl`, …).
    pub header_line: u32,
    /// Last line of the item (closing brace or terminating `;`).
    pub end_line: u32,
    /// For `Fn`: token index range of the body, braces included
    /// (`tokens[body.0] == "{"`, `tokens[body.1] == "}"`). `None` for a
    /// braceless declaration (`fn f();` in a trait).
    pub body: Option<(usize, usize)>,
    /// Nested items for `Mod` / `Impl` / `Trait`.
    pub children: Vec<Item>,
}

impl Item {
    /// Visits this item and every descendant.
    pub fn walk<'a>(&'a self, visit: &mut dyn FnMut(&'a Item)) {
        visit(self);
        for child in &self.children {
            child.walk(visit);
        }
    }
}

/// Parses a whole token stream into top-level items.
pub fn parse(tokens: &[Token]) -> Vec<Item> {
    parse_range(tokens, 0, tokens.len())
}

/// Keywords that may precede the declaring keyword of an item.
const MODIFIERS: &[&str] = &["pub", "default", "unsafe", "extern", "const", "async"];

fn parse_range(tokens: &[Token], start: usize, end: usize) -> Vec<Item> {
    let mut items = Vec::new();
    let mut i = start;
    while i < end {
        // Inner attributes (`#![...]`) belong to the enclosing scope.
        if is_text(tokens, i, "#") && is_text(tokens, i + 1, "!") && is_text(tokens, i + 2, "[") {
            i = skip_balanced(tokens, i + 2, "[", "]", end) + 1;
            continue;
        }

        let item_start = i;
        let start_line = tokens[i].line;

        // Outer attributes, collecting their identifiers.
        let mut attr_idents = Vec::new();
        while is_text(tokens, i, "#") && is_text(tokens, i + 1, "[") {
            let close = skip_balanced(tokens, i + 1, "[", "]", end);
            for t in &tokens[i + 2..close.min(end)] {
                if t.kind == TokenKind::Ident {
                    attr_idents.push(t.text.clone());
                }
            }
            i = close + 1;
        }
        if i >= end {
            break;
        }

        // Modifiers before the declaring keyword.
        let mut is_pub = false;
        while tokens[i].kind == TokenKind::Ident && MODIFIERS.contains(&tokens[i].text.as_str()) {
            let modifier = tokens[i].text.as_str();
            if modifier == "pub" {
                is_pub = true;
            }
            i += 1;
            if i >= end {
                break;
            }
            // `pub(crate)` / `pub(in path)` restriction group.
            if modifier == "pub" && is_text(tokens, i, "(") {
                i = skip_balanced(tokens, i, "(", ")", end) + 1;
            }
            // `extern "C"` ABI string.
            if modifier == "extern" && tokens.get(i).is_some_and(|t| t.kind == TokenKind::Literal) {
                i += 1;
            }
            // `const fn` vs `const NAME: T = ...;` — if the next token
            // after `const` is not `fn`, this is a const item, not a
            // modifier; rewind and let the keyword dispatch see `const`.
            if modifier == "const" && !is_text(tokens, i, "fn") {
                i -= 1;
                break;
            }
        }
        if i >= end {
            break;
        }

        let header_line = tokens[i].line;
        let keyword = tokens[i].text.clone();
        let (last_index, item) = match keyword.as_str() {
            "fn" => parse_fn(tokens, item_start, i, end),
            "mod" | "trait" | "impl" => parse_scoped(tokens, item_start, i, end, &keyword),
            "struct" | "enum" | "union" => {
                let last = item_extent(tokens, i, end);
                (
                    last,
                    Item {
                        kind: ItemKind::TypeDef,
                        name: ident_after(tokens, i, end),
                        is_pub,
                        attr_idents: Vec::new(),
                        start_line,
                        header_line,
                        end_line: tokens[last.min(end - 1)].line,
                        body: None,
                        children: Vec::new(),
                    },
                )
            }
            _ => {
                let last = item_extent(tokens, i, end);
                (
                    last,
                    Item {
                        kind: ItemKind::Other,
                        name: None,
                        is_pub,
                        attr_idents: Vec::new(),
                        start_line,
                        header_line,
                        end_line: tokens[last.min(end - 1)].line,
                        body: None,
                        children: Vec::new(),
                    },
                )
            }
        };
        let mut item = item;
        item.is_pub = item.is_pub || is_pub;
        item.attr_idents = attr_idents;
        item.start_line = start_line;
        item.header_line = header_line;
        items.push(item);
        i = last_index + 1;
    }
    items
}

/// Parses a `fn` starting with the keyword at `kw`; returns the index of
/// its last token and the item.
fn parse_fn(tokens: &[Token], _item_start: usize, kw: usize, end: usize) -> (usize, Item) {
    let name = ident_after(tokens, kw, end);
    // The body is the first `{` outside parens/brackets (where-clauses
    // and return types contain neither at top level); a `;` first means
    // a braceless declaration.
    let mut depth = 0usize;
    let mut j = kw + 1;
    let mut body = None;
    while j < end {
        match tokens[j].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth = depth.saturating_sub(1),
            "{" if depth == 0 => {
                let close = skip_balanced(tokens, j, "{", "}", end);
                body = Some((j, close));
                j = close;
                break;
            }
            ";" if depth == 0 => break,
            _ => {}
        }
        j += 1;
    }
    let last = j.min(end - 1);
    (
        last,
        Item {
            kind: ItemKind::Fn,
            name,
            is_pub: false,
            attr_idents: Vec::new(),
            start_line: tokens[kw].line,
            header_line: tokens[kw].line,
            end_line: tokens[last].line,
            body,
            children: Vec::new(),
        },
    )
}

/// Parses a `mod` / `trait` / `impl` starting at keyword index `kw`;
/// recurses into the brace body for children.
fn parse_scoped(
    tokens: &[Token],
    _item_start: usize,
    kw: usize,
    end: usize,
    keyword: &str,
) -> (usize, Item) {
    let kind = match keyword {
        "mod" => ItemKind::Mod,
        "trait" => ItemKind::Trait,
        _ => ItemKind::Impl,
    };
    let name = if kind == ItemKind::Impl {
        None
    } else {
        ident_after(tokens, kw, end)
    };
    let mut j = kw + 1;
    let mut children = Vec::new();
    let mut last = kw;
    while j < end {
        match tokens[j].text.as_str() {
            "{" => {
                let close = skip_balanced(tokens, j, "{", "}", end);
                children = parse_range(tokens, j + 1, close.min(end));
                last = close.min(end - 1);
                break;
            }
            ";" => {
                last = j;
                break;
            }
            _ => {
                j += 1;
                last = j.min(end - 1);
            }
        }
    }
    (
        last,
        Item {
            kind,
            name,
            is_pub: false,
            attr_idents: Vec::new(),
            start_line: tokens[kw].line,
            header_line: tokens[kw].line,
            end_line: tokens[last].line,
            body: None,
            children,
        },
    )
}

/// Index of the last token of a braces-or-semicolon-terminated item whose
/// declaring keyword is at `kw`: the first top-level `;`, or the close of
/// the first top-level brace group (whichever comes first).
fn item_extent(tokens: &[Token], kw: usize, end: usize) -> usize {
    let mut depth = 0usize;
    let mut j = kw;
    while j < end {
        match tokens[j].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth = depth.saturating_sub(1),
            "{" if depth == 0 => return skip_balanced(tokens, j, "{", "}", end).min(end - 1),
            ";" if depth == 0 => return j,
            _ => {}
        }
        j += 1;
    }
    end - 1
}

/// First identifier after index `i` (the declared name), skipping nothing.
fn ident_after(tokens: &[Token], i: usize, end: usize) -> Option<String> {
    tokens
        .get(i + 1)
        .filter(|t| i + 1 < end && t.kind == TokenKind::Ident)
        .map(|t| t.text.clone())
}

/// Index of the delimiter matching `open_text` at `open`; saturates at
/// `end - 1` on unbalanced input.
fn skip_balanced(
    tokens: &[Token],
    open: usize,
    open_text: &str,
    close_text: &str,
    end: usize,
) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < end {
        if tokens[j].text == open_text {
            depth += 1;
        } else if tokens[j].text == close_text {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    end.saturating_sub(1)
}

fn is_text(tokens: &[Token], i: usize, text: &str) -> bool {
    tokens.get(i).is_some_and(|t| t.text == text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn tree(src: &str) -> Vec<Item> {
        parse(&lex(src).tokens)
    }

    #[test]
    fn parses_functions_with_bodies() {
        let items = tree("pub fn entry(x: u64) -> u64 {\n    x + 1\n}\nfn helper() {}\n");
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].kind, ItemKind::Fn);
        assert_eq!(items[0].name.as_deref(), Some("entry"));
        assert!(items[0].is_pub);
        assert!(items[0].body.is_some());
        assert_eq!((items[0].start_line, items[0].end_line), (1, 3));
        assert!(!items[1].is_pub);
        assert_eq!(items[1].name.as_deref(), Some("helper"));
    }

    #[test]
    fn modules_and_impls_recurse() {
        let src = "mod inner {\n    pub fn a() {}\n}\nimpl Engine {\n    pub fn b(&self) {}\n    fn c(&self) {}\n}\n";
        let items = tree(src);
        assert_eq!(items[0].kind, ItemKind::Mod);
        assert_eq!(items[0].children.len(), 1);
        assert!(items[0].children[0].is_pub);
        assert_eq!(items[1].kind, ItemKind::Impl);
        let names: Vec<_> = items[1]
            .children
            .iter()
            .map(|c| (c.name.as_deref().unwrap_or(""), c.is_pub))
            .collect();
        assert_eq!(names, [("b", true), ("c", false)]);
    }

    #[test]
    fn attributes_attach_to_the_following_item() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {}\n}\n";
        let items = tree(src);
        assert_eq!(items[0].attr_idents, ["cfg", "test"]);
        assert_eq!(items[0].start_line, 1);
        assert_eq!(items[0].header_line, 2);
        assert_eq!(items[0].children[0].attr_idents, ["test"]);
    }

    #[test]
    fn fn_bodies_are_opaque() {
        // An `if {}` block inside a body must not terminate the item or
        // produce children.
        let src = "fn f() {\n    if x { y(); }\n    z();\n}\nfn g() {}\n";
        let items = tree(src);
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].end_line, 4);
        assert!(items[0].children.is_empty());
    }

    #[test]
    fn structs_consts_and_uses_get_spans() {
        let src = "use std::fmt;\npub struct S {\n    field: u64,\n}\nconst TABLE: [u64; 3] = [1, 2, 3];\n";
        let items = tree(src);
        assert_eq!(items[0].kind, ItemKind::Other);
        assert_eq!(items[0].end_line, 1);
        assert_eq!(items[1].kind, ItemKind::TypeDef);
        assert_eq!(items[1].name.as_deref(), Some("S"));
        assert!(items[1].is_pub);
        assert_eq!((items[1].start_line, items[1].end_line), (2, 4));
        assert_eq!(items[2].kind, ItemKind::Other);
        assert_eq!(items[2].end_line, 5);
    }

    #[test]
    fn pub_crate_and_where_clauses_parse() {
        let src = "pub(crate) fn f<T>(x: T) -> u64\nwhere\n    T: Into<u64>,\n{\n    x.into()\n}\n";
        let items = tree(src);
        assert_eq!(items.len(), 1);
        assert!(items[0].is_pub);
        assert_eq!(items[0].end_line, 6);
        let (open, close) = items[0].body.expect("body");
        assert!(open < close);
    }

    #[test]
    fn nested_generics_in_signatures_do_not_derail() {
        let src = "fn f(m: BTreeMap<u64, Vec<u64>>) -> Option<Vec<u8>> { None }\nfn g() {}\n";
        let items = tree(src);
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].name.as_deref(), Some("f"));
        assert_eq!(items[1].name.as_deref(), Some("g"));
    }
}
