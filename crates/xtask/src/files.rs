//! Workspace source discovery and file classification for the lint pass.

use std::path::{Path, PathBuf};

/// How a source file participates in the lint pass; rules scope themselves
/// by class (e.g. BORG-L001 applies to library code, not tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library source under `crates/*/src` or the root `src/`.
    Library,
    /// Binary entry points (`src/bin/**`, `src/main.rs` of the xtask crate).
    Bin,
    /// Integration tests, benches, and examples.
    TestOrBench,
}

/// A discovered source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the workspace root (forward slashes).
    pub rel_path: String,
    /// Absolute path on disk.
    pub abs_path: PathBuf,
    pub class: FileClass,
}

/// Directories scanned for Rust sources, relative to the workspace root.
/// `vendor/` is deliberately absent: the stand-ins there emulate external
/// crates whose whole point may be to wrap forbidden constructs (e.g.
/// parking_lot over `std::sync::Mutex`).
const SCAN_ROOTS: &[&str] = &["crates", "src", "tests", "examples"];

/// Path fragments excluded from scanning. The fixtures file contains
/// deliberate violations for the self-test and must not fail `check`.
const EXCLUDED_FRAGMENTS: &[&str] = &["/fixtures/", "/target/"];

/// Locates the workspace root from the xtask manifest directory.
pub fn workspace_root() -> Result<PathBuf, String> {
    let manifest = std::env::var("CARGO_MANIFEST_DIR")
        .map_err(|_| "CARGO_MANIFEST_DIR not set; run via `cargo xtask`".to_string())?;
    Path::new(&manifest)
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .ok_or_else(|| format!("cannot derive workspace root from {manifest}"))
}

/// Recursively collects every `.rs` file under the scan roots.
pub fn discover(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut out = Vec::new();
    for scan in SCAN_ROOTS {
        let dir = root.join(scan);
        if dir.is_dir() {
            walk(root, &dir, &mut out)?;
        }
    }
    out.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir entry in {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            walk(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("strip_prefix {}: {e}", path.display()))?;
            let rel_path = format!("/{}", rel.display()).replace('\\', "/");
            let rel_path = rel_path.trim_start_matches('/').to_string();
            let probe = format!("/{rel_path}");
            if EXCLUDED_FRAGMENTS.iter().any(|f| probe.contains(f)) {
                continue;
            }
            out.push(SourceFile {
                class: classify(&rel_path),
                rel_path,
                abs_path: path,
            });
        }
    }
    Ok(())
}

/// Classifies a workspace-relative path.
pub fn classify(rel_path: &str) -> FileClass {
    if rel_path.contains("/src/bin/") || rel_path == "crates/xtask/src/main.rs" {
        FileClass::Bin
    } else if rel_path.starts_with("tests/")
        || rel_path.starts_with("examples/")
        || rel_path.contains("/tests/")
        || rel_path.contains("/benches/")
        || rel_path.contains("/examples/")
    {
        FileClass::TestOrBench
    } else {
        FileClass::Library
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_by_path() {
        assert_eq!(classify("crates/core/src/archive.rs"), FileClass::Library);
        assert_eq!(classify("src/lib.rs"), FileClass::Library);
        assert_eq!(
            classify("crates/experiments/src/bin/borg-exp.rs"),
            FileClass::Bin
        );
        assert_eq!(classify("tests/proptests.rs"), FileClass::TestOrBench);
        assert_eq!(
            classify("crates/bench/benches/micro.rs"),
            FileClass::TestOrBench
        );
        assert_eq!(classify("examples/quickstart.rs"), FileClass::TestOrBench);
        assert_eq!(classify("crates/xtask/src/main.rs"), FileClass::Bin);
        assert_eq!(classify("crates/xtask/src/rules.rs"), FileClass::Library);
    }

    #[test]
    fn discovery_finds_known_files_and_skips_fixtures() {
        let root = workspace_root().expect("workspace root");
        let files = discover(&root).expect("discover");
        let rels: Vec<&str> = files.iter().map(|f| f.rel_path.as_str()).collect();
        assert!(rels.contains(&"crates/core/src/archive.rs"), "{rels:?}");
        assert!(rels.contains(&"tests/proptests.rs"));
        assert!(!rels.iter().any(|r| r.contains("fixtures")));
        assert!(!rels.iter().any(|r| r.starts_with("vendor/")));
    }
}
