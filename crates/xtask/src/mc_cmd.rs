//! The `cargo xtask mc` front end for the `borg-mc` schedule-space
//! model checker.
//!
//! Mirrors the `check` subcommand's shape: a mutation self-test runs
//! first as a preflight (a checker that cannot catch a sabotaged engine
//! must not report a clean one), then the scenario catalogue — the
//! smoke subset with `--smoke`, the full set otherwise. `--json` emits
//! a stable machine-readable report in the same style as
//! `check --json`; exit codes are `0` clean, `1` violations or
//! truncation, `2` usage / self-test errors.

use std::process::ExitCode;
use std::time::Instant;

struct McFlags {
    json: bool,
    smoke: bool,
    depth: Option<usize>,
}

fn parse_flags(args: &[String]) -> Result<McFlags, String> {
    let mut flags = McFlags {
        json: false,
        smoke: false,
        depth: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => flags.json = true,
            "--smoke" => flags.smoke = true,
            "--depth" => {
                i += 1;
                let value = args
                    .get(i)
                    .ok_or_else(|| "--depth requires a value".to_string())?;
                let depth: usize = value
                    .parse()
                    .map_err(|_| format!("--depth: `{value}` is not a number"))?;
                if depth == 0 {
                    return Err("--depth must be at least 1".to_string());
                }
                flags.depth = Some(depth);
            }
            other => return Err(format!("unknown flag `{other}` for `mc`")),
        }
        i += 1;
    }
    Ok(flags)
}

/// Entry point for `cargo xtask mc`.
pub fn mc_command(args: &[String]) -> Result<ExitCode, String> {
    let flags = parse_flags(args)?;
    let started = Instant::now();
    let report = borg_mc::run(flags.smoke, flags.depth)?;
    let elapsed = started.elapsed().as_secs_f64();
    if flags.json {
        print_json(&report, elapsed);
    } else {
        print_human(&report, elapsed, flags.smoke);
    }
    if report.ok() {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::from(1))
    }
}

fn print_human(report: &borg_mc::McReport, elapsed: f64, smoke: bool) {
    println!(
        "mutation self-test OK: sabotaged engine caught ({} violating schedule(s), e.g. [{}])",
        report.mutation.violations.len(),
        report.mutation.violations[0].trace.join(", ")
    );
    for s in &report.scenarios {
        let status = if s.violations.is_empty() && s.truncated == 0 {
            "ok"
        } else {
            "FAIL"
        };
        println!(
            "mc {status}: {:<18} {:>8} schedules, {:>6} states, {:>8} pruned, {} outcome(s){}",
            s.name,
            s.schedules,
            s.unique_states,
            s.pruned,
            s.outcomes,
            if s.truncated > 0 {
                format!(", {} TRUNCATED", s.truncated)
            } else {
                String::new()
            }
        );
        for v in &s.violations {
            println!("  violation [{}]: {}", v.invariant, v.detail);
            println!("    schedule: [{}]", v.trace.join(", "));
        }
    }
    let schedules = report.schedules();
    let rate = if elapsed > 0.0 {
        schedules as f64 / elapsed
    } else {
        0.0
    };
    if report.ok() {
        println!(
            "mc OK ({}): {} schedules across {} scenarios ({} states, {} pruned) in {:.2}s — {:.0} schedules/sec",
            if smoke { "smoke" } else { "full" },
            schedules,
            report.scenarios.len(),
            report.unique_states(),
            report.pruned(),
            elapsed,
            rate
        );
    } else {
        println!(
            "mc FAIL: {} violation(s) across {} scenarios",
            report.violations().len(),
            report.scenarios.len()
        );
    }
}

fn print_json(report: &borg_mc::McReport, elapsed: f64) {
    let mut out = String::from("{");
    out.push_str(&format!(
        "\"ok\":{},\"schedules\":{},\"unique_states\":{},\"pruned\":{},\"elapsed_seconds\":{:.3},",
        report.ok(),
        report.schedules(),
        report.unique_states(),
        report.pruned(),
        elapsed
    ));
    out.push_str(&format!(
        "\"mutation_self_test\":{{\"ok\":{},\"violations\":{}}},",
        !report.mutation.violations.is_empty(),
        report.mutation.violations.len()
    ));
    out.push_str("\"scenarios\":[");
    for (i, s) in report.scenarios.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":{},\"schedules\":{},\"unique_states\":{},\"pruned\":{},\
             \"truncated\":{},\"outcomes\":{},\"violations\":[",
            crate::json_string(s.name.as_str()),
            s.schedules,
            s.unique_states,
            s.pruned,
            s.truncated,
            s.outcomes
        ));
        for (j, v) in s.violations.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"invariant\":{},\"detail\":{},\"trace\":{}}}",
                crate::json_string(v.invariant),
                crate::json_string(&v.detail),
                crate::json_string(&v.trace.join(", "))
            ));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    println!("{out}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_parsing_accepts_depth_values() {
        let f = parse_flags(&["--smoke".into(), "--depth".into(), "40".into()]).expect("flags");
        assert!(f.smoke && !f.json);
        assert_eq!(f.depth, Some(40));
        assert!(parse_flags(&["--depth".into()]).is_err());
        assert!(parse_flags(&["--depth".into(), "zero".into()]).is_err());
        assert!(parse_flags(&["--depth".into(), "0".into()]).is_err());
        assert!(parse_flags(&["--bogus".into()]).is_err());
    }
}
