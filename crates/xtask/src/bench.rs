//! `cargo xtask bench` — the perf-trajectory step.
//!
//! Runs the smoke criterion groups (`core`, `protocol`, `faults`, `obs`,
//! `runner`, `mc`, `net`) through the vendored criterion stand-in with
//! `CRITERION_JSON` set, then
//! aggregates the per-bench medians into `BENCH_runner.json` at the
//! workspace root: one median ns/op per group (the median of the group's
//! per-bench medians) plus every bench that contributed. The file is a
//! trajectory point — commit-over-commit diffs show where protocol,
//! fault-handling, observability, or runner-dispatch cost moved.

use std::path::Path;
use std::process::Command;

/// The groups the trajectory tracks, each with the bench target hosting it
/// (the `faults` group lives in the `extensions` bench binary).
const GROUPS: [(&str, &str); 7] = [
    ("core", "core"),
    ("protocol", "protocol"),
    ("faults", "extensions"),
    ("obs", "obs"),
    ("runner", "runner"),
    ("mc", "mc"),
    ("net", "net"),
];

/// Output file, relative to the workspace root.
pub const BENCH_OUT_REL: &str = "BENCH_runner.json";

/// One sampled benchmark from the `CRITERION_JSON` stream.
struct Sample {
    id: String,
    group: String,
    median_ns: u128,
}

/// Summary of a completed `xtask bench` run.
pub struct BenchReport {
    /// `(group, median ns/op, benches contributing)`, in [`GROUPS`] order.
    pub groups: Vec<(&'static str, u128, usize)>,
    /// Where the JSON report was written.
    pub out_path: std::path::PathBuf,
}

/// Runs the tracked bench targets and writes [`BENCH_OUT_REL`].
pub fn run(root: &Path) -> Result<BenchReport, String> {
    let samples_path = root.join("target").join("criterion-samples.jsonl");
    let _ = std::fs::remove_file(&samples_path);

    let mut targets: Vec<&str> = GROUPS.iter().map(|&(_, target)| target).collect();
    targets.dedup();
    let mut cmd = Command::new("cargo");
    cmd.current_dir(root)
        .arg("bench")
        .arg("-p")
        .arg("borg-bench");
    for target in targets {
        cmd.arg("--bench").arg(target);
    }
    cmd.env("CRITERION_JSON", &samples_path);
    let status = cmd
        .status()
        .map_err(|e| format!("spawn cargo bench: {e}"))?;
    if !status.success() {
        return Err(format!("cargo bench exited with {status}"));
    }

    let text = std::fs::read_to_string(&samples_path).map_err(|e| {
        format!(
            "read {}: {e} (CRITERION_JSON hook lost?)",
            samples_path.display()
        )
    })?;
    let samples = parse_samples(&text)?;

    let mut groups = Vec::new();
    let mut json =
        String::from("{\n  \"schema\": \"borg-bench-trajectory/v1\",\n  \"groups\": {\n");
    for (gi, &(group, _)) in GROUPS.iter().enumerate() {
        let mine: Vec<&Sample> = samples.iter().filter(|s| s.group == group).collect();
        if mine.is_empty() {
            return Err(format!(
                "bench group `{group}` produced no samples; its bench target changed names?"
            ));
        }
        let mut medians: Vec<u128> = mine.iter().map(|s| s.median_ns).collect();
        medians.sort_unstable();
        let group_median = medians[medians.len() / 2];
        json.push_str(&format!(
            "    \"{group}\": {{\n      \"median_ns_per_op\": {group_median},\n      \"benches\": {{\n"
        ));
        for (i, s) in mine.iter().enumerate() {
            let comma = if i + 1 < mine.len() { "," } else { "" };
            json.push_str(&format!("        \"{}\": {}{comma}\n", s.id, s.median_ns));
        }
        let comma = if gi + 1 < GROUPS.len() { "," } else { "" };
        json.push_str(&format!("      }}\n    }}{comma}\n"));
        groups.push((group, group_median, mine.len()));
    }
    json.push_str("  }\n}\n");

    let out_path = root.join(BENCH_OUT_REL);
    std::fs::write(&out_path, json).map_err(|e| format!("write {}: {e}", out_path.display()))?;
    Ok(BenchReport { groups, out_path })
}

/// One group's baseline-vs-current comparison (`--compare`).
#[derive(Debug)]
pub struct CompareRow {
    pub group: &'static str,
    pub baseline_ns: u128,
    pub current_ns: u128,
    /// Percent change vs baseline (positive = slower).
    pub delta_pct: f64,
    /// Whether the slowdown exceeds the configured tolerance.
    pub regressed: bool,
}

/// Diffs a fresh [`BenchReport`] against a committed trajectory file
/// (the `BENCH_runner.json` of the last blessed run). A group regresses
/// when its median slows by more than `max_regress_pct` percent.
pub fn compare(
    baseline: &str,
    report: &BenchReport,
    max_regress_pct: f64,
) -> Result<Vec<CompareRow>, String> {
    let mut rows = Vec::new();
    for &(group, current_ns, _) in &report.groups {
        let baseline_ns = baseline_median(baseline, group).ok_or_else(|| {
            format!(
                "baseline has no `{group}` group median; re-bless the trajectory \
                 with `cargo xtask bench`"
            )
        })?;
        let delta_pct = if baseline_ns == 0 {
            0.0
        } else {
            (current_ns as f64 - baseline_ns as f64) / baseline_ns as f64 * 100.0
        };
        rows.push(CompareRow {
            group,
            baseline_ns,
            current_ns,
            delta_pct,
            regressed: delta_pct > max_regress_pct,
        });
    }
    Ok(rows)
}

/// Folds a re-measurement into `rows`, keeping the faster sample per group.
/// A busy machine can skew one measurement past the tolerance; a true
/// regression reproduces, so a group only stays regressed when both runs
/// flagged it.
pub fn keep_faster(rows: &mut [CompareRow], retry: &[CompareRow]) {
    for (row, again) in rows.iter_mut().zip(retry) {
        if again.current_ns < row.current_ns {
            row.current_ns = again.current_ns;
            row.delta_pct = again.delta_pct;
            row.regressed = again.regressed;
        }
    }
}

/// Extracts one group's `median_ns_per_op` from a trajectory file.
fn baseline_median(text: &str, group: &str) -> Option<u128> {
    let pat = format!("\"{group}\": {{");
    let rest = &text[text.find(&pat)? + pat.len()..];
    let rest = &rest[rest.find("\"median_ns_per_op\":")? + "\"median_ns_per_op\":".len()..];
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses the stand-in criterion's JSONL stream. The lines are produced by
/// workspace code, so a forgiving field scan beats a JSON dependency.
fn parse_samples(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for (n, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let parsed = (|| {
            Some(Sample {
                id: field_str(line, "id")?.to_string(),
                group: field_str(line, "group")?.to_string(),
                median_ns: field_u128(line, "median_ns")?,
            })
        })();
        match parsed {
            Some(sample) => samples.push(sample),
            None => return Err(format!("malformed CRITERION_JSON line {}: {line}", n + 1)),
        }
    }
    if samples.is_empty() {
        return Err("CRITERION_JSON stream was empty; no benchmarks ran".to_string());
    }
    Ok(samples)
}

fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    Some(&rest[..rest.find('"')?])
}

fn field_u128(line: &str, key: &str) -> Option<u128> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_standin_criterion_lines() {
        let text = "{\"id\":\"runner/map_jobs_w4\",\"group\":\"runner\",\"iters\":10,\
                    \"median_ns\":1234,\"mean_ns\":1300}\n\
                    {\"id\":\"obs/sink\",\"group\":\"obs\",\"iters\":10,\
                    \"median_ns\":77,\"mean_ns\":80}\n";
        let samples = parse_samples(text).expect("parse");
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].id, "runner/map_jobs_w4");
        assert_eq!(samples[0].group, "runner");
        assert_eq!(samples[0].median_ns, 1234);
        assert_eq!(samples[1].median_ns, 77);
    }

    #[test]
    fn rejects_malformed_and_empty_streams() {
        assert!(parse_samples("not json\n").is_err());
        assert!(parse_samples("").is_err());
        assert!(parse_samples("{\"id\":\"a/b\",\"group\":\"a\"}\n").is_err());
    }

    fn report(groups: Vec<(&'static str, u128, usize)>) -> BenchReport {
        BenchReport {
            groups,
            out_path: std::path::PathBuf::from("BENCH_runner.json"),
        }
    }

    const BASELINE: &str = "{\n  \"schema\": \"borg-bench-trajectory/v1\",\n  \"groups\": {\n    \
        \"protocol\": {\n      \"median_ns_per_op\": 1000,\n      \"benches\": {\n      }\n    },\n    \
        \"obs\": {\n      \"median_ns_per_op\": 200,\n      \"benches\": {\n      }\n    }\n  }\n}\n";

    #[test]
    fn compare_flags_only_regressions_past_the_tolerance() {
        // protocol +20% (regression at 10% tolerance), obs -50% (never).
        let rows = compare(
            BASELINE,
            &report(vec![("protocol", 1200, 3), ("obs", 100, 2)]),
            10.0,
        )
        .expect("compare");
        assert_eq!(rows.len(), 2);
        assert!(rows[0].regressed && rows[0].delta_pct > 19.0);
        assert!(!rows[1].regressed && rows[1].delta_pct < 0.0);
        // The same +20% within a 25% tolerance passes.
        let rows = compare(BASELINE, &report(vec![("protocol", 1200, 3)]), 25.0).expect("compare");
        assert!(!rows[0].regressed);
    }

    #[test]
    fn keep_faster_clears_a_regression_that_does_not_reproduce() {
        // First sample +20% (regressed), retry -2%: noise, cleared.
        let mut rows = compare(BASELINE, &report(vec![("protocol", 1200, 3)]), 10.0).unwrap();
        let retry = compare(BASELINE, &report(vec![("protocol", 980, 3)]), 10.0).unwrap();
        keep_faster(&mut rows, &retry);
        assert!(!rows[0].regressed);
        assert_eq!(rows[0].current_ns, 980);

        // Both samples past the bar: the regression stands, faster one kept.
        let mut rows = compare(BASELINE, &report(vec![("protocol", 1300, 3)]), 10.0).unwrap();
        let retry = compare(BASELINE, &report(vec![("protocol", 1250, 3)]), 10.0).unwrap();
        keep_faster(&mut rows, &retry);
        assert!(rows[0].regressed);
        assert_eq!(rows[0].current_ns, 1250);
    }

    #[test]
    fn compare_rejects_a_baseline_missing_the_group() {
        let err = compare(BASELINE, &report(vec![("net", 10, 1)]), 10.0).unwrap_err();
        assert!(err.contains("`net`"), "unhelpful error: {err}");
    }
}
