//! The `xtask check --determinism` gate.
//!
//! Runs a small DTLZ2 instance through the virtual-time asynchronous
//! master-slave executor twice with the same seed and demands bit-identical
//! results: elapsed virtual time, NFE, and every archive member's variables
//! and objectives. A second arm repeats the check **with fault injection
//! live** (25% worker crashes + 5% message loss) and additionally demands
//! identical fault ledgers — recovery is part of the reproducibility
//! contract, not an excuse to break it. This is the executable form of the
//! workspace's guarantee (which BORG-L002/L003 guard statically): same
//! seed, same archive — across runs and across machines.
//!
//! `T_A` is *sampled*, not measured: `TaMode::Measured` charges real
//! wall-clock costs into the virtual event ordering, which is exactly the
//! nondeterminism this gate must not depend on.
//!
//! A third arm checks the observability contract: a run observed through
//! an [`InMemoryRecorder`] must be bit-identical (archive, virtual clock,
//! fault ledger) to the same-seed run with the no-op recorder. Recorders
//! receive values and never influence control flow; this arm is what makes
//! that a tested guarantee instead of a comment. The arm also straps the
//! black-box [`FlightRecorder`] onto two same-seed fault-replay runs and
//! demands byte-identical dumps: under virtual time the ring content is a
//! pure function of the seed, so the black box is itself deterministic.
//!
//! A fourth arm checks the parallel-runner contract: the same smoke-scale
//! Table II and fault sweeps run with `jobs = 1` and `jobs = 4` must
//! produce byte-identical rows, fault ledgers, and metrics JSONL — the
//! work-stealing pool in `borg-runner` may change *when* a replicate runs,
//! never *what* it produces or the order results are folded in.
//!
//! A fifth arm takes the contract onto real sockets: a chaos-mode
//! networked loopback run (`borg_net::chaos`) — in-process workers over
//! Unix-domain sockets, a chaos proxy physically enacting the same seeded
//! `FaultPlan` — must produce a fault ledger, recovery actions, virtual
//! clock, and final archive bit-identical to the DES fault oracle (the
//! fault-replay arm above), with the proxy's wire-side ledger matching
//! the oracle's injections kind for kind. That run carries the *full*
//! observability stack — tracing recorder, flight ring, and a live
//! metrics tap with a real subscriber draining delta frames — so the
//! bit-identity it demands doubles as proof that none of it perturbs
//! the algorithm.

use borg_core::algorithm::BorgConfig;
use borg_core::problem::Problem;
use borg_desim::fault::{FaultConfig, FaultKind};
use borg_experiments::faults::{render_faults, run_faults, FaultsConfig};
use borg_experiments::suite::PaperProblem;
use borg_experiments::table2::{render_table2, run_table2_with, Table2Config};
use borg_models::dist::Dist;
use borg_net::chaos::{run_chaos_loopback, ChaosConfig};
use borg_net::tap::{tap_loop, TapConfig};
use borg_net::{connect_with_backoff, Backoff, Conn, Msg, NetAddr, NetListener};
use borg_obs::export::metrics_jsonl;
use borg_obs::{FlightRecorder, InMemoryRecorder, NoopRecorder, Recorder, WithFlight};
use borg_parallel::virtual_exec::{
    run_virtual_async, run_virtual_async_faulty, TaMode, VirtualConfig, VirtualRunResult,
};
use borg_problems::dtlz::Dtlz;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Summary of a passing determinism check.
pub struct DeterminismReport {
    pub nfe: u64,
    pub archive_size: usize,
    pub elapsed: f64,
    /// Faults injected by the fault-replay arm (same-seed faulty runs must
    /// inject, detect, and recover identically).
    pub faults_injected: usize,
    /// Reissues performed by the fault-replay arm.
    pub fault_reissues: u64,
    /// Golden Table II / faults cells compared bit-for-bit against the
    /// checked-in CSV (see [`crate::golden`]).
    pub golden_rows: usize,
    /// Evaluations observed by the recorder arm (an in-memory recorder
    /// attached to a run must observe everything and change nothing).
    pub recorder_evals: u64,
    /// Table II + fault-sweep rows compared byte-for-byte between the
    /// `jobs = 1` and `jobs = 4` sweeps by the parallel-runner arm.
    pub parallel_rows: usize,
    /// Metrics-JSONL lines compared byte-for-byte by the same arm.
    pub parallel_jsonl_lines: usize,
    /// Events the black-box flight ring recorded during the fault-replay
    /// arm (two same-seed runs must dump byte-identical black boxes).
    pub flight_events: u64,
    /// Result frames the networked chaos arm consumed off real sockets
    /// while staying bit-identical to the DES fault oracle.
    pub net_wire_results: u64,
    /// Faults the chaos proxy physically enacted on the wire in that run
    /// (matched kind-for-kind against the oracle's ledger).
    pub net_wire_faults: usize,
    /// Live-tap delta frames a real subscriber drained during the
    /// networked chaos arm (the tap must stream without perturbing).
    pub tap_frames: u64,
}

fn run_once(seed: u64) -> VirtualRunResult {
    run_once_observed(seed, &NoopRecorder)
}

fn run_once_observed(seed: u64, rec: &dyn Recorder) -> VirtualRunResult {
    let problem = Dtlz::dtlz2_5();
    run_virtual_async(
        &problem,
        BorgConfig::new(5, 0.06),
        &gate_config(seed),
        rec,
        |_, _| {},
    )
}

fn gate_config(seed: u64) -> VirtualConfig {
    VirtualConfig {
        processors: 8,
        max_nfe: 2_000,
        t_f: Dist::normal_cv(0.001, 0.1),
        t_c: Dist::Constant(0.000_006),
        t_a: TaMode::Sampled(Dist::Constant(0.000_03)),
        seed,
    }
}

fn gate_faults() -> FaultConfig {
    FaultConfig {
        crash_rate: 0.25,
        drop_rate: 0.05,
        ..FaultConfig::default()
    }
}

fn run_once_faulty(seed: u64) -> VirtualRunResult {
    run_once_faulty_observed(seed, &NoopRecorder)
}

fn run_once_faulty_observed(seed: u64, rec: &dyn Recorder) -> VirtualRunResult {
    let problem = Dtlz::dtlz2_5();
    run_virtual_async_faulty(
        &problem,
        BorgConfig::new(5, 0.06),
        &gate_config(seed),
        &gate_faults(),
        rec,
        |_, _| {},
    )
}

/// Compares two same-seed runs bit-for-bit; `Err` carries a readable diff
/// prefixed with `label`.
fn diff_runs(label: &str, a: &VirtualRunResult, b: &VirtualRunResult) -> Result<(), String> {
    if a.outcome.elapsed.to_bits() != b.outcome.elapsed.to_bits() {
        return Err(format!(
            "{label}: elapsed virtual time diverged: {} vs {}",
            a.outcome.elapsed, b.outcome.elapsed
        ));
    }
    if a.engine.nfe() != b.engine.nfe() {
        return Err(format!(
            "{label}: NFE diverged: {} vs {}",
            a.engine.nfe(),
            b.engine.nfe()
        ));
    }
    let arch_a = a.engine.archive().solutions();
    let arch_b = b.engine.archive().solutions();
    if arch_a.len() != arch_b.len() {
        return Err(format!(
            "{label}: archive size diverged: {} vs {}",
            arch_a.len(),
            arch_b.len()
        ));
    }
    for (i, (sa, sb)) in arch_a.iter().zip(arch_b.iter()).enumerate() {
        if !bits_eq(sa.objectives(), sb.objectives()) {
            return Err(format!(
                "{label}: archive member {i} objectives diverged: {:?} vs {:?}",
                sa.objectives(),
                sb.objectives()
            ));
        }
        if !bits_eq(sa.variables(), sb.variables()) {
            return Err(format!("{label}: archive member {i} variables diverged"));
        }
    }
    if a.fault_log != b.fault_log {
        return Err(format!(
            "{label}: fault ledgers diverged: {} vs {}",
            a.fault_log.summary(),
            b.fault_log.summary()
        ));
    }
    Ok(())
}

/// Runs the same-seed-twice check — a fault-free arm and a fault-replay arm
/// (crashes + message loss) — demanding bit-identical archives, virtual
/// clocks, and fault ledgers, then diffs the golden Table II / faults cells
/// under `results/golden/` against the current engine. `Err` carries a
/// human-readable diff.
pub fn run(root: &std::path::Path) -> Result<DeterminismReport, String> {
    let seed = 0xB0C4_2026u64;
    let a = run_once(seed);
    let b = run_once(seed);
    diff_runs("fault-free", &a, &b)?;

    let fa = run_once_faulty(seed);
    let fb = run_once_faulty(seed);
    diff_runs("fault-replay", &fa, &fb)?;
    if fa.fault_log.injected() == 0 {
        return Err(
            "fault-replay arm injected nothing; the replay check is vacuous \
             (crash/drop rates or the plan seed derivation changed?)"
                .to_string(),
        );
    }
    if fa.engine.nfe() != a.engine.nfe() {
        return Err(format!(
            "fault-replay arm did not complete the budget: NFE {} vs {}",
            fa.engine.nfe(),
            a.engine.nfe()
        ));
    }

    // Observability arm: attaching the collecting sink must not perturb
    // the run — archive, virtual clock, and fault ledger stay bit-identical
    // to the no-op-recorder runs above.
    let rec = InMemoryRecorder::metrics_only();
    let observed = run_once_observed(seed, &rec);
    diff_runs("recorder-attach", &a, &observed)?;
    let frec = InMemoryRecorder::metrics_only();
    let fobserved = run_once_faulty_observed(seed, &frec);
    diff_runs("recorder-attach (fault replay)", &fa, &fobserved)?;
    let recorder_evals = rec
        .snapshot()
        .histograms
        .get("t_f_seconds")
        .map_or(0, |h| h.count());
    if recorder_evals < a.engine.nfe() {
        return Err(format!(
            "recorder arm observed {recorder_evals} evaluations for an NFE-{} run; \
             instrumentation hooks lost?",
            a.engine.nfe()
        ));
    }

    // Flight-recorder arm: strap the black box (tracing recorder + flight
    // ring) onto two more same-seed fault-replay runs. Both must stay
    // bit-identical to the oracle above, and — because the DES is
    // single-threaded virtual time — the two rings must dump
    // byte-identical JSONL.
    let flight_events = flight_arm(seed, &fa)?;

    // Parallel-runner arm: the work-stealing sweep contract. `--jobs 1`
    // and `--jobs 4` must yield byte-identical experiment outputs.
    let (parallel_rows, parallel_jsonl_lines) = parallel_runner_arm()?;

    // Networked arm: the same faulty run over real Unix-domain sockets
    // with the chaos proxy enacting the plan must match the DES oracle
    // (the fault-replay run above) bit for bit — with the full
    // observability stack (tracing + flight ring + live tap) attached.
    let (net_wire_results, net_wire_faults, tap_frames) = networked_chaos_arm(seed, &fa)?;

    let golden = crate::golden::check(root)?;

    Ok(DeterminismReport {
        nfe: a.engine.nfe(),
        archive_size: a.engine.archive().solutions().len(),
        elapsed: a.outcome.elapsed,
        faults_injected: fa.fault_log.injected(),
        fault_reissues: fa.fault_log.reissues,
        golden_rows: golden.rows,
        recorder_evals,
        parallel_rows,
        parallel_jsonl_lines,
        flight_events,
        net_wire_results,
        net_wire_faults,
        tap_frames,
    })
}

/// Runs the fault-replay configuration twice with a [`FlightRecorder`]
/// ring layered over a tracing recorder; demands both runs bit-identical
/// to `oracle` and the two black-box dumps byte-identical. Returns the
/// events recorded per run.
fn flight_arm(seed: u64, oracle: &VirtualRunResult) -> Result<u64, String> {
    let fly = |label: &str| -> Result<(u64, String), String> {
        let rec = InMemoryRecorder::new();
        let ring = FlightRecorder::new(4096);
        let run = run_once_faulty_observed(seed, &WithFlight::new(&rec, &ring));
        diff_runs(label, oracle, &run)?;
        Ok((ring.recorded(), ring.dump_jsonl("shutdown")))
    };
    let (events, dump_a) = fly("flight-attach")?;
    let (_, dump_b) = fly("flight-attach (second run)")?;
    if events == 0 {
        return Err(
            "flight arm recorded zero events; the engine's flight hooks are lost".to_string(),
        );
    }
    if dump_a != dump_b {
        let diverged = dump_a
            .lines()
            .zip(dump_b.lines())
            .enumerate()
            .find(|(_, (x, y))| x != y);
        return Err(match diverged {
            Some((n, (x, y))) => format!(
                "flight arm: black-box dumps diverged at line {}: `{x}` vs `{y}`",
                n + 1
            ),
            None => format!(
                "flight arm: black-box dump line counts diverged: {} vs {}",
                dump_a.lines().count(),
                dump_b.lines().count()
            ),
        });
    }
    Ok(events)
}

/// Runs the chaos-mode networked loopback (in-process workers over Unix
/// sockets, faults physically enacted by the proxy) under the full
/// observability stack — tracing [`InMemoryRecorder`], black-box
/// [`FlightRecorder`] ring, and a live metrics tap with a real
/// subscriber draining delta frames — and demands bit-identity with the
/// DES fault oracle; returns (result frames consumed off the wire,
/// faults enacted on the wire, tap frames the subscriber drained).
fn networked_chaos_arm(seed: u64, oracle: &VirtualRunResult) -> Result<(u64, usize, u64), String> {
    let problem = Dtlz::dtlz2_5();
    let config = gate_config(seed);
    let workers = (config.processors - 1) as usize;
    let chaos = ChaosConfig::loopback(&std::env::temp_dir(), "determinism-gate", workers);
    let resolve = |name: &str| -> Option<Box<dyn Problem>> {
        (name == "dtlz2-5").then(|| Box::new(Dtlz::dtlz2_5()) as Box<dyn Problem>)
    };
    let rec = InMemoryRecorder::new();
    let ring = FlightRecorder::new(4096);
    let observed = WithFlight::new(&rec, &ring);
    let tap_path =
        std::env::temp_dir().join(format!("borg-determinism-tap-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&tap_path);
    let tap_addr = NetAddr::Unix(tap_path.clone());
    let tap_cfg = TapConfig {
        listen: tap_addr.clone(),
        interval: Duration::from_millis(10),
        read_timeout: Duration::from_millis(5),
    };
    let listener = NetListener::bind(&tap_addr)
        .map_err(|e| format!("networked arm: bind tap listener: {e}"))?;
    let stop = AtomicBool::new(false);
    let (net, tap_frames) = std::thread::scope(|scope| {
        let tap = scope.spawn(|| tap_loop(&listener, &tap_cfg, &|| rec.snapshot(), &stop, &rec));
        let sub = scope.spawn(|| {
            let mut backoff = Backoff::default_schedule();
            let Ok(stream) =
                connect_with_backoff(&tap_addr, &mut backoff, Duration::from_millis(250))
            else {
                return 0u64;
            };
            let mut conn = Conn::new(stream);
            let mut frames = 0u64;
            loop {
                // `Ok(None)` is a read-timeout tick; the tap severing the
                // subscriber at shutdown surfaces as `Err`.
                match conn.recv() {
                    Ok(Some(Msg::Tap { .. })) => frames += 1,
                    Ok(_) => {}
                    Err(_) => break,
                }
            }
            frames
        });
        let net = run_chaos_loopback(
            &problem,
            BorgConfig::new(5, 0.06),
            &config,
            &gate_faults(),
            &chaos,
            "dtlz2-5",
            &resolve,
            &observed,
        );
        stop.store(true, Ordering::SeqCst);
        let _ = tap.join();
        let tap_frames = sub.join().unwrap_or(0);
        (net, tap_frames)
    });
    let _ = std::fs::remove_file(&tap_path);
    let net = net.map_err(|e| format!("networked arm: chaos loopback run failed: {e}"))?;
    if ring.recorded() == 0 {
        return Err(
            "networked arm: the flight ring recorded nothing; net.* flight hooks lost?".to_string(),
        );
    }
    if tap_frames == 0 {
        return Err(
            "networked arm: the live-tap subscriber drained zero delta frames; \
             the tap never ticked"
                .to_string(),
        );
    }

    if let Some(why) = &net.degraded {
        return Err(format!(
            "networked arm degraded to local evaluation ({why}); the wire was not load-bearing"
        ));
    }
    if net.wire_results == 0 {
        return Err("networked arm consumed zero result frames off the wire; \
                    the check is vacuous"
            .to_string());
    }
    if net.fault_log != oracle.fault_log {
        return Err(format!(
            "networked arm: fault ledger diverged from the DES oracle: {} vs {}",
            net.fault_log.summary(),
            oracle.fault_log.summary()
        ));
    }
    if net.outcome.elapsed.to_bits() != oracle.outcome.elapsed.to_bits() {
        return Err(format!(
            "networked arm: elapsed virtual time diverged: {} vs {}",
            net.outcome.elapsed, oracle.outcome.elapsed
        ));
    }
    if net.engine.nfe() != oracle.engine.nfe() {
        return Err(format!(
            "networked arm: NFE diverged: {} vs {}",
            net.engine.nfe(),
            oracle.engine.nfe()
        ));
    }
    let arch_net = net.engine.archive().solutions();
    let arch_oracle = oracle.engine.archive().solutions();
    if arch_net.len() != arch_oracle.len() {
        return Err(format!(
            "networked arm: archive size diverged: {} vs {}",
            arch_net.len(),
            arch_oracle.len()
        ));
    }
    for (i, (sa, sb)) in arch_net.iter().zip(arch_oracle.iter()).enumerate() {
        if !bits_eq(sa.objectives(), sb.objectives()) {
            return Err(format!(
                "networked arm: archive member {i} objectives diverged: {:?} vs {:?}",
                sa.objectives(),
                sb.objectives()
            ));
        }
        if !bits_eq(sa.variables(), sb.variables()) {
            return Err(format!(
                "networked arm: archive member {i} variables diverged"
            ));
        }
    }
    // The proxy's wire-side ledger enacted the same faults kind for kind
    // (its timestamps are wall-clock, so only the counts are comparable).
    for kind in [
        FaultKind::Crash,
        FaultKind::Hang,
        FaultKind::Straggler,
        FaultKind::MessageDrop,
        FaultKind::MessageDuplicate,
    ] {
        if net.wire_log.injected_of(kind) != oracle.fault_log.injected_of(kind) {
            return Err(format!(
                "networked arm: wire ledger count for {kind:?} diverged: {} vs {}",
                net.wire_log.injected_of(kind),
                oracle.fault_log.injected_of(kind)
            ));
        }
    }
    Ok((net.wire_results, net.wire_log.injected(), tap_frames))
}

/// One jobs-setting's rendered sweep outputs, plus bit-exact row
/// fingerprints (rendering rounds floats; the raw bits catch 1-ulp drift
/// the CSV would hide).
struct SweepOutputs {
    table_csv: String,
    table_bits: Vec<u64>,
    faults_csv: String,
    faults_bits: Vec<u64>,
    metrics_jsonl: String,
}

fn sweep_outputs(jobs: usize) -> SweepOutputs {
    // Sampled T_A keeps the runs independent of host timing, so equality
    // across jobs settings is exact, not approximate.
    let t2 = Table2Config {
        evaluations: 1_000,
        replicates: 2,
        processors: vec![8],
        tf_means: vec![0.001],
        problems: vec![PaperProblem::Dtlz2],
        sampled_ta: Some(0.000_03),
        jobs,
        ..Table2Config::default()
    };
    let mut jsonl = String::new();
    let rows = run_table2_with(&t2, |row, snap| {
        jsonl.push_str(&metrics_jsonl(
            &[
                ("problem", row.problem.to_string()),
                ("p", row.processors.to_string()),
            ],
            snap,
        ));
    });
    let mut table_bits = Vec::new();
    for r in &rows {
        table_bits.extend([
            r.experimental_time.to_bits(),
            r.t_a.to_bits(),
            r.efficiency.to_bits(),
            r.simulation_time.to_bits(),
            r.master_utilization.to_bits(),
        ]);
    }

    let fcfg = FaultsConfig {
        evaluations: 1_000,
        replicates: 2,
        processors: vec![8],
        failure_rates: vec![0.0, 0.25],
        tf_mean: 0.001,
        sampled_ta: Some(0.000_03),
        jobs,
        ..FaultsConfig::default()
    };
    let frows = run_faults(&fcfg);
    let mut faults_bits = Vec::new();
    for r in &frows {
        faults_bits.extend([
            r.experimental_time.to_bits(),
            r.completed_nfe,
            r.injected.to_bits(),
            r.detected.to_bits(),
            r.recovered.to_bits(),
            r.reissues.to_bits(),
            r.wasted_nfe.to_bits(),
        ]);
    }

    SweepOutputs {
        table_csv: render_table2(&rows).to_csv(),
        table_bits,
        faults_csv: render_faults(&frows).to_csv(),
        faults_bits,
        metrics_jsonl: jsonl,
    }
}

/// Runs the smoke sweeps at `jobs = 1` and `jobs = 4` and demands
/// byte-identical outputs; returns (rows compared, JSONL lines compared).
fn parallel_runner_arm() -> Result<(usize, usize), String> {
    let serial = sweep_outputs(1);
    let parallel = sweep_outputs(4);
    if serial.table_bits != parallel.table_bits || serial.table_csv != parallel.table_csv {
        return Err(format!(
            "parallel-runner arm: Table II rows diverged between jobs=1 and jobs=4:\n\
             --- jobs=1 ---\n{}--- jobs=4 ---\n{}",
            serial.table_csv, parallel.table_csv
        ));
    }
    if serial.faults_bits != parallel.faults_bits || serial.faults_csv != parallel.faults_csv {
        return Err(format!(
            "parallel-runner arm: fault-sweep rows/ledgers diverged between jobs=1 and jobs=4:\n\
             --- jobs=1 ---\n{}--- jobs=4 ---\n{}",
            serial.faults_csv, parallel.faults_csv
        ));
    }
    if serial.metrics_jsonl != parallel.metrics_jsonl {
        let diverged = serial
            .metrics_jsonl
            .lines()
            .zip(parallel.metrics_jsonl.lines())
            .enumerate()
            .find(|(_, (s, p))| s != p);
        return Err(match diverged {
            Some((n, (s, p))) => format!(
                "parallel-runner arm: metrics JSONL diverged at line {}: jobs=1 `{s}` vs \
                 jobs=4 `{p}`",
                n + 1
            ),
            None => format!(
                "parallel-runner arm: metrics JSONL line counts diverged: jobs=1 has {}, \
                 jobs=4 has {}",
                serial.metrics_jsonl.lines().count(),
                parallel.metrics_jsonl.lines().count()
            ),
        });
    }
    let jsonl_lines = serial.metrics_jsonl.lines().count();
    if jsonl_lines == 0 {
        return Err(
            "parallel-runner arm compared zero metrics lines; the check is vacuous \
             (per-replicate recorders lost?)"
                .to_string(),
        );
    }
    let rows = serial.table_csv.lines().count().saturating_sub(1)
        + serial.faults_csv.lines().count().saturating_sub(1);
    Ok((rows, jsonl_lines))
}

/// Bit-exact slice comparison (plain f64 `==` on objectives is exactly what
/// BORG-L005 exists to prevent; bit comparison is the honest test here).
fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b.iter())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_gate_passes() {
        let root = crate::files::workspace_root().expect("workspace root");
        let report = run(&root).expect("same-seed runs must be identical");
        assert_eq!(report.nfe, 2_000);
        assert!(report.archive_size > 5);
        assert!(report.elapsed > 0.0);
        assert!(report.faults_injected > 0, "fault-replay arm must inject");
        assert!(report.golden_rows > 0, "golden gate must compare rows");
        assert!(
            report.recorder_evals >= report.nfe,
            "recorder arm must observe every evaluation"
        );
        assert!(
            report.parallel_rows > 0,
            "parallel-runner arm must compare rows"
        );
        assert!(
            report.parallel_jsonl_lines > 0,
            "parallel-runner arm must compare metrics lines"
        );
        assert!(
            report.flight_events > 0,
            "flight arm must record black-box events"
        );
        assert_eq!(
            report.net_wire_results, report.nfe,
            "networked arm must pull every evaluation off the wire"
        );
        assert!(
            report.net_wire_faults > 0,
            "networked arm must physically enact faults"
        );
        assert!(
            report.tap_frames > 0,
            "the live-tap subscriber must drain delta frames"
        );
    }

    #[test]
    fn different_seeds_actually_differ() {
        // Guards against the gate vacuously passing because the config is
        // ignored: two different seeds must not produce identical archives.
        let a = run_once(1);
        let b = run_once(2);
        assert_ne!(
            a.engine.archive().objective_vectors(),
            b.engine.archive().objective_vectors()
        );
    }
}
