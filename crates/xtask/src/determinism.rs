//! The `xtask check --determinism` gate.
//!
//! Runs a small DTLZ2 instance through the virtual-time asynchronous
//! master-slave executor twice with the same seed and demands bit-identical
//! results: elapsed virtual time, NFE, and every archive member's variables
//! and objectives. This is the executable form of the workspace's
//! reproducibility contract (which BORG-L002/L003 guard statically): same
//! seed, same archive — across runs and across machines.
//!
//! `T_A` is *sampled*, not measured: `TaMode::Measured` charges real
//! wall-clock costs into the virtual event ordering, which is exactly the
//! nondeterminism this gate must not depend on.

use borg_core::algorithm::BorgConfig;
use borg_desim::trace::SpanTrace;
use borg_models::dist::Dist;
use borg_parallel::virtual_exec::{run_virtual_async, TaMode, VirtualConfig, VirtualRunResult};
use borg_problems::dtlz::Dtlz;

/// Summary of a passing determinism check.
pub struct DeterminismReport {
    pub nfe: u64,
    pub archive_size: usize,
    pub elapsed: f64,
}

fn run_once(seed: u64) -> VirtualRunResult {
    let problem = Dtlz::dtlz2_5();
    let config = VirtualConfig {
        processors: 8,
        max_nfe: 2_000,
        t_f: Dist::normal_cv(0.001, 0.1),
        t_c: Dist::Constant(0.000_006),
        t_a: TaMode::Sampled(Dist::Constant(0.000_03)),
        seed,
    };
    run_virtual_async(
        &problem,
        BorgConfig::new(5, 0.06),
        &config,
        &mut SpanTrace::disabled(),
        |_, _| {},
    )
}

/// Runs the same-seed-twice check; `Err` carries a human-readable diff.
pub fn run() -> Result<DeterminismReport, String> {
    let seed = 0xB0C4_2026u64;
    let a = run_once(seed);
    let b = run_once(seed);

    if a.outcome.elapsed.to_bits() != b.outcome.elapsed.to_bits() {
        return Err(format!(
            "elapsed virtual time diverged: {} vs {}",
            a.outcome.elapsed, b.outcome.elapsed
        ));
    }
    if a.engine.nfe() != b.engine.nfe() {
        return Err(format!(
            "NFE diverged: {} vs {}",
            a.engine.nfe(),
            b.engine.nfe()
        ));
    }
    let arch_a = a.engine.archive().solutions();
    let arch_b = b.engine.archive().solutions();
    if arch_a.len() != arch_b.len() {
        return Err(format!(
            "archive size diverged: {} vs {}",
            arch_a.len(),
            arch_b.len()
        ));
    }
    for (i, (sa, sb)) in arch_a.iter().zip(arch_b.iter()).enumerate() {
        if !bits_eq(sa.objectives(), sb.objectives()) {
            return Err(format!(
                "archive member {i} objectives diverged: {:?} vs {:?}",
                sa.objectives(),
                sb.objectives()
            ));
        }
        if !bits_eq(sa.variables(), sb.variables()) {
            return Err(format!("archive member {i} variables diverged"));
        }
    }
    Ok(DeterminismReport {
        nfe: a.engine.nfe(),
        archive_size: arch_a.len(),
        elapsed: a.outcome.elapsed,
    })
}

/// Bit-exact slice comparison (plain f64 `==` on objectives is exactly what
/// BORG-L005 exists to prevent; bit comparison is the honest test here).
fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b.iter())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_gate_passes() {
        let report = run().expect("same-seed runs must be identical");
        assert_eq!(report.nfe, 2_000);
        assert!(report.archive_size > 5);
        assert!(report.elapsed > 0.0);
    }

    #[test]
    fn different_seeds_actually_differ() {
        // Guards against the gate vacuously passing because the config is
        // ignored: two different seeds must not produce identical archives.
        let a = run_once(1);
        let b = run_once(2);
        assert_ne!(
            a.engine.archive().objective_vectors(),
            b.engine.archive().objective_vectors()
        );
    }
}
