//! Lint self-test fixture: every `//~ BORG-Lxxx` marker names a violation
//! `cargo xtask check --self-test` must report on that line, and every
//! unmarked escape hatch below must stay silent. The file is never compiled
//! or scanned by a normal `check` run (fixtures are excluded from
//! discovery); it is linted under a spoofed `crates/desim/src/` path so the
//! path-scoped BORG-L003 rule is live too.

use std::sync::Mutex; //~ BORG-L004
use std::sync::{Arc, Mutex as StdMutex}; //~ BORG-L004
use std::time::Instant; //~ BORG-L003

fn library_code(opt: Option<u32>, res: Result<u32, String>) -> u32 {
    let a = opt.unwrap(); //~ BORG-L001
    let b = res.expect("fixture"); //~ BORG-L001
    // Non-consuming lookalikes must not be flagged:
    let c = opt.unwrap_or(0);
    a + b + c
}

fn entropy_sources() -> f64 {
    let mut rng = rand::thread_rng(); //~ BORG-L002
    let x: f64 = rand::random(); //~ BORG-L002
    let seeded = StdRng::from_entropy(); //~ BORG-L002
    let os = OsRng; //~ BORG-L002
    x
}

fn wall_clock_in_virtual_time() {
    // In-scope because the fixture is scanned under crates/desim/src/.
    let t0 = Instant::now(); //~ BORG-L003
    let wall = std::time::SystemTime::now(); //~ BORG-L003
}

fn objective_equality_marked(sol: &Solution, best: f64) -> bool {
    sol.objectives()[0] == best //~ BORG-L005
}

fn objective_inequality_marked(sol: &Solution, best: f64) -> bool {
    best != sol.objectives()[1] //~ BORG-L005
}

// The fixture's spoofed path is also in BORG-L006 scope (executor rule),
// so unbounded channel waits are flagged here too.
fn master_loop_blocks_forever(rx: &Receiver<u64>) -> u64 {
    let first = rx.recv().unwrap_or(0); //~ BORG-L006
    first
}

// The fixture's spoofed path is also in BORG-L007 scope (executor rule):
// recovery bookkeeping belongs to borg_protocol::MasterEngine, not here.
struct ShadowMaster {
    in_flight: HashMap<u64, ReissueRecord>, //~ BORG-L007
    completed_ids: HashSet<u64>, //~ BORG-L007
}

fn shadow_recovery_state() {
    let mut deadlines: BTreeMap<u64, f64> = BTreeMap::new(); //~ BORG-L007
    let mut reissue_queue: VecDeque<u64> = VecDeque::new(); //~ BORG-L007
}

// Library code must not write to the terminal: report through the
// borg_obs::Recorder facade or return a renderable value.
fn chatty_library(progress: f64) {
    println!("progress: {progress:.1}%"); //~ BORG-L008
    eprintln!("warning: master saturated"); //~ BORG-L008
    print!("partial"); //~ BORG-L008
}

// The fixture's spoofed path is also in BORG-L009 scope (experiments-crate
// rule): sweeps fan out through borg-runner, never raw threads.
fn raw_threads_in_experiments() {
    let handle = std::thread::spawn(worker); //~ BORG-L009
    let other = thread::spawn(|| evaluate()); //~ BORG-L009
}

// The fixture's spoofed path is in BORG-L010 scope (determinism rule):
// hash-order iteration can leak into reported results.
fn order_sensitive_fold() -> u64 {
    let weights: HashMap<u64, u64> = HashMap::new();
    let mut ranked: Vec<u64> = weights.keys().copied().collect(); //~ BORG-L010
    for (id, w) in &weights { //~ BORG-L010
        ranked.push(id + w);
    }
    ranked.first().copied().unwrap_or(0)
}

// Library class puts BORG-L011 (relaxed atomics need a written
// justification) in scope here.
fn unjustified_relaxed(flag: &AtomicBool) -> bool {
    flag.load(Ordering::Relaxed) //~ BORG-L011
}

fn empty_reason_does_not_count(flag: &AtomicBool) -> bool {
    flag.load(Ordering::Relaxed) // borg-lint: relaxed-ok() //~ BORG-L011
}

// The fixture's spoofed path is also in BORG-L012 scope (protocol rule):
// a public engine entry point must reject adversarial input, not panic.
pub fn dispatch_nth(events: &[Event], idx: usize) -> Event {
    if idx >= events.len() {
        unreachable!("caller promised a valid index"); //~ BORG-L012
    }
    events[idx] //~ BORG-L012
}

// The fixture's spoofed path is also in BORG-L013 scope (wire rule):
// socket I/O propagates its errors and every blocking read keeps a
// deadline. A consuming unwrap on a socket path is both a generic
// library unwrap (L001) and a wire-contract violation (L013).
fn swallow_wire_errors(stream: &mut TcpStream, buf: &mut [u8]) {
    stream.read_exact(buf).unwrap(); //~ BORG-L001 BORG-L013
    stream.write_all(buf).expect("wire"); //~ BORG-L001 BORG-L013
}

fn dial_without_deadline(addr: &str) -> std::io::Result<TcpStream> {
    TcpStream::connect(addr) //~ BORG-L013
}

fn accept_without_deadline(listener: &TcpListener) -> std::io::Result<TcpStream> {
    let (stream, _peer) = listener.accept()?; //~ BORG-L013
    Ok(stream)
}

fn drop_the_read_deadline(stream: &TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(None) //~ BORG-L013
}

// BORG-L014: recorder metric names are 'static lowercase dotted literals.
fn dynamic_metric_names(rec: &dyn Recorder, worker: usize) {
    rec.counter(&format!("net.worker{worker}.frames"), 1); //~ BORG-L014
    rec.observe(&format!("rtt_{worker}"), 0.5); //~ BORG-L014
    rec.gauge("engine.Outstanding", 3.0); //~ BORG-L014
    rec.flight("net.worker-death", 0.0, 0, 0, 0.0); //~ BORG-L014
}

// BORG-L015: no per-call allocation inside hot-path-marked functions.
// borg-lint: hot-path
fn allocating_hot_path(parents: &[&[f64]], out: &mut Vec<f64>) -> Vec<f64> {
    let cloned = parents[0].to_vec(); //~ BORG-L015
    let gathered: Vec<f64> = parents.iter().map(|p| p[0]).collect(); //~ BORG-L015
    let mut scratch = Vec::new(); //~ BORG-L015
    scratch.extend_from_slice(&cloned);
    out.extend_from_slice(&gathered);
    scratch
}

// --- escapes that must NOT be reported ---------------------------------

// Unmarked functions may allocate freely (BORG-L015 is opt-in)...
fn unmarked_may_allocate(parents: &[&[f64]]) -> Vec<f64> {
    parents[0].to_vec()
}

// ...and a justified allocation inside a marked fn carries the escape.
// borg-lint: hot-path
fn hot_path_with_justified_allocation(xs: &[f64], out: &mut Vec<f64>) {
    // Cold error arm: only reached once per run.
    // borg-lint: allow(BORG-L015)
    let snapshot = xs.to_vec();
    out.clear();
    out.extend_from_slice(&snapshot);
}

// Catalogue consts, helper-resolved names, literal lowercase dotted
// names, and value-first histogram sinks all satisfy BORG-L014.
fn well_formed_metric_names(rec: &dyn Recorder, hist: &mut Histogram, e: &Event) {
    rec.counter(metrics::FRAMES_SENT, 1);
    rec.counter(event_metric(e), 1);
    rec.observe("engine.deadline_slack_seconds", 0.25);
    rec.gauge("t_a_seconds", 0.0001);
    hist.observe(0.25);
}

fn allowlisted() -> u32 {
    let fine = Some(1).unwrap(); // borg-lint: allow(BORG-L001)
    // borg-lint: allow(BORG-L001)
    let also_fine = Some(2).unwrap();
    fine + also_fine
}

fn unrelated_comma_argument(sol: &Solution, a: u32, b: u32) {
    // `==` in a different argument than the objectives() call.
    record(sol.objectives(), a == b);
}

fn bounded_waits_are_fine(rx: &Receiver<u64>, stop_rx: &Receiver<()>) {
    // Different identifiers — not unbounded recv().
    let _ = rx.recv_timeout(Duration::from_millis(10));
    let _ = rx.try_recv();
    // A deliberate disconnect-released park carries the allowlist escape.
    let _ = stop_rx.recv(); // borg-lint: allow(BORG-L006)
}

fn quiet_library(w: &mut impl Write, log: &InMemoryRecorder) {
    // Writing to a caller-supplied sink is not terminal output.
    writeln!(w, "row").ok();
    // The facade is the sanctioned reporting channel.
    log.counter("engine.reissues", 1);
    // A deliberate terminal write carries the allowlist escape.
    println!("blessed"); // borg-lint: allow(BORG-L008)
}

fn structured_scopes_are_fine(scope: &Scope) {
    // `scope.spawn` is a structured pool handle (borg-runner's internals),
    // not a raw thread spawn.
    scope.spawn(|| work());
    // A deliberate raw spawn carries the allowlist escape.
    let h = std::thread::spawn(run); // borg-lint: allow(BORG-L009)
}

fn benign_collections_and_counts(proto: &MasterEngine) {
    // A collection bound to a non-protocol name is not recovery state.
    let candidates: HashMap<u64, Candidate> = HashMap::new();
    // A protocol name holding a plain count is fine — only keyed
    // maps/sets/queues of eval-ids re-create the engine's job.
    let in_flight: usize = proto.outstanding_len();
    // A name in an unrelated argument is not matched across a comma.
    record_state(outstanding, HashMap::new());
    // A deliberate local mirror carries the allowlist escape.
    let seen_ids: HashSet<u64> = HashSet::new(); // borg-lint: allow(BORG-L007)
}

fn ordered_and_lookup_only(totals: &BTreeMap<u64, u64>) -> u64 {
    // BTreeMap iterates in key order — deterministic, silent.
    let mut sum = 0;
    for (_, v) in totals {
        sum += v;
    }
    // Point lookups into a hash map never observe iteration order.
    let lookup_cache: HashMap<u64, u64> = HashMap::new();
    sum + lookup_cache.get(&7).copied().unwrap_or(0)
}

// A proven order-insensitive fold carries an item-wide allow: the
// directive above the header suppresses every hit in the item's body.
// borg-lint: allow(BORG-L010)
fn order_insensitive_sum(counts: &HashMap<u64, u64>) -> u64 {
    let mut sum = 0;
    for v in counts.values() {
        sum += v;
    }
    sum + counts.keys().count() as u64
}

fn relaxed_with_reasons(flag: &AtomicBool, events_seen: &AtomicU64) {
    // borg-lint: relaxed-ok(standalone counter; nothing else is ordered by it)
    events_seen.fetch_add(1, Ordering::Relaxed);
    flag.store(true, Ordering::Relaxed); // borg-lint: relaxed-ok(advisory flag only)
}

// Non-pub helpers may index behind validated invariants (BORG-L012 scopes
// to pub fn bodies), and `.get()` is the sanctioned form everywhere.
fn private_index(events: &[Event], idx: usize) -> &Event {
    &events[idx]
}

pub fn checked_lookup(events: &[Event], idx: usize) -> Option<&Event> {
    events.get(idx)
}

// A bounds check at entry plus an item-wide allow covers a hot path.
// borg-lint: allow(BORG-L012)
pub fn hot_path_pair(table: &[u64], i: usize, j: usize) -> u64 {
    table[i] ^ table[j]
}

// BORG-L013 escapes: an acquisition whose body installs the deadline is
// the sanctioned shape, and the workspace accept wrapper carries the
// timeout as an argument (it installs it before returning).
fn guarded_dial(addr: &str) -> std::io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(read_timeout))?;
    Ok(stream)
}

fn accept_through_guarded_wrapper(listener: &NetListener) -> Result<(), NetError> {
    let _stream = listener.accept(read_timeout)?;
    Ok(())
}

// A deliberate fire-and-forget liveness probe carries the escape.
fn deliberate_unguarded_probe(addr: &str) -> bool {
    TcpStream::connect(addr).is_ok() // borg-lint: allow(BORG-L013)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v = Some(5).unwrap();
        assert!(v == 5);
    }

    #[test]
    fn tests_may_build_expectation_tables() {
        // Test regions are exempt from BORG-L007.
        let deadlines: HashSet<u64> = HashSet::new();
        assert!(deadlines.is_empty());
    }

    #[test]
    fn tests_may_print_debug_output() {
        // Test regions are exempt from BORG-L008.
        println!("debugging a failure");
    }

    #[test]
    fn tests_may_spawn_raw_threads() {
        // Test regions are exempt from BORG-L009.
        let handle = std::thread::spawn(|| 42);
        assert!(handle.join().is_ok());
    }

    #[test]
    fn tests_may_iterate_hash_maps_and_relax_atomics() {
        // Test regions are exempt from BORG-L010 and BORG-L011.
        let scratch: HashMap<u64, u64> = HashMap::new();
        let n = scratch.keys().count();
        let seen = FLAG.load(Ordering::Relaxed);
        assert!(n == 0 && !seen);
    }
}

#[test]
fn bare_test_fn_is_also_exempt() {
    let v: Result<u32, ()> = Ok(1);
    v.unwrap();
}
