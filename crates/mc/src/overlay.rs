//! Deterministic fault overlay for the model transport.
//!
//! Mirrors `borg_desim::fault::FaultPlan`'s two idioms — explicit
//! scripted faults for targeted scenarios and stateless seeded hashing
//! for broad ones — but over logical dispatch identity (eval id,
//! attempt, per-worker sequence) instead of virtual time, so the same
//! overlay decision is reproduced on every explored schedule.

/// Fate of one result-message transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// Delivered exactly once.
    Deliver,
    /// Lost in transit.
    Drop,
    /// Delivered twice.
    Duplicate,
}

/// Seeded per-message fault rates, hashed statelessly per
/// `(eval_id, attempt)` like `FaultPlan::message_fate`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeededFaults {
    /// Hash seed (domain-separated internally).
    pub seed: u64,
    /// Drop probability in thousandths.
    pub drop_per_mille: u64,
    /// Duplicate probability in thousandths.
    pub dup_per_mille: u64,
}

/// The full overlay: scripted faults take precedence, then the seeded
/// rates, else clean delivery.
#[derive(Debug, Clone, PartialEq)]
pub struct Overlay {
    /// Transmissions `(eval_id, attempt)` to drop.
    pub drop_on: Vec<(u64, u32)>,
    /// Transmissions `(eval_id, attempt)` to duplicate.
    pub duplicate_on: Vec<(u64, u32)>,
    /// Scripted deaths `(worker, dispatch_seq, will_respawn)`: the
    /// worker dies while running its `dispatch_seq`-th assignment.
    pub deaths: Vec<(usize, u64, bool)>,
    /// Seeded background fault rates, if any.
    pub seeded: Option<SeededFaults>,
    /// Shared-pool semantics: death notes carry the lost eval id...
    pub shared_death_notes: bool,
    /// ...and queued work is picked up by live threads even when the
    /// notional assignee is dead.
    pub shared_pickup: bool,
}

impl Overlay {
    /// No faults at all.
    pub fn quiet() -> Self {
        Overlay {
            drop_on: Vec::new(),
            duplicate_on: Vec::new(),
            deaths: Vec::new(),
            seeded: None,
            shared_death_notes: false,
            shared_pickup: false,
        }
    }

    /// Duplicate the listed transmissions.
    pub fn duplicates(on: &[(u64, u32)]) -> Self {
        Overlay {
            duplicate_on: on.to_vec(),
            ..Overlay::quiet()
        }
    }

    /// Drop the listed transmissions.
    pub fn drops(on: &[(u64, u32)]) -> Self {
        Overlay {
            drop_on: on.to_vec(),
            ..Overlay::quiet()
        }
    }

    /// One scripted death.
    pub fn death(worker: usize, seq: u64, will_respawn: bool) -> Self {
        Overlay {
            deaths: vec![(worker, seq, will_respawn)],
            ..Overlay::quiet()
        }
    }

    /// Seeded background drop/duplicate rates.
    pub fn seeded(seed: u64, drop_per_mille: u64, dup_per_mille: u64) -> Self {
        Overlay {
            seeded: Some(SeededFaults {
                seed,
                drop_per_mille,
                dup_per_mille,
            }),
            ..Overlay::quiet()
        }
    }

    /// Whether `worker`'s `seq`-th dispatch kills it; `Some(respawn)`.
    pub fn death_for(&self, worker: usize, seq: u64) -> Option<bool> {
        self.deaths
            .iter()
            .find(|&&(w, s, _)| w == worker && s == seq)
            .map(|&(_, _, r)| r)
    }

    /// Fate of the result message for `eval_id`'s `attempt`-th send.
    pub fn message_fate(&self, eval_id: u64, attempt: u32) -> Fate {
        if self.drop_on.contains(&(eval_id, attempt)) {
            return Fate::Drop;
        }
        if self.duplicate_on.contains(&(eval_id, attempt)) {
            return Fate::Duplicate;
        }
        if let Some(s) = self.seeded {
            let h = mix(s.seed ^ (eval_id << 8) ^ u64::from(attempt)) % 1000;
            if h < s.drop_per_mille {
                return Fate::Drop;
            }
            if h < s.drop_per_mille + s.dup_per_mille {
                return Fate::Duplicate;
            }
        }
        Fate::Deliver
    }
}

/// SplitMix64 finalizer.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_fates_take_precedence() {
        let o = Overlay {
            drop_on: vec![(3, 0)],
            duplicate_on: vec![(4, 1)],
            ..Overlay::quiet()
        };
        assert_eq!(o.message_fate(3, 0), Fate::Drop);
        assert_eq!(o.message_fate(3, 1), Fate::Deliver);
        assert_eq!(o.message_fate(4, 1), Fate::Duplicate);
        assert_eq!(o.message_fate(5, 0), Fate::Deliver);
    }

    #[test]
    fn seeded_fates_are_stable_and_rate_bounded() {
        let o = Overlay::seeded(42, 200, 200);
        let first: Vec<Fate> = (0..200).map(|id| o.message_fate(id, 0)).collect();
        let second: Vec<Fate> = (0..200).map(|id| o.message_fate(id, 0)).collect();
        assert_eq!(first, second);
        assert!(first.contains(&Fate::Drop));
        assert!(first.contains(&Fate::Duplicate));
        // 40% total fault rate: the clear majority still delivers.
        assert!(first.iter().filter(|&&f| f == Fate::Deliver).count() > 100);
    }

    #[test]
    fn death_lookup_matches_worker_and_seq() {
        let o = Overlay::death(1, 2, true);
        assert_eq!(o.death_for(1, 2), Some(true));
        assert_eq!(o.death_for(1, 1), None);
        assert_eq!(o.death_for(0, 2), None);
    }
}
