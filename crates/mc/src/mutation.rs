//! The model checker's mutation self-test.
//!
//! Every BORG lint proves it still has teeth by running against an
//! annotated fixture of seeded violations before scanning the real
//! tree. The model checker gets the same treatment at the semantic
//! level: the duplicates scenario re-runs against an engine whose
//! duplicate-suppression check is deliberately disabled
//! ([`borg_protocol::MasterEngine::sabotage_duplicate_suppression`]).
//! If no explored schedule violates an invariant under that sabotage,
//! the checker is blind and its clean verdict on the real engine is
//! worthless — so a blind run is an *error*, not a pass.

use crate::explore::{run_scenario, Scenario, ScenarioReport};
use crate::scenarios;

/// The sabotaged scenario: duplicates with suppression disabled.
pub fn sabotaged_scenario() -> Scenario {
    Scenario {
        name: "mutation_duplicate_suppression",
        sabotage: true,
        ..scenarios::duplicates()
    }
}

/// Run the self-test. `Ok` carries the (violating) report; `Err` means
/// the sabotage went undetected.
pub fn self_test() -> Result<ScenarioReport, String> {
    let report = run_scenario(&sabotaged_scenario());
    if report.violations.is_empty() {
        return Err(
            "mutation self-test failed: sabotaged duplicate suppression produced no \
             violating schedule — the invariant catalogue is blind"
                .to_string(),
        );
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sabotage_is_detected_with_a_trace() {
        let report = self_test().expect("self-test must catch the sabotage");
        let v = report
            .violations
            .iter()
            .find(|v| v.invariant == "duplicate-absorption")
            .expect("expected a duplicate-absorption violation");
        assert!(!v.trace.is_empty());
        assert_eq!(v.scenario, "mutation_duplicate_suppression");
    }
}
