//! Bounded exhaustive exploration of event-delivery schedules.
//!
//! The explorer runs a depth-first search over every order in which the
//! pending events of a [`ModelTransport`] can be delivered to a
//! [`MasterEngine`], checking the invariant catalogue at every step and
//! at every terminal state. Two reduction mechanisms keep the search
//! tractable without sacrificing coverage *counts*:
//!
//! - **State-digest memoization** (the stateful analogue of DPOR sleep
//!   sets): interleavings of commuting events converge to the same
//!   `(engine, transport)` digest, and a converged state's subtree is
//!   explored once. The memo stores the number of schedules below each
//!   state, so pruned subtrees still contribute their full schedule
//!   count — `schedules` is the true size of the schedule space, while
//!   `pruned` counts the subtree re-entries that were folded away.
//! - **Bounded-delay scheduling** (optional): an event may be overtaken
//!   by at most `delay_window` younger events. This models bounded
//!   message reordering — the realistic adversary for a master over
//!   TCP-like links — and is required for scenarios where *unbounded*
//!   postponement of a death notification legitimately changes the
//!   outcome (reissue cascades into the abandonment cap).

use crate::overlay::Overlay;
use crate::transport::ModelTransport;
use borg_obs::NoopRecorder;
use borg_protocol::{EngineConfig, Event, MasterEngine, PoolDiscipline, ProtocolMode};
use std::collections::HashMap;

/// How strictly terminal outcomes must agree across schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strictness {
    /// All schedules must complete the same number of evaluations and
    /// abandon the same number. The right bar for `Eager` dispatch,
    /// where the *identity* of the in-flight tail legitimately depends
    /// on arrival order.
    CompletedCount,
    /// All schedules must consume exactly the same set of eval ids and
    /// abandon exactly the same set. The bar for `Budgeted` and `Sync`
    /// protocols, whose work identity is schedule-independent.
    ConsumedSet,
    /// All schedules must account for the same set of eval ids, but the
    /// consumed/abandoned *partition* may differ. The bar for scenarios
    /// that deliberately expose the reissue cap: a timer adversary can
    /// race a deadline against its own result all the way to
    /// abandonment, so which side of the ledger an id lands on is
    /// schedule-dependent — losing or double-counting an id never is.
    WorkConservation,
}

/// One scenario: an engine configuration plus a fault overlay and the
/// exploration bounds under which its invariants must hold.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Stable scenario name (reported, and used by `--json`).
    pub name: &'static str,
    /// Engine shape under test.
    pub config: EngineConfig,
    /// Fault overlay (shared-pool flags are derived from `config`).
    pub overlay: Overlay,
    /// Outcome-agreement bar.
    pub strictness: Strictness,
    /// Bounded-delay window (`None` = arbitrary reordering).
    pub delay_window: Option<u64>,
    /// Heartbeat re-arms honoured before truncating the timer chain.
    pub rearm_cap: u32,
    /// Safety depth bound per schedule (deliveries).
    pub max_depth: usize,
    /// Run with duplicate suppression sabotaged (mutation self-test
    /// only: a clean report under sabotage means the checker is blind).
    pub sabotage: bool,
}

/// One invariant violation, with the schedule that produced it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Scenario that produced it.
    pub scenario: String,
    /// Invariant identifier (stable, kebab-case).
    pub invariant: &'static str,
    /// Human-readable specifics.
    pub detail: String,
    /// The delivered-event trace from the initial state.
    pub trace: Vec<String>,
}

/// Exploration results for one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: String,
    /// Distinct complete schedules covered (memo-folded subtrees count
    /// with full multiplicity; saturating).
    pub schedules: u64,
    /// Distinct states visited (memo size).
    pub unique_states: u64,
    /// Subtree re-entries folded by the memo.
    pub pruned: u64,
    /// Schedules cut short by the depth bound (0 for a sound report).
    pub truncated: u64,
    /// Heartbeat re-arms refused past the cap.
    pub rearms_truncated: u64,
    /// Distinct terminal outcome digests (1 for a schedule-independent
    /// protocol; more is an outcome-divergence violation).
    pub outcomes: u64,
    /// Invariant violations found (capped at [`MAX_VIOLATIONS`]).
    pub violations: Vec<Violation>,
}

/// Per-scenario cap on collected violations; exploration stops early
/// once reached (the report is already damning).
pub const MAX_VIOLATIONS: usize = 4;

struct Explorer<'a> {
    scenario: &'a Scenario,
    memo: HashMap<u64, u64>,
    pruned: u64,
    truncated: u64,
    outcomes: std::collections::BTreeSet<u64>,
    first_outcome: Option<(u64, Vec<String>)>,
    violations: Vec<Violation>,
    trace: Vec<String>,
}

/// Explore `scenario` exhaustively and report.
pub fn run_scenario(scenario: &Scenario) -> ScenarioReport {
    let mut engine = MasterEngine::new(scenario.config);
    if scenario.sabotage {
        engine.sabotage_duplicate_suppression();
    }
    let mut overlay = scenario.overlay.clone();
    if scenario.config.discipline == PoolDiscipline::Shared {
        overlay.shared_death_notes = true;
        overlay.shared_pickup = true;
    }
    let mut transport = ModelTransport::new(
        scenario.config.workers,
        scenario.config.policy.timeout.is_finite(),
        scenario.rearm_cap,
        overlay,
    );
    engine.seed(&mut transport, &NoopRecorder);

    let mut ex = Explorer {
        scenario,
        memo: HashMap::new(),
        pruned: 0,
        truncated: 0,
        outcomes: std::collections::BTreeSet::new(),
        first_outcome: None,
        violations: Vec::new(),
        trace: Vec::new(),
    };
    let schedules = ex.explore(&engine, &transport, 0);
    let rearms_truncated = transport.rearms_truncated;
    ScenarioReport {
        name: scenario.name.to_string(),
        schedules,
        unique_states: ex.memo.len() as u64,
        pruned: ex.pruned,
        truncated: ex.truncated,
        rearms_truncated,
        outcomes: ex.outcomes.len() as u64,
        violations: ex.violations,
    }
}

impl Explorer<'_> {
    fn explore(&mut self, engine: &MasterEngine, t: &ModelTransport, depth: usize) -> u64 {
        if self.violations.len() >= MAX_VIOLATIONS {
            return 1;
        }
        if engine.finished() || t.pending.is_empty() {
            self.check_terminal(engine, t);
            return 1;
        }
        if depth >= self.scenario.max_depth {
            self.truncated += 1;
            return 1;
        }
        let digest = self.state_digest(engine, t);
        if let Some(&below) = self.memo.get(&digest) {
            self.pruned += 1;
            return below;
        }
        let mut total: u64 = 0;
        for index in self.enabled(t) {
            let mut e2 = engine.clone();
            let mut t2 = t.clone();
            let event = t2.deliver(index);
            self.trace.push(describe(&event));
            e2.handle(event, &mut t2, &NoopRecorder);
            self.check_step(&e2, &t2);
            total = total.saturating_add(self.explore(&e2, &t2, depth + 1));
            self.trace.pop();
        }
        self.memo.insert(digest, total);
        total
    }

    /// Indices of pending events the scheduler may deliver next. Under a
    /// bounded-delay window only events at most `window` births younger
    /// than the oldest pending event are enabled, so nothing can be
    /// postponed forever.
    fn enabled(&self, t: &ModelTransport) -> Vec<usize> {
        match self.scenario.delay_window {
            None => (0..t.pending.len()).collect(),
            Some(window) => {
                let min_birth = t.pending.iter().map(|p| p.birth).min().unwrap_or(0);
                (0..t.pending.len())
                    .filter(|&i| t.pending[i].birth <= min_birth + window)
                    .collect()
            }
        }
    }

    fn state_digest(&self, engine: &MasterEngine, t: &ModelTransport) -> u64 {
        let include_births = self.scenario.delay_window.is_some();
        engine.state_digest() ^ t.digest(include_births).rotate_left(17)
    }

    fn violation(&mut self, invariant: &'static str, detail: String) {
        if self
            .violations
            .iter()
            .any(|v| v.invariant == invariant && v.detail == detail)
        {
            return;
        }
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations.push(Violation {
                scenario: self.scenario.name.to_string(),
                invariant,
                detail,
                trace: self.trace.clone(),
            });
        }
    }

    /// Invariants checked after every delivery (cheap, catch bugs at the
    /// step that introduces them so the trace points at the culprit).
    fn check_step(&mut self, engine: &MasterEngine, t: &ModelTransport) {
        // I1: no eval id is ever consumed twice.
        if let Some(id) = t.double_consumed() {
            self.violation("unique-consume", format!("eval {id} consumed twice"));
        }
        // I2: everything consumed was actually dispatched.
        for &id in t.consumed.keys() {
            if !t.dispatched.contains(&id) {
                self.violation(
                    "consume-implies-dispatch",
                    format!("eval {id} consumed but never dispatched"),
                );
            }
        }
        // I3: the engine's completed counter mirrors the transport's
        // consume calls one-for-one.
        if engine.completed() != t.total_consumes() {
            self.violation(
                "completed-count",
                format!(
                    "engine completed {} but transport saw {} consumes",
                    engine.completed(),
                    t.total_consumes()
                ),
            );
        }
        // Duplicate suppression: the model transport only emits results
        // for dispatched evals, so an arrival routed to `unknown_result`
        // is only legitimate for an abandoned eval. A consumed id landing
        // there means a duplicate was *lost* instead of absorbed.
        for &id in &t.unknown_ids {
            if t.consumed.contains_key(&id) && !t.abandoned.contains(&id) {
                self.violation(
                    "duplicate-absorption",
                    format!("arrival for consumed eval {id} fell through to unknown_result"),
                );
            }
        }
        // I7 (running half): ledger counters mirror transport calls.
        let log = engine.log();
        if log.duplicates_suppressed != t.absorbed_duplicates {
            self.violation(
                "ledger-duplicates",
                format!(
                    "ledger says {} duplicates suppressed, transport absorbed {}",
                    log.duplicates_suppressed, t.absorbed_duplicates
                ),
            );
        }
        if log.reissues != t.reissue_dispatches {
            self.violation(
                "ledger-reissues",
                format!(
                    "ledger says {} reissues, transport dispatched {} retries",
                    log.reissues, t.reissue_dispatches
                ),
            );
        }
        if engine.abandoned() != t.abandoned.len() as u64 {
            self.violation(
                "ledger-abandoned",
                format!(
                    "engine abandoned {} but transport was told of {}",
                    engine.abandoned(),
                    t.abandoned.len()
                ),
            );
        }
    }

    /// Invariants checked at terminal states (budget conservation and
    /// outcome agreement across schedules).
    fn check_terminal(&mut self, engine: &MasterEngine, t: &ModelTransport) {
        self.check_step(engine, t);
        let budget = self.scenario.config.budget;
        let workers = self.scenario.config.workers as u64;
        if engine.finished() {
            // I4: the finish line is exactly the budget (async consumes
            // one result at a time) or within one generation of it.
            let ok = match self.scenario.config.mode {
                ProtocolMode::Async => engine.completed() == budget,
                ProtocolMode::Sync => {
                    engine.completed() >= budget && engine.completed() < budget + workers
                }
            };
            if !ok {
                self.violation(
                    "budget-conservation",
                    format!(
                        "finished with completed {} (budget {budget})",
                        engine.completed()
                    ),
                );
            }
        } else {
            // Pending drained without finishing: legitimate only when
            // abandonment consumed the missing budget. Anything else is
            // lost work — an eval id that fell out of every ledger.
            if engine.completed() + engine.abandoned() < budget {
                self.violation(
                    "budget-conservation",
                    format!(
                        "deadlock: drained with completed {} + abandoned {} < budget {budget}",
                        engine.completed(),
                        engine.abandoned()
                    ),
                );
            }
        }
        // I7 (terminal half): wasted NFE is bounded by what was injected
        // plus what suppression absorbed.
        let log = engine.log();
        let floor = t.drops_injected + log.duplicates_suppressed;
        let ceiling = floor + t.dups_injected + t.deaths_injected;
        if log.wasted_nfe < floor || log.wasted_nfe > ceiling {
            self.violation(
                "ledger-wasted-nfe",
                format!("wasted_nfe {} outside [{floor}, {ceiling}]", log.wasted_nfe),
            );
        }
        // I6: outcome agreement across schedules.
        let outcome = self.outcome_digest(engine, t);
        self.outcomes.insert(outcome);
        match &self.first_outcome {
            None => self.first_outcome = Some((outcome, self.trace.clone())),
            Some((first, first_trace)) => {
                if *first != outcome {
                    let detail = format!(
                        "outcome digest {outcome:#018x} diverges from {first:#018x} \
                         (first reached via [{}])",
                        first_trace.join(", ")
                    );
                    self.violation("outcome-divergence", detail);
                }
            }
        }
    }

    fn outcome_digest(&self, engine: &MasterEngine, t: &ModelTransport) -> u64 {
        let mut h = 0x2545_F491_4F6C_DD1Du64;
        match self.scenario.strictness {
            Strictness::CompletedCount => {
                h = mix(h ^ engine.completed());
                h = mix(h ^ engine.abandoned());
                h = mix(h ^ u64::from(engine.finished()));
            }
            Strictness::ConsumedSet => {
                h = mix(h ^ engine.completed());
                h = mix(h ^ engine.abandoned());
                h = mix(h ^ u64::from(engine.finished()));
                for &id in t.consumed.keys() {
                    h = mix(h ^ id);
                }
                for &id in &t.abandoned {
                    h = mix(h ^ (id << 1) ^ 1);
                }
            }
            Strictness::WorkConservation => {
                let union: std::collections::BTreeSet<u64> = t
                    .consumed
                    .keys()
                    .copied()
                    .chain(t.abandoned.iter().copied())
                    .collect();
                h = mix(h ^ union.len() as u64);
                for id in union {
                    h = mix(h ^ id);
                }
            }
        }
        h
    }
}

fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn describe(event: &Event) -> String {
    match *event {
        Event::ResultArrived {
            worker, eval_id, ..
        } => format!("result w{worker} e{eval_id}"),
        Event::DeadlineFired {
            eval_id, worker, ..
        } => format!("deadline e{eval_id} w{worker}"),
        Event::HeartbeatTick { .. } => "heartbeat".to_string(),
        Event::WorkerDied { worker, .. } => format!("death w{worker}"),
        Event::WorkerRespawned { worker, .. } => format!("respawn w{worker}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use borg_protocol::RecoveryPolicy;

    fn tiny_fault_free() -> Scenario {
        Scenario {
            name: "test_fault_free",
            config: EngineConfig::fault_free_async(2, 4),
            overlay: Overlay::quiet(),
            strictness: Strictness::CompletedCount,
            delay_window: None,
            rearm_cap: 0,
            max_depth: 32,
            sabotage: false,
        }
    }

    #[test]
    fn fault_free_pipeline_is_schedule_independent() {
        let report = run_scenario(&tiny_fault_free());
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.outcomes, 1);
        assert!(report.schedules >= 8, "schedules {}", report.schedules);
        assert_eq!(report.truncated, 0);
    }

    #[test]
    fn memoization_prunes_commuting_interleavings() {
        // Eager arrivals never commute at state level (order decides the
        // eval→worker binding), but generational arrivals commute
        // perfectly within a generation: all 3! orders converge.
        let scenario = Scenario {
            name: "test_sync",
            config: EngineConfig::sync_generational(3, 5),
            overlay: Overlay::quiet(),
            strictness: Strictness::ConsumedSet,
            delay_window: None,
            rearm_cap: 0,
            max_depth: 32,
            sabotage: false,
        };
        let report = run_scenario(&scenario);
        assert!(report.pruned > 0, "no states pruned: {report:?}");
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.outcomes, 1);
    }

    #[test]
    fn duplicates_are_absorbed_on_every_schedule() {
        let scenario = Scenario {
            name: "test_duplicates",
            config: EngineConfig::fault_tolerant_async(2, 4, RecoveryPolicy::disabled()),
            overlay: Overlay::duplicates(&[(0, 0), (2, 0)]),
            strictness: Strictness::ConsumedSet,
            delay_window: None,
            rearm_cap: 0,
            max_depth: 48,
            sabotage: false,
        };
        let report = run_scenario(&scenario);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.outcomes, 1);
    }

    #[test]
    fn timer_adversary_reaches_cascade_abandonment() {
        // A deadline can race its own result all the way to the reissue
        // cap under unbounded reordering: budget 1, one worker, cap 1.
        // Schedules: consume immediately (finished) vs deadline, reissue,
        // deadline again, abandon (drained unfinished). Both conserve the
        // budget, so under ConsumedSet strictness this must surface as
        // outcome divergence — proof the explorer reaches the cascade.
        let scenario = Scenario {
            name: "test_cascade",
            config: EngineConfig::fault_tolerant_async(
                1,
                1,
                RecoveryPolicy {
                    timeout: 5.0,
                    heartbeat_interval: f64::INFINITY,
                    max_reissues: 1,
                },
            ),
            overlay: Overlay::quiet(),
            strictness: Strictness::ConsumedSet,
            delay_window: None,
            rearm_cap: 0,
            max_depth: 32,
            sabotage: false,
        };
        let report = run_scenario(&scenario);
        assert!(report.outcomes >= 2, "cascade not reached: {report:?}");
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == "outcome-divergence"));
    }

    #[test]
    fn sabotaged_duplicate_suppression_is_caught() {
        let scenario = Scenario {
            name: "test_sabotage",
            config: EngineConfig::fault_tolerant_async(2, 4, RecoveryPolicy::disabled()),
            overlay: Overlay::duplicates(&[(0, 0), (2, 0)]),
            strictness: Strictness::ConsumedSet,
            delay_window: None,
            rearm_cap: 0,
            max_depth: 48,
            sabotage: true,
        };
        let report = run_scenario(&scenario);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.invariant == "duplicate-absorption"),
            "sabotage went undetected: {:?}",
            report.violations
        );
        let v = &report.violations[0];
        assert!(!v.trace.is_empty(), "violation carries no trace");
    }
}
