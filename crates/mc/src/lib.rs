//! `borg-mc` — a bounded schedule-space model checker for the
//! [`borg_protocol::MasterEngine`].
//!
//! The paper's asynchronous speedup claims rest on the master being
//! insensitive to event *arrival order*, yet the workspace's other
//! correctness gates (the determinism arms, the differential proptests)
//! replay exactly one schedule per seed. This crate closes that gap: it
//! materialises every in-flight message and timer as an explicit
//! pending event ([`ModelTransport`]), then exhaustively explores every
//! delivery order a bounded adversary could produce
//! ([`explore::run_scenario`]), asserting at each step and each
//! terminal state that:
//!
//! - no evaluation id is ever consumed twice (`unique-consume`) or
//!   consumed without being dispatched (`consume-implies-dispatch`);
//! - duplicate messages are absorbed, never silently lost
//!   (`duplicate-absorption`);
//! - the budget is conserved — runs finish at exactly the budget, and a
//!   drained schedule that did not finish accounted for every missing
//!   evaluation as an abandonment (`budget-conservation`);
//! - the fault ledger mirrors what actually happened on the wire
//!   (`ledger-*`);
//! - all schedules of a scenario agree on the outcome
//!   (`outcome-divergence`): completion counts under eager dispatch,
//!   exact consumed/abandoned sets under budgeted and generational
//!   protocols.
//!
//! Commuting interleavings are folded by state-digest memoization (the
//! stateful analogue of DPOR sleep sets) without losing schedule
//! counts, and scenarios with death notifications bound how far an
//! event may be overtaken (`delay_window`) so that only realistic
//! reorderings count against outcome agreement. The checker proves its
//! own teeth before every run: [`mutation::self_test`] re-explores the
//! duplicates scenario against a deliberately sabotaged engine and
//! errors out if no violation surfaces.
//!
//! Entry points: `cargo xtask mc [--smoke] [--depth N] [--json]`, the
//! `mc` criterion group in `cargo xtask bench`, and the unit tests.

pub mod explore;
pub mod mutation;
pub mod overlay;
pub mod scenarios;
pub mod transport;

pub use explore::{run_scenario, Scenario, ScenarioReport, Strictness, Violation};
pub use overlay::{Fate, Overlay, SeededFaults};
pub use transport::{ModelTransport, Pending, PendingAt};

/// Aggregate result of a checker run.
#[derive(Debug, Clone)]
pub struct McReport {
    /// Per-scenario exploration reports, in catalogue order.
    pub scenarios: Vec<ScenarioReport>,
    /// The mutation self-test's report (its violations are *expected*).
    pub mutation: ScenarioReport,
}

impl McReport {
    /// Total schedules across scenarios (saturating).
    pub fn schedules(&self) -> u64 {
        self.scenarios
            .iter()
            .fold(0u64, |a, s| a.saturating_add(s.schedules))
    }

    /// Total memo-folded subtree re-entries.
    pub fn pruned(&self) -> u64 {
        self.scenarios.iter().map(|s| s.pruned).sum()
    }

    /// Total distinct states visited.
    pub fn unique_states(&self) -> u64 {
        self.scenarios.iter().map(|s| s.unique_states).sum()
    }

    /// Violations across the real scenarios (mutation excluded).
    pub fn violations(&self) -> Vec<&Violation> {
        self.scenarios.iter().flat_map(|s| &s.violations).collect()
    }

    /// Clean run: no violations, no depth truncation, and the mutation
    /// self-test caught its sabotage.
    pub fn ok(&self) -> bool {
        self.violations().is_empty()
            && self.scenarios.iter().all(|s| s.truncated == 0)
            && !self.mutation.violations.is_empty()
    }
}

/// Run the checker: the smoke subset or the full catalogue, with an
/// optional depth override, always preceded by the mutation self-test.
pub fn run(smoke: bool, depth: Option<usize>) -> Result<McReport, String> {
    let mutation = mutation::self_test()?;
    let mut scenarios = if smoke {
        scenarios::smoke()
    } else {
        scenarios::full()
    };
    if let Some(d) = depth {
        for s in &mut scenarios {
            s.max_depth = d;
        }
    }
    let reports = scenarios.iter().map(explore::run_scenario).collect();
    Ok(McReport {
        scenarios: reports,
        mutation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_is_clean_and_covers_a_thousand_schedules() {
        let report = run(true, None).expect("mutation self-test");
        assert!(
            report.ok(),
            "violations: {:?}",
            report
                .violations()
                .iter()
                .map(|v| (&v.scenario, v.invariant, &v.detail))
                .collect::<Vec<_>>()
        );
        assert!(
            report.schedules() >= 1000,
            "only {} schedules explored",
            report.schedules()
        );
        assert!(report.pruned() > 0, "memoization never fired");
    }

    #[test]
    fn depth_override_truncates_and_is_reported() {
        let report = run(true, Some(2)).expect("mutation self-test");
        assert!(!report.ok(), "a depth-2 bound must truncate");
        assert!(report.scenarios.iter().any(|s| s.truncated > 0));
    }
}
