//! The model-checker's [`Transport`]: logical time, explicit pending
//! events, and a deterministic fault overlay.
//!
//! Where the DES transports schedule continuations at sampled virtual
//! times, [`ModelTransport`] materialises every in-flight message and
//! timer as a [`Pending`] entry and lets the explorer choose the
//! delivery order. Time is purely logical — `now` is the number of
//! events delivered so far — so "later" means "after more deliveries",
//! which is exactly the granularity at which the engine's decisions can
//! depend on order.

use crate::overlay::Overlay;
use borg_desim::fault::{FaultKind, FaultLog};
use borg_protocol::{Clock, Transport};

/// An undelivered event the scheduler may hand to the engine next.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pending {
    /// A result message in flight from `worker` (one entry per copy; a
    /// duplicated message contributes two entries).
    Result {
        /// Delivering worker.
        worker: usize,
        /// Evaluation the message carries.
        eval_id: u64,
    },
    /// The deadline timer armed for one specific dispatch of `eval_id`.
    Deadline {
        /// Evaluation being watched.
        eval_id: u64,
        /// Worker the dispatch targeted.
        worker: usize,
        /// Bit pattern of the armed deadline (the engine's staleness
        /// token: a reissue re-arms with different bits).
        bits: u64,
    },
    /// The liveness sweep timer.
    Heartbeat,
    /// The out-of-band notification that `worker` died.
    Death {
        /// Dead worker.
        worker: usize,
        /// Whether a respawn notification will follow.
        will_respawn: bool,
        /// Shared-pool death notes name the evaluation that died with
        /// the worker; assigned pools let the deadline machinery find it.
        lost_eval: Option<u64>,
    },
    /// The notification that `worker` rejoined (generated when its
    /// death is delivered, so respawns never precede their death).
    Respawn {
        /// Respawned worker.
        worker: usize,
    },
}

/// A [`Pending`] event plus the logical time it entered the network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PendingAt {
    /// The event itself.
    pub event: Pending,
    /// Logical time (delivered-event count) at which it was created —
    /// the bounded-delay scheduler limits how long an event may be
    /// overtaken by younger ones.
    pub birth: u64,
}

/// Mirror of the ground truth the engine cannot see, plus the
/// bookkeeping the invariants are checked against.
#[derive(Debug, Clone)]
pub struct ModelTransport {
    /// Logical clock: number of events delivered so far.
    pub now: f64,
    /// Undelivered events, in creation order.
    pub pending: Vec<PendingAt>,
    /// Ground-truth worker liveness (dies at the *dispatch* that strikes
    /// it, before the master hears about it).
    pub worker_alive: Vec<bool>,
    /// Per-eval consume count (invariant: never exceeds one).
    pub consumed: std::collections::BTreeMap<u64, u32>,
    /// Every eval id ever dispatched.
    pub dispatched: std::collections::BTreeSet<u64>,
    /// Eval ids the engine told us to abandon.
    pub abandoned: std::collections::BTreeSet<u64>,
    /// `absorb_duplicate` calls (must equal `log.duplicates_suppressed`).
    pub absorbed_duplicates: u64,
    /// Dispatch calls with `attempt > 0` (must equal `log.reissues`).
    pub reissue_dispatches: u64,
    /// Result messages the overlay dropped.
    pub drops_injected: u64,
    /// Result messages the overlay duplicated.
    pub dups_injected: u64,
    /// Scripted worker deaths that took an in-flight evaluation down.
    pub deaths_injected: u64,
    /// Eval ids the engine routed to `unknown_result`. Legitimate only
    /// for abandoned evaluations: the model transport never fabricates
    /// results, so an unknown arrival for a *consumed* id means the
    /// duplicate-suppression path lost a message instead of absorbing it.
    pub unknown_ids: std::collections::BTreeSet<u64>,
    /// Heartbeat re-arms honoured so far.
    pub rearms: u32,
    /// Re-arms refused past the cap (bounds the schedule space; a
    /// truncated scenario reports this so the bound is never silent).
    pub rearms_truncated: u64,
    /// Cap on honoured re-arms.
    pub rearm_cap: u32,
    /// Monotonic counter making every armed deadline's bit pattern
    /// unique (the engine's staleness check must distinguish dispatches).
    pub deadline_counter: u64,
    /// Whether armed deadlines are finite (mirrors the policy timeout).
    pub finite_deadlines: bool,
    /// The scenario's fault overlay.
    pub overlay: Overlay,
}

impl ModelTransport {
    /// A fresh transport for `workers` slots under `overlay`.
    pub fn new(workers: usize, finite_deadlines: bool, rearm_cap: u32, overlay: Overlay) -> Self {
        ModelTransport {
            now: 0.0,
            pending: Vec::new(),
            worker_alive: vec![true; workers],
            consumed: std::collections::BTreeMap::new(),
            dispatched: std::collections::BTreeSet::new(),
            abandoned: std::collections::BTreeSet::new(),
            absorbed_duplicates: 0,
            reissue_dispatches: 0,
            drops_injected: 0,
            dups_injected: 0,
            deaths_injected: 0,
            unknown_ids: std::collections::BTreeSet::new(),
            rearms: 0,
            rearms_truncated: 0,
            rearm_cap,
            deadline_counter: 0,
            finite_deadlines,
            overlay,
        }
    }

    /// Total consume calls (counting repeats of the same id).
    pub fn total_consumes(&self) -> u64 {
        self.consumed.values().map(|&c| u64::from(c)).sum()
    }

    /// Whether any eval id was consumed more than once.
    pub fn double_consumed(&self) -> Option<u64> {
        self.consumed
            .iter()
            .find(|(_, &c)| c > 1)
            .map(|(&id, _)| id)
    }

    fn push(&mut self, event: Pending) {
        self.pending.push(PendingAt {
            event,
            birth: self.now as u64,
        });
    }

    /// Deliver the pending event at `index`: advance logical time and
    /// return the [`borg_protocol::Event`] to feed the engine. Respawn
    /// notifications for a delivered death are created here, so they can
    /// never overtake the death itself.
    pub fn deliver(&mut self, index: usize) -> borg_protocol::Event {
        let p = self.pending.swap_remove(index);
        self.now += 1.0;
        let at = self.now;
        match p.event {
            Pending::Result { worker, eval_id } => borg_protocol::Event::ResultArrived {
                worker,
                eval_id,
                at,
            },
            Pending::Deadline {
                eval_id,
                worker,
                bits,
            } => borg_protocol::Event::DeadlineFired {
                eval_id,
                worker,
                deadline_bits: bits,
                at,
            },
            Pending::Heartbeat => borg_protocol::Event::HeartbeatTick { at },
            Pending::Death {
                worker,
                will_respawn,
                lost_eval,
            } => {
                if will_respawn {
                    self.push(Pending::Respawn { worker });
                }
                borg_protocol::Event::WorkerDied {
                    worker,
                    at,
                    will_respawn,
                    lost_eval,
                }
            }
            Pending::Respawn { worker } => {
                self.worker_alive[worker] = true;
                borg_protocol::Event::WorkerRespawned { worker, at }
            }
        }
    }

    /// Canonical 64-bit digest of the transport state (folded into the
    /// engine digest to key the explorer's visited-state memo). Pending
    /// events are hashed as a sorted multiset so creation order — which
    /// the scheduler erases anyway — does not split equivalent states.
    /// `include_births` must be true under a bounded-delay scheduler,
    /// where relative ages change which events are enabled.
    pub fn digest(&self, include_births: bool) -> u64 {
        let min_birth = self.pending.iter().map(|p| p.birth).min().unwrap_or(0);
        let mut encoded: Vec<(u64, u64, u64, u64)> = self
            .pending
            .iter()
            .map(|p| {
                let (tag, a, b) = match p.event {
                    Pending::Result { worker, eval_id } => (1u64, worker as u64, eval_id),
                    Pending::Deadline {
                        eval_id,
                        worker,
                        bits,
                    } => (2, worker as u64 ^ (eval_id << 8), bits),
                    Pending::Heartbeat => (3, 0, 0),
                    Pending::Death {
                        worker,
                        will_respawn,
                        lost_eval,
                    } => (
                        4,
                        worker as u64 | (u64::from(will_respawn) << 32),
                        lost_eval.map_or(u64::MAX, |id| id),
                    ),
                    Pending::Respawn { worker } => (5, worker as u64, 0),
                };
                let age = if include_births {
                    p.birth - min_birth
                } else {
                    0
                };
                (tag, a, b, age)
            })
            .collect();
        encoded.sort_unstable();
        let mut h = 0x9E37_79B9_7F4A_7C15u64;
        for (tag, a, b, age) in encoded {
            h = mix(h ^ tag);
            h = mix(h ^ a);
            h = mix(h ^ b);
            h = mix(h ^ age);
        }
        h = mix(h ^ (self.now as u64));
        for &alive in &self.worker_alive {
            h = mix(h ^ u64::from(alive));
        }
        for (&id, &count) in &self.consumed {
            h = mix(h ^ id);
            h = mix(h ^ u64::from(count));
        }
        for &id in &self.abandoned {
            h = mix(h ^ id);
        }
        h = mix(h ^ self.absorbed_duplicates);
        h = mix(h ^ self.reissue_dispatches);
        h = mix(h ^ self.drops_injected);
        h = mix(h ^ self.dups_injected);
        h = mix(h ^ self.deaths_injected);
        h = mix(h ^ self.unknown_ids.len() as u64);
        for &id in &self.unknown_ids {
            h = mix(h ^ id);
        }
        h = mix(h ^ u64::from(self.rearms));
        h = mix(h ^ self.deadline_counter);
        h
    }
}

/// SplitMix64 finalizer (same construction as the fault plan's hashing).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Clock for ModelTransport {
    fn now(&self) -> f64 {
        self.now
    }
}

impl Transport for ModelTransport {
    fn dispatch(
        &mut self,
        worker: usize,
        eval_id: u64,
        attempt: u32,
        seq: u64,
        log: &mut FaultLog,
    ) -> f64 {
        self.dispatched.insert(eval_id);
        if attempt > 0 {
            self.reissue_dispatches += 1;
        }
        // Deadlines are armed regardless of the message's fate: the
        // engine watches the dispatch, not the network.
        let deadline = if self.finite_deadlines {
            self.deadline_counter += 1;
            // Far above any logical timestamp the run can reach, and
            // unique per dispatch so staleness checks discriminate.
            1.0e6 + self.deadline_counter as f64
        } else {
            f64::INFINITY
        };
        if deadline.is_finite() {
            self.push(Pending::Deadline {
                eval_id,
                worker,
                bits: deadline.to_bits(),
            });
        }
        // Scripted death: this dispatch strikes the worker down before
        // it can reply. The master only learns of it when the Death
        // event is eventually delivered.
        if let Some(will_respawn) = self.overlay.death_for(worker, seq) {
            self.worker_alive[worker] = false;
            self.deaths_injected += 1;
            log.inject(FaultKind::Crash, worker, eval_id, self.now);
            let lost_eval = if self.overlay.shared_death_notes {
                Some(eval_id)
            } else {
                None
            };
            self.push(Pending::Death {
                worker,
                will_respawn,
                lost_eval,
            });
            return deadline;
        }
        // A dead assigned worker silently swallows new work; the
        // deadline above is what rescues the evaluation.
        if !self.worker_alive[worker] && !self.overlay.shared_pickup {
            return deadline;
        }
        match self.overlay.message_fate(eval_id, attempt) {
            crate::overlay::Fate::Deliver => {
                self.push(Pending::Result { worker, eval_id });
            }
            crate::overlay::Fate::Drop => {
                self.drops_injected += 1;
                log.inject(FaultKind::MessageDrop, worker, eval_id, self.now);
                log.wasted_nfe += 1;
            }
            crate::overlay::Fate::Duplicate => {
                self.dups_injected += 1;
                log.inject(FaultKind::MessageDuplicate, worker, eval_id, self.now);
                self.push(Pending::Result { worker, eval_id });
                self.push(Pending::Result { worker, eval_id });
            }
        }
        deadline
    }

    fn consume(&mut self, _worker: usize, eval_id: u64, _ready_at: f64) -> f64 {
        *self.consumed.entry(eval_id).or_insert(0) += 1;
        self.now
    }

    fn absorb_duplicate(&mut self, _worker: usize, _eval_id: u64, _ready_at: f64) -> f64 {
        self.absorbed_duplicates += 1;
        self.now
    }

    fn ping(&mut self, _worker: usize) -> (f64, f64) {
        (self.now, self.now)
    }

    fn rearm_heartbeat(&mut self, _at: f64) {
        if self.rearms < self.rearm_cap {
            self.rearms += 1;
            self.push(Pending::Heartbeat);
        } else {
            self.rearms_truncated += 1;
        }
    }

    fn abandon(&mut self, eval_id: u64) {
        self.abandoned.insert(eval_id);
    }

    fn unknown_result(&mut self, _worker: usize, eval_id: u64) {
        self.unknown_ids.insert(eval_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overlay::Overlay;

    #[test]
    fn dispatch_arms_unique_deadlines_and_results() {
        let mut t = ModelTransport::new(2, true, 0, Overlay::quiet());
        let mut log = FaultLog::default();
        let d0 = t.dispatch(0, 0, 0, 0, &mut log);
        let d1 = t.dispatch(1, 1, 0, 0, &mut log);
        assert!(d0.is_finite() && d1.is_finite() && d0 != d1);
        assert_eq!(t.pending.len(), 4); // 2 deadlines + 2 results
    }

    #[test]
    fn delivery_advances_logical_time() {
        let mut t = ModelTransport::new(1, false, 0, Overlay::quiet());
        let mut log = FaultLog::default();
        t.dispatch(0, 0, 0, 0, &mut log);
        assert_eq!(t.pending.len(), 1);
        let ev = t.deliver(0);
        assert!(matches!(
            ev,
            borg_protocol::Event::ResultArrived { eval_id: 0, .. }
        ));
        assert_eq!(t.now, 1.0);
        assert!(t.pending.is_empty());
    }

    #[test]
    fn digest_ignores_pending_creation_order() {
        let mk = |swap: bool| {
            let mut t = ModelTransport::new(2, false, 0, Overlay::quiet());
            let mut log = FaultLog::default();
            if swap {
                t.dispatch(1, 1, 0, 0, &mut log);
                t.dispatch(0, 0, 0, 0, &mut log);
            } else {
                t.dispatch(0, 0, 0, 0, &mut log);
                t.dispatch(1, 1, 0, 0, &mut log);
            }
            t.digest(false)
        };
        assert_eq!(mk(false), mk(true));
    }

    #[test]
    fn respawn_is_created_only_when_death_is_delivered() {
        let mut t = ModelTransport::new(1, false, 0, Overlay::death(0, 0, true));
        let mut log = FaultLog::default();
        t.dispatch(0, 0, 0, 0, &mut log);
        assert!(matches!(
            t.pending.as_slice(),
            [PendingAt {
                event: Pending::Death { .. },
                ..
            }]
        ));
        let ev = t.deliver(0);
        assert!(matches!(ev, borg_protocol::Event::WorkerDied { .. }));
        assert!(matches!(
            t.pending.as_slice(),
            [PendingAt {
                event: Pending::Respawn { worker: 0 },
                ..
            }]
        ));
    }
}
