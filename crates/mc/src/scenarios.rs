//! The scenario catalogue: every protocol shape the workspace ships,
//! each under the fault overlay that stresses its recovery path.
//!
//! Budgets are deliberately small — the schedule space grows as
//! `O(branching^depth)` and the point is exhaustiveness at small scale,
//! not statistical coverage at large scale (the DES sweeps own that).
//! Recovery scenarios use a bounded-delay window plus a high reissue
//! cap: under unbounded reordering a deadline can race its own result
//! to the abandonment cap (a legitimate outcome change, not a bug), so
//! the window bounds how long a result can be postponed and the cap is
//! set beyond what any bounded-delay cascade can reach — making
//! [`Strictness::ConsumedSet`] a theorem again. The cap itself is
//! exercised by [`abandonment_cap`], which explores the cascade freely
//! under the weaker [`Strictness::WorkConservation`] bar.

use crate::explore::{Scenario, Strictness};
use crate::overlay::Overlay;
use borg_protocol::{EngineConfig, RecoveryPolicy};

/// Deadline-based recovery without the heartbeat sweep. The cap of 16
/// is unreachable under the delay windows used below (each cascade step
/// needs the freshest deadline delivered while the eval's own results
/// stay postponed, and the window forbids postponing them that long).
fn deadline_policy() -> RecoveryPolicy {
    RecoveryPolicy {
        timeout: 5.0,
        heartbeat_interval: f64::INFINITY,
        max_reissues: 16,
    }
}

/// Deadline recovery plus the liveness sweep (death scenarios).
fn sweep_policy() -> RecoveryPolicy {
    RecoveryPolicy {
        timeout: 5.0,
        heartbeat_interval: 1.0,
        max_reissues: 16,
    }
}

/// The quick subset run by `cargo xtask mc --smoke` and CI: fault-free
/// pipeline, duplicate absorption, and the generational barrier.
pub fn smoke() -> Vec<Scenario> {
    vec![fault_free_async(), duplicates(), sync_generational()]
}

/// The full catalogue.
pub fn full() -> Vec<Scenario> {
    vec![
        fault_free_async(),
        duplicates(),
        sync_generational(),
        drops_reissue(),
        worker_death(),
        worker_respawn(),
        shared_pool_death(),
        seeded_faults(),
        abandonment_cap(),
    ]
}

/// The paper's fault-free asynchronous pipeline: three workers race
/// their results; completion count must be order-independent (the
/// identity of the in-flight tail is legitimately order-dependent under
/// eager dispatch, hence the count-level bar).
pub fn fault_free_async() -> Scenario {
    Scenario {
        name: "fault_free_async",
        config: EngineConfig::fault_free_async(3, 8),
        overlay: Overlay::quiet(),
        strictness: Strictness::CompletedCount,
        delay_window: None,
        rearm_cap: 0,
        max_depth: 64,
        sabotage: false,
    }
}

/// Duplicated result messages racing their originals: both orders of
/// (original, duplicate) must converge to the same consumed set.
pub fn duplicates() -> Scenario {
    Scenario {
        name: "duplicates",
        config: EngineConfig::fault_tolerant_async(2, 5, RecoveryPolicy::disabled()),
        overlay: Overlay::duplicates(&[(0, 0), (3, 0)]),
        strictness: Strictness::ConsumedSet,
        delay_window: None,
        rearm_cap: 0,
        max_depth: 48,
        sabotage: false,
    }
}

/// The generational barrier: within a generation arrivals commute
/// perfectly, and the barrier itself must not depend on who arrives
/// last.
pub fn sync_generational() -> Scenario {
    Scenario {
        name: "sync_generational",
        config: EngineConfig::sync_generational(3, 5),
        overlay: Overlay::quiet(),
        strictness: Strictness::ConsumedSet,
        delay_window: None,
        rearm_cap: 0,
        max_depth: 32,
        sabotage: false,
    }
}

/// A dropped result message: the deadline must rescue the evaluation on
/// every schedule, including those where other deadlines fire spuriously
/// while their results are still in flight (reissue races the original).
pub fn drops_reissue() -> Scenario {
    Scenario {
        name: "drops_reissue",
        config: EngineConfig::fault_tolerant_async(2, 4, deadline_policy()),
        overlay: Overlay::drops(&[(1, 0)]),
        strictness: Strictness::ConsumedSet,
        delay_window: Some(3),
        rearm_cap: 0,
        max_depth: 64,
        sabotage: false,
    }
}

/// A worker dies silently on its first assignment and never returns;
/// ping and heartbeat must converge on quarantining it and the lost
/// evaluation must be reissued elsewhere, whichever order the death
/// note, deadlines, and sweeps are delivered in.
pub fn worker_death() -> Scenario {
    Scenario {
        name: "worker_death",
        config: EngineConfig::fault_tolerant_async(2, 3, sweep_policy()),
        overlay: Overlay::death(1, 0, false),
        strictness: Strictness::ConsumedSet,
        delay_window: Some(3),
        rearm_cap: 3,
        max_depth: 64,
        sabotage: false,
    }
}

/// Same death, but the worker respawns: the rejoining worker must fold
/// back into the pool without double-dispatching or losing work.
pub fn worker_respawn() -> Scenario {
    Scenario {
        name: "worker_respawn",
        config: EngineConfig::fault_tolerant_async(2, 3, sweep_policy()),
        overlay: Overlay::death(1, 0, true),
        strictness: Strictness::ConsumedSet,
        delay_window: Some(3),
        rearm_cap: 3,
        max_depth: 64,
        sabotage: false,
    }
}

/// Death on a shared pull queue: the out-of-band death note names the
/// lost evaluation and any live thread picks up the reissue.
pub fn shared_pool_death() -> Scenario {
    Scenario {
        name: "shared_pool_death",
        config: EngineConfig::shared_pool_async(2, 3, deadline_policy()),
        overlay: Overlay::death(1, 0, false),
        strictness: Strictness::ConsumedSet,
        delay_window: Some(3),
        rearm_cap: 0,
        max_depth: 64,
        sabotage: false,
    }
}

/// Seeded background drop/duplicate rates (the overlay analogue of
/// `FaultConfig::degraded`): fates hash off `(eval_id, attempt)` so
/// every schedule sees the same faults in a different order.
pub fn seeded_faults() -> Scenario {
    Scenario {
        name: "seeded_faults",
        config: EngineConfig::fault_tolerant_async(2, 4, deadline_policy()),
        overlay: Overlay::seeded(0xB07, 150, 150),
        strictness: Strictness::ConsumedSet,
        delay_window: Some(3),
        rearm_cap: 0,
        max_depth: 72,
        sabotage: false,
    }
}

/// The reissue cap under a free timer adversary: with `max_reissues: 1`
/// and no delay window a deadline can race its own result to
/// abandonment, so *which* ledger an eval id lands on is legitimately
/// schedule-dependent. The bar drops to work conservation — every id
/// accounted for on exactly one ledger, none lost, none counted twice —
/// which this scenario proves holds even at the cap.
pub fn abandonment_cap() -> Scenario {
    Scenario {
        name: "abandonment_cap",
        config: EngineConfig::fault_tolerant_async(
            2,
            2,
            RecoveryPolicy {
                timeout: 5.0,
                heartbeat_interval: f64::INFINITY,
                max_reissues: 1,
            },
        ),
        overlay: Overlay::quiet(),
        strictness: Strictness::WorkConservation,
        delay_window: None,
        rearm_cap: 0,
        max_depth: 48,
        sabotage: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_is_a_subset_of_full() {
        let full_names: Vec<&str> = full().iter().map(|s| s.name).collect();
        for s in smoke() {
            assert!(full_names.contains(&s.name), "{} not in full()", s.name);
        }
    }

    #[test]
    fn catalogue_names_are_unique() {
        let mut names: Vec<&str> = full().iter().map(|s| s.name).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn no_catalogue_scenario_ships_sabotaged() {
        assert!(full().iter().all(|s| !s.sabotage));
    }
}
