//! # borg-parallel
//!
//! Parallel master-slave executors for the Borg MOEA:
//!
//! * [`virtual_exec`] — deterministic **virtual-time** executors that run
//!   the real algorithm inside a discrete-event simulation of the
//!   master-slave topology (the reproduction's experimental arm; scales to
//!   thousands of simulated processors on one machine);
//! * [`threads`] — a **real-thread** asynchronous executor over crossbeam
//!   channels with measured `T_A`/`T_F`/`T_C` (the laptop-scale stand-in
//!   for the paper's MPI deployment);
//! * [`islands`] — the island-model (multi-master) topology named as the
//!   paper's future work (§VII), in virtual time;
//! * [`delayed`] — the paper's controlled-delay evaluation wrapper.
//!
//! ```
//! use borg_core::algorithm::BorgConfig;
//! use borg_models::dist::Dist;
//! use borg_obs::NoopRecorder;
//! use borg_parallel::prelude::*;
//! use borg_problems::dtlz::{Dtlz, DtlzVariant};
//!
//! // Run the real Borg MOEA on 63 simulated workers, deterministically.
//! let problem = Dtlz::new(DtlzVariant::Dtlz2, 3);
//! let cfg = VirtualConfig {
//!     processors: 64,
//!     max_nfe: 2_000,
//!     t_f: Dist::normal_cv(0.01, 0.1),
//!     t_c: Dist::Constant(0.000_006),
//!     t_a: TaMode::Sampled(Dist::Constant(0.000_03)),
//!     seed: 42,
//! };
//! let run = run_virtual_async(
//!     &problem,
//!     BorgConfig::new(3, 0.05),
//!     &cfg,
//!     &NoopRecorder,
//!     |_, _| {},
//! );
//! assert_eq!(run.engine.nfe(), 2_000);
//! assert!(run.outcome.elapsed > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod delayed;
pub mod handshake_model;
pub mod islands;
pub mod sync_nsga2;
pub mod threads;
pub mod virtual_exec;

/// Commonly used items.
pub mod prelude {
    pub use crate::delayed::{precise_delay, DelayedProblem};
    pub use crate::islands::{run_islands, IslandConfig, IslandRunResult};
    pub use crate::sync_nsga2::{run_virtual_sync_nsga2, SyncNsga2Config, SyncNsga2Result};
    pub use crate::threads::{
        estimate_comm_time, run_threaded, run_threaded_observed, run_threaded_traced,
        ThreadedConfig, ThreadedError, ThreadedRunResult,
    };
    pub use crate::virtual_exec::{
        default_recovery_policy, fault_plan_for, run_virtual_async, run_virtual_async_faulty,
        run_virtual_async_faulty_traced, run_virtual_async_faulty_with, run_virtual_serial,
        run_virtual_sync, TaMode, VirtualConfig, VirtualRunResult,
    };
}
