//! Virtual-time master-slave executors running the **real** Borg MOEA.
//!
//! These executors are the reproduction's "experimental arm" (see
//! DESIGN.md §2): the actual algorithm — population, ε-archive, operator
//! adaptation, restarts — runs inside a deterministic discrete-event
//! simulation of the master-slave topology. Evaluation delays `T_F`,
//! message times `T_C` and (optionally) algorithm times `T_A` are sampled
//! from the controlled distributions of the paper's experiment; `T_A` can
//! instead be *measured* from the real wall-clock cost of the engine's
//! produce/consume calls, which reproduces the paper's observation that
//! `T_A` grows with processor count and problem complexity.

use borg_core::algorithm::{BorgConfig, BorgEngine, Candidate};
use borg_core::problem::Problem;
use borg_core::rng::SplitMix64;
use borg_core::solution::Solution;
use borg_desim::fault::{FaultConfig, FaultLog, FaultPlan};
use borg_models::dist::Dist;
use borg_models::queueing::{
    run_async, run_async_faulty, run_async_faulty_traced, run_sync, FaultTolerantHooks,
    MasterSlaveHooks, RecoveryPolicy, RunOutcome,
};
use borg_obs::Recorder;
use borg_protocol::Command;
use rand::rngs::StdRng;
use std::collections::BTreeMap;
use std::time::Instant;

/// How the executor charges master algorithm time `T_A`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TaMode {
    /// Sample from a distribution (like the performance model).
    Sampled(Dist),
    /// Measure the real wall-clock time of the engine's produce/consume
    /// calls and use it as simulated seconds (the "experimental" mode).
    Measured,
}

/// Configuration of a virtual-time parallel run.
#[derive(Debug, Clone)]
pub struct VirtualConfig {
    /// Total processors `P` (one master + `P − 1` workers).
    pub processors: u32,
    /// Function evaluations to perform.
    pub max_nfe: u64,
    /// Evaluation-delay distribution (the paper's controlled `T_F`).
    pub t_f: Dist,
    /// One-way message-time distribution.
    pub t_c: Dist,
    /// Master algorithm-time source.
    pub t_a: TaMode,
    /// Master seed (split into engine / delay streams).
    pub seed: u64,
}

impl VirtualConfig {
    /// The paper's experimental configuration: `T_F ~ Normal(t_f, 0.1 t_f)`,
    /// `T_C = 6 µs` constant, measured `T_A`.
    pub fn paper(processors: u32, max_nfe: u64, t_f_mean: f64, seed: u64) -> Self {
        Self {
            processors,
            max_nfe,
            t_f: Dist::normal_cv(t_f_mean, 0.1),
            t_c: Dist::Constant(0.000_006),
            t_a: TaMode::Measured,
            seed,
        }
    }
}

/// Result of a virtual-time parallel run.
#[derive(Debug)]
pub struct VirtualRunResult {
    /// Queueing outcome (elapsed virtual time, utilization, waits).
    pub outcome: RunOutcome,
    /// Final engine state (archive, statistics).
    pub engine: BorgEngine,
    /// Measured/sampled `T_A` values (seconds), one per master interaction.
    pub ta_samples: Vec<f64>,
    /// Sampled `T_F` values.
    pub tf_samples: Vec<f64>,
    /// Fault-injection/recovery ledger. Empty (default) for the
    /// fault-free executors.
    pub fault_log: FaultLog,
}

/// A produced candidate with its eagerly computed objectives/constraints,
/// awaiting its virtual evaluation delay.
type PendingResult = Option<(Candidate, Vec<f64>, Vec<f64>)>;

/// The hooks wiring a [`BorgEngine`] + [`Problem`] into the queueing engine.
struct BorgHooks<'p, P: Problem + ?Sized, F> {
    engine: BorgEngine,
    problem: &'p P,
    pending: Vec<PendingResult>,
    t_f: Dist,
    t_c: Dist,
    t_a: TaMode,
    rng: StdRng,
    ta_samples: Vec<f64>,
    tf_samples: Vec<f64>,
    objs_buf: Vec<f64>,
    cons_buf: Vec<f64>,
    observer: F,
    /// In `Sampled` mode the per-interaction `T_A` is charged once, on
    /// consume (matching the paper's `hold(T_C + T_A + T_C)` and the
    /// performance model); only the *initial* productions draw their own
    /// sample. `Measured` mode charges each call's real cost.
    seeded: Vec<bool>,
    /// `Measured` mode: the consume that just pushed a sample expects the
    /// immediately-following produce (same master hold) to merge into it,
    /// so `ta_samples` holds *per-interaction* sums — the quantity the
    /// paper's models call `T_A`.
    merge_next_produce: bool,
}

impl<'p, P: Problem + ?Sized, F: FnMut(f64, &BorgEngine)> BorgHooks<'p, P, F> {
    fn new(problem: &'p P, config: &VirtualConfig, borg: BorgConfig, observer: F) -> Self {
        let mut split = SplitMix64::new(config.seed);
        let engine_seed = split.derive_seed("virtual-engine");
        let rng = split.derive("virtual-delays");
        let workers = (config.processors - 1) as usize;
        Self {
            engine: BorgEngine::new(problem, borg, engine_seed),
            problem,
            pending: (0..workers + 1).map(|_| None).collect(),
            t_f: config.t_f,
            t_c: config.t_c,
            t_a: config.t_a,
            rng,
            ta_samples: Vec::new(),
            tf_samples: Vec::new(),
            objs_buf: vec![0.0; problem.num_objectives()],
            cons_buf: vec![0.0; problem.num_constraints()],
            observer,
            seeded: vec![false; workers + 1],
            merge_next_produce: false,
        }
    }

    fn charge_ta(&mut self, real: f64) -> f64 {
        let t = match self.t_a {
            TaMode::Measured => real,
            TaMode::Sampled(d) => d.sample(&mut self.rng),
        };
        self.ta_samples.push(t);
        t
    }
}

impl<'p, P: Problem + ?Sized, F: FnMut(f64, &BorgEngine)> MasterSlaveHooks for BorgHooks<'p, P, F> {
    fn produce(&mut self, worker: usize, _now: f64) -> f64 {
        let start = Instant::now();
        let candidate = self.engine.produce();
        let real = start.elapsed().as_secs_f64();
        // The evaluation itself runs eagerly (we are single-threaded); its
        // *virtual* duration is the sampled T_F charged in
        // `evaluation_time`, matching the paper's controlled delays.
        self.problem
            .evaluate(&candidate.variables, &mut self.objs_buf, &mut self.cons_buf);
        self.pending[worker] = Some((candidate, self.objs_buf.clone(), self.cons_buf.clone()));
        match self.t_a {
            TaMode::Measured => {
                if self.merge_next_produce {
                    // Same master hold as the preceding consume: fold into
                    // that interaction's sample.
                    self.merge_next_produce = false;
                    if let Some(last) = self.ta_samples.last_mut() {
                        *last += real;
                    }
                    real
                } else {
                    self.ta_samples.push(real);
                    real
                }
            }
            TaMode::Sampled(_) => {
                // Sampled T_A is per *interaction* and charged on consume;
                // only the initial seeding production draws its own sample.
                if worker < self.seeded.len() && !self.seeded[worker] {
                    self.seeded[worker] = true;
                    self.charge_ta(real)
                } else {
                    0.0
                }
            }
        }
    }

    fn evaluation_time(&mut self, _worker: usize) -> f64 {
        let t = self.t_f.sample(&mut self.rng);
        self.tf_samples.push(t);
        t
    }

    fn consume(&mut self, worker: usize, now: f64) -> f64 {
        // The queueing engine only issues consume() after the matching
        // produce(); an empty slot means the simulation itself is corrupted
        // and panicking immediately is the correct response.
        let (candidate, objs, cons) = self.pending[worker]
            .take() // borg-lint: allow(BORG-L001)
            .expect("consume without a pending result");
        let start = Instant::now();
        let solution: Solution = self.engine.make_solution(candidate, objs, cons);
        self.engine.consume(solution);
        let real = start.elapsed().as_secs_f64();
        (self.observer)(now, &self.engine);
        let charged = self.charge_ta(real);
        if matches!(self.t_a, TaMode::Measured) {
            self.merge_next_produce = true;
        }
        charged
    }

    fn comm_time(&mut self) -> f64 {
        self.t_c.sample(&mut self.rng)
    }
}

/// Runs the asynchronous master-slave Borg MOEA in virtual time.
///
/// `observer` fires after every consumed evaluation with the current
/// virtual time and engine state (use it for hypervolume trajectories).
pub fn run_virtual_async<P, F, R>(
    problem: &P,
    borg: BorgConfig,
    config: &VirtualConfig,
    rec: &R,
    observer: F,
) -> VirtualRunResult
where
    P: Problem + ?Sized,
    F: FnMut(f64, &BorgEngine),
    R: Recorder + ?Sized,
{
    assert!(
        config.processors >= 2,
        "need a master and at least one worker"
    );
    let workers = (config.processors - 1) as usize;
    let mut hooks = BorgHooks::new(problem, config, borg, observer);
    let outcome = run_async(&mut hooks, workers, config.max_nfe, rec);
    VirtualRunResult {
        outcome,
        engine: hooks.engine,
        ta_samples: hooks.ta_samples,
        tf_samples: hooks.tf_samples,
        fault_log: FaultLog::default(),
    }
}

/// Runs a *generational synchronous* master-slave Borg MOEA in virtual
/// time (the Cantú-Paz topology used for comparison in §VI-B).
pub fn run_virtual_sync<P, F, R>(
    problem: &P,
    borg: BorgConfig,
    config: &VirtualConfig,
    rec: &R,
    observer: F,
) -> VirtualRunResult
where
    P: Problem + ?Sized,
    F: FnMut(f64, &BorgEngine),
    R: Recorder + ?Sized,
{
    assert!(config.processors >= 2);
    let workers = (config.processors - 1) as usize;
    let mut hooks = BorgHooks::new(problem, config, borg, observer);
    let outcome = run_sync(&mut hooks, workers, config.max_nfe, rec);
    VirtualRunResult {
        outcome,
        engine: hooks.engine,
        ta_samples: hooks.ta_samples,
        tf_samples: hooks.tf_samples,
        fault_log: FaultLog::default(),
    }
}

/// Runs the Borg MOEA *serially* while charging the same virtual clock
/// (`T_S = Σ (T_F + T_A)`), providing the baseline for hypervolume-based
/// speedup (`S_P^h`, §VI-A).
pub fn run_virtual_serial<P, F>(
    problem: &P,
    borg: BorgConfig,
    config: &VirtualConfig,
    mut observer: F,
) -> VirtualRunResult
where
    P: Problem + ?Sized,
    F: FnMut(f64, &BorgEngine),
{
    let mut split = SplitMix64::new(config.seed);
    let engine_seed = split.derive_seed("virtual-engine");
    let mut rng = split.derive("virtual-delays");
    let mut engine = BorgEngine::new(problem, borg, engine_seed);
    let mut clock = 0.0f64;
    let mut ta_samples = Vec::new();
    let mut tf_samples = Vec::new();
    let mut objs = vec![0.0; problem.num_objectives()];
    let mut cons = vec![0.0; problem.num_constraints()];

    while engine.nfe() < config.max_nfe {
        let t0 = Instant::now();
        let cand = engine.produce();
        let produce_real = t0.elapsed().as_secs_f64();
        problem.evaluate(&cand.variables, &mut objs, &mut cons);
        let sol = engine.make_solution(cand, objs.clone(), cons.clone());
        let tf = config.t_f.sample(&mut rng);
        tf_samples.push(tf);
        clock += tf;
        let t1 = Instant::now();
        engine.consume(sol);
        let consume_real = t1.elapsed().as_secs_f64();
        let ta = match config.t_a {
            TaMode::Measured => produce_real + consume_real,
            TaMode::Sampled(d) => d.sample(&mut rng),
        };
        ta_samples.push(ta);
        clock += ta;
        observer(clock, &engine);
    }

    let completed = engine.nfe();
    VirtualRunResult {
        outcome: RunOutcome {
            elapsed: clock,
            completed,
            master_busy: clock,
            master_utilization: 1.0,
            mean_wait: 0.0,
            max_wait: 0.0,
            max_queue: 0,
            wasted_nfe: 0,
        },
        engine,
        ta_samples,
        tf_samples,
        fault_log: FaultLog::default(),
    }
}

/// The hooks wiring a [`BorgEngine`] + [`Problem`] into the
/// *fault-tolerant* queueing engine. Work items are keyed by evaluation
/// id so a reissued evaluation re-sends the same candidate and the
/// first-arriving copy wins.
struct FtBorgHooks<'p, P: Problem + ?Sized, F> {
    engine: BorgEngine,
    problem: &'p P,
    pending: BTreeMap<u64, (Candidate, Vec<f64>, Vec<f64>)>,
    t_f: Dist,
    t_c: Dist,
    t_a: TaMode,
    rng: StdRng,
    ta_samples: Vec<f64>,
    tf_samples: Vec<f64>,
    objs_buf: Vec<f64>,
    cons_buf: Vec<f64>,
    observer: F,
    /// Same `T_A` charging convention as [`BorgHooks`]: in `Sampled` mode
    /// each *consume* draws the per-interaction sample and the initial
    /// per-worker seeding productions draw their own; in `Measured` mode
    /// every call charges its real wall-clock cost (reissues are free —
    /// the candidate already exists).
    initial_productions: usize,
    workers: usize,
    merge_next_produce: bool,
}

impl<'p, P: Problem + ?Sized, F: FnMut(f64, &BorgEngine)> FtBorgHooks<'p, P, F> {
    fn new(problem: &'p P, config: &VirtualConfig, borg: BorgConfig, observer: F) -> Self {
        let mut split = SplitMix64::new(config.seed);
        let engine_seed = split.derive_seed("virtual-engine");
        let rng = split.derive("virtual-delays");
        let workers = (config.processors - 1) as usize;
        Self {
            engine: BorgEngine::new(problem, borg, engine_seed),
            problem,
            pending: BTreeMap::new(),
            t_f: config.t_f,
            t_c: config.t_c,
            t_a: config.t_a,
            rng,
            ta_samples: Vec::new(),
            tf_samples: Vec::new(),
            objs_buf: vec![0.0; problem.num_objectives()],
            cons_buf: vec![0.0; problem.num_constraints()],
            observer,
            initial_productions: 0,
            workers,
            merge_next_produce: false,
        }
    }

    fn charge_ta(&mut self, real: f64) -> f64 {
        let t = match self.t_a {
            TaMode::Measured => real,
            TaMode::Sampled(d) => d.sample(&mut self.rng),
        };
        self.ta_samples.push(t);
        t
    }
}

impl<'p, P: Problem + ?Sized, F: FnMut(f64, &BorgEngine)> FaultTolerantHooks
    for FtBorgHooks<'p, P, F>
{
    fn produce(&mut self, _worker: usize, eval_id: u64, _now: f64) -> f64 {
        let start = Instant::now();
        let candidate = self.engine.produce();
        let real = start.elapsed().as_secs_f64();
        // Evaluate eagerly (single-threaded); the virtual duration is the
        // T_F sample charged in `evaluation_time`.
        self.problem
            .evaluate(&candidate.variables, &mut self.objs_buf, &mut self.cons_buf);
        self.pending.insert(
            eval_id,
            (candidate, self.objs_buf.clone(), self.cons_buf.clone()),
        );
        match self.t_a {
            TaMode::Measured => {
                if self.merge_next_produce {
                    self.merge_next_produce = false;
                    if let Some(last) = self.ta_samples.last_mut() {
                        *last += real;
                    }
                    real
                } else {
                    self.ta_samples.push(real);
                    real
                }
            }
            TaMode::Sampled(_) => {
                if self.initial_productions < self.workers {
                    self.initial_productions += 1;
                    self.charge_ta(real)
                } else {
                    0.0
                }
            }
        }
    }

    fn evaluation_time(&mut self, _worker: usize, _eval_id: u64) -> f64 {
        let t = self.t_f.sample(&mut self.rng);
        self.tf_samples.push(t);
        t
    }

    fn consume(&mut self, _worker: usize, eval_id: u64, now: f64) -> f64 {
        // The fault-tolerant engine consumes each evaluation id exactly
        // once (duplicates are suppressed upstream); a missing entry means
        // the simulation itself is corrupted.
        let (candidate, objs, cons) = self
            .pending
            .remove(&eval_id) // borg-lint: allow(BORG-L001)
            .expect("consume without a pending result");
        let start = Instant::now();
        let solution: Solution = self.engine.make_solution(candidate, objs, cons);
        self.engine.consume(solution);
        let real = start.elapsed().as_secs_f64();
        (self.observer)(now, &self.engine);
        let charged = self.charge_ta(real);
        if matches!(self.t_a, TaMode::Measured) {
            self.merge_next_produce = true;
        }
        charged
    }

    fn comm_time(&mut self) -> f64 {
        self.t_c.sample(&mut self.rng)
    }
}

/// Derives the [`FaultPlan`] a faulty virtual run with this configuration
/// will use (exposed so replay checks can inspect the plan).
pub fn fault_plan_for(config: &VirtualConfig, faults: &FaultConfig) -> FaultPlan {
    let plan_seed = SplitMix64::new(config.seed).derive_seed("fault-plan");
    FaultPlan::new(
        faults.clone(),
        (config.processors - 1) as usize,
        config.max_nfe,
        plan_seed,
    )
}

/// The default recovery policy for a virtual configuration: timeout
/// `k · E[T_F]` with `k = 4` (comfortably above the `straggler_factor`
/// would require a larger `k`; callers needing that pass their own
/// [`RecoveryPolicy`] to [`run_virtual_async_faulty_with`]).
pub fn default_recovery_policy(config: &VirtualConfig) -> RecoveryPolicy {
    RecoveryPolicy::from_expected_eval_time(config.t_f.mean(), 4.0)
}

/// Runs the asynchronous master-slave Borg MOEA in virtual time under
/// fault injection, with the default recovery policy.
///
/// The master survives worker crashes, hangs, stragglers and message
/// drop/duplication per `faults`: timed-out evaluations are reissued to
/// live workers, dead workers are quarantined (and optionally respawned),
/// duplicate results are suppressed by evaluation id. The full ledger is
/// returned in [`VirtualRunResult::fault_log`].
pub fn run_virtual_async_faulty<P, F, R>(
    problem: &P,
    borg: BorgConfig,
    config: &VirtualConfig,
    faults: &FaultConfig,
    rec: &R,
    observer: F,
) -> VirtualRunResult
where
    P: Problem + ?Sized,
    F: FnMut(f64, &BorgEngine),
    R: Recorder + ?Sized,
{
    let policy = default_recovery_policy(config);
    run_virtual_async_faulty_with(problem, borg, config, faults, policy, rec, observer)
}

/// [`run_virtual_async_faulty`] with an explicit [`RecoveryPolicy`].
pub fn run_virtual_async_faulty_with<P, F, R>(
    problem: &P,
    borg: BorgConfig,
    config: &VirtualConfig,
    faults: &FaultConfig,
    policy: RecoveryPolicy,
    rec: &R,
    observer: F,
) -> VirtualRunResult
where
    P: Problem + ?Sized,
    F: FnMut(f64, &BorgEngine),
    R: Recorder + ?Sized,
{
    assert!(
        config.processors >= 2,
        "need a master and at least one worker"
    );
    let workers = (config.processors - 1) as usize;
    let plan = fault_plan_for(config, faults);
    let mut hooks = FtBorgHooks::new(problem, config, borg, observer);
    let faulty = run_async_faulty(&mut hooks, workers, config.max_nfe, &plan, policy, rec);
    VirtualRunResult {
        outcome: faulty.outcome,
        engine: hooks.engine,
        ta_samples: hooks.ta_samples,
        tf_samples: hooks.tf_samples,
        fault_log: faulty.fault_log,
    }
}

/// [`run_virtual_async_faulty_with`] with the protocol engine's command
/// trace enabled: also returns every [`Command`] the shared
/// [`MasterEngine`](borg_protocol::MasterEngine) issued, in decision
/// order. The differential equivalence tests compare this transcript
/// against the performance-model adapter's under identical timing to
/// prove both executors run the same protocol.
pub fn run_virtual_async_faulty_traced<P, F, R>(
    problem: &P,
    borg: BorgConfig,
    config: &VirtualConfig,
    faults: &FaultConfig,
    policy: RecoveryPolicy,
    rec: &R,
    observer: F,
) -> (VirtualRunResult, Vec<Command>)
where
    P: Problem + ?Sized,
    F: FnMut(f64, &BorgEngine),
    R: Recorder + ?Sized,
{
    assert!(
        config.processors >= 2,
        "need a master and at least one worker"
    );
    let workers = (config.processors - 1) as usize;
    let plan = fault_plan_for(config, faults);
    let mut hooks = FtBorgHooks::new(problem, config, borg, observer);
    let (faulty, commands) =
        run_async_faulty_traced(&mut hooks, workers, config.max_nfe, &plan, policy, rec);
    (
        VirtualRunResult {
            outcome: faulty.outcome,
            engine: hooks.engine,
            ta_samples: hooks.ta_samples,
            tf_samples: hooks.tf_samples,
            fault_log: faulty.fault_log,
        },
        commands,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use borg_models::analytical::{async_parallel_time, relative_error, TimingParams};
    use borg_obs::NoopRecorder;
    use borg_problems::dtlz::Dtlz;

    fn borg_cfg() -> BorgConfig {
        BorgConfig::new(5, 0.06)
    }

    fn sampled_config(p: u32, nfe: u64, tf: f64, ta: f64) -> VirtualConfig {
        VirtualConfig {
            processors: p,
            max_nfe: nfe,
            t_f: Dist::Constant(tf),
            t_c: Dist::Constant(0.000_006),
            t_a: TaMode::Sampled(Dist::Constant(ta)),
            seed: 99,
        }
    }

    #[test]
    fn async_run_completes_and_converges() {
        let problem = Dtlz::dtlz2_5();
        let cfg = sampled_config(16, 5_000, 0.01, 0.000_03);
        let mut count = 0u64;
        let result = run_virtual_async(&problem, borg_cfg(), &cfg, &NoopRecorder, |_, _| {
            count += 1;
        });
        assert_eq!(result.outcome.completed, 5_000);
        assert_eq!(count, 5_000);
        assert_eq!(result.engine.nfe(), 5_000);
        assert!(result.engine.archive().len() > 10);
        result.engine.archive().check_invariants().unwrap();
        // ta: one per interaction + seeding; tf: one per dispatched work.
        assert!(result.ta_samples.len() as u64 >= 5_000);
    }

    #[test]
    fn sampled_times_match_analytical_model_below_saturation() {
        let problem = Dtlz::dtlz2_5();
        let cfg = sampled_config(16, 5_000, 0.01, 0.000_03);
        let result = run_virtual_async(&problem, borg_cfg(), &cfg, &NoopRecorder, |_, _| {});
        let t = TimingParams::new(0.01, 0.000_006, 0.000_03);
        let eq2 = async_parallel_time(5_000, 16, t);
        assert!(
            relative_error(result.outcome.elapsed, eq2) < 0.01,
            "virtual {} vs Eq.2 {}",
            result.outcome.elapsed,
            eq2
        );
    }

    #[test]
    fn virtual_async_is_deterministic_with_sampled_ta() {
        let problem = Dtlz::dtlz2_5();
        let cfg = sampled_config(8, 2_000, 0.001, 0.000_03);
        let a = run_virtual_async(&problem, borg_cfg(), &cfg, &NoopRecorder, |_, _| {});
        let b = run_virtual_async(&problem, borg_cfg(), &cfg, &NoopRecorder, |_, _| {});
        assert_eq!(a.outcome.elapsed, b.outcome.elapsed);
        assert_eq!(
            a.engine.archive().objective_vectors(),
            b.engine.archive().objective_vectors()
        );
    }

    #[test]
    fn measured_ta_grows_with_archive_activity() {
        // With TaMode::Measured the early interactions (tiny archive) must
        // be cheaper on average than late ones (big archive + adaptation).
        let problem = Dtlz::dtlz2_5();
        let cfg = VirtualConfig {
            processors: 8,
            max_nfe: 6_000,
            t_f: Dist::Constant(0.001),
            t_c: Dist::Constant(0.000_006),
            t_a: TaMode::Measured,
            seed: 5,
        };
        let result = run_virtual_async(&problem, borg_cfg(), &cfg, &NoopRecorder, |_, _| {});
        let n = result.ta_samples.len();
        let early: f64 = result.ta_samples[..n / 4].iter().sum::<f64>() / (n / 4) as f64;
        let late: f64 = result.ta_samples[3 * n / 4..].iter().sum::<f64>() / (n - 3 * n / 4) as f64;
        assert!(early > 0.0 && late > 0.0);
        // Not asserting a strict ordering (wall clock is noisy) but the
        // samples must be in a sane microsecond-ish range.
        assert!(result.ta_samples.iter().all(|&t| t < 0.1));
    }

    #[test]
    fn serial_baseline_charges_tf_plus_ta() {
        let problem = Dtlz::dtlz2_5();
        let cfg = sampled_config(2, 3_000, 0.01, 0.000_05);
        let result = run_virtual_serial(&problem, borg_cfg(), &cfg, |_, _| {});
        let expect = 3_000.0 * (0.01 + 0.000_05);
        assert!(relative_error(result.outcome.elapsed, expect) < 1e-9);
        assert_eq!(result.engine.nfe(), 3_000);
    }

    #[test]
    fn parallel_beats_serial_on_virtual_clock() {
        let problem = Dtlz::dtlz2_5();
        let cfg = sampled_config(16, 4_000, 0.01, 0.000_03);
        let par = run_virtual_async(&problem, borg_cfg(), &cfg, &NoopRecorder, |_, _| {});
        let ser = run_virtual_serial(&problem, borg_cfg(), &cfg, |_, _| {});
        let speedup = ser.outcome.elapsed / par.outcome.elapsed;
        assert!(speedup > 10.0, "speedup = {speedup}");
    }

    #[test]
    fn sync_executor_runs_generationally() {
        let problem = Dtlz::dtlz2_5();
        let cfg = sampled_config(8, 2_000, 0.01, 0.000_03);
        let result = run_virtual_sync(&problem, borg_cfg(), &cfg, &NoopRecorder, |_, _| {});
        assert!(result.outcome.completed >= 2_000);
        assert!(result.engine.archive().len() > 5);
    }

    #[test]
    fn faulty_run_with_crashes_and_loss_completes_max_nfe() {
        // The acceptance scenario: crash rate 0.1, message loss 0.01,
        // fixed seed — the run must still complete its full budget.
        let problem = Dtlz::dtlz2_5();
        let cfg = sampled_config(16, 3_000, 0.01, 0.000_03);
        let faults = FaultConfig::degraded(0.1);
        let result = run_virtual_async_faulty(
            &problem,
            borg_cfg(),
            &cfg,
            &faults,
            &NoopRecorder,
            |_, _| {},
        );
        assert_eq!(result.outcome.completed, 3_000);
        assert_eq!(result.engine.nfe(), 3_000);
        assert!(result.fault_log.all_recovered());
        assert_eq!(result.outcome.wasted_nfe, result.fault_log.wasted_nfe);
        result.engine.archive().check_invariants().unwrap();
    }

    #[test]
    fn fault_plan_replay_is_bit_identical() {
        // Same seed ⇒ identical FaultLog and final archive, bit for bit.
        let problem = Dtlz::dtlz2_5();
        let cfg = sampled_config(12, 2_000, 0.008, 0.000_03);
        let faults = FaultConfig {
            crash_rate: 0.25,
            straggler_rate: 0.02,
            drop_rate: 0.02,
            duplicate_rate: 0.02,
            respawn_after: Some(0.5),
            ..FaultConfig::default()
        };
        let run = || {
            run_virtual_async_faulty(
                &problem,
                borg_cfg(),
                &cfg,
                &faults,
                &NoopRecorder,
                |_, _| {},
            )
        };
        let a = run();
        let b = run();
        assert!(a.fault_log.injected() > 0, "scenario should inject faults");
        assert_eq!(a.fault_log, b.fault_log);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(
            a.engine.archive().objective_vectors(),
            b.engine.archive().objective_vectors()
        );
    }

    #[test]
    fn kill_half_the_workers_mid_run_still_completes() {
        // Forced crashes on half the pool, early in the run, no respawn:
        // the surviving workers absorb the reissues and finish the budget.
        let problem = Dtlz::dtlz2_5();
        let cfg = sampled_config(9, 2_000, 0.01, 0.000_03);
        let faults = FaultConfig {
            forced_crashes: (0..4)
                .map(|w| borg_desim::fault::ForcedCrash {
                    worker: w,
                    after_dispatches: 10 + w as u64,
                })
                .collect(),
            ..FaultConfig::default()
        };
        let result = run_virtual_async_faulty(
            &problem,
            borg_cfg(),
            &cfg,
            &faults,
            &NoopRecorder,
            |_, _| {},
        );
        assert_eq!(result.outcome.completed, 2_000);
        assert_eq!(result.engine.nfe(), 2_000);
        assert_eq!(
            result
                .fault_log
                .injected_of(borg_desim::fault::FaultKind::Crash),
            4
        );
        assert!(result.fault_log.all_recovered());
        assert!(result.fault_log.deaths_detected >= 4);
    }

    #[test]
    fn quiet_faulty_run_matches_fault_free_elapsed_closely() {
        let problem = Dtlz::dtlz2_5();
        let cfg = sampled_config(8, 2_000, 0.01, 0.000_03);
        let base = run_virtual_async(&problem, borg_cfg(), &cfg, &NoopRecorder, |_, _| {});
        let quiet = run_virtual_async_faulty(
            &problem,
            borg_cfg(),
            &cfg,
            &FaultConfig::default(),
            &NoopRecorder,
            |_, _| {},
        );
        assert_eq!(quiet.fault_log.injected(), 0);
        assert_eq!(quiet.outcome.wasted_nfe, 0);
        assert!(
            relative_error(quiet.outcome.elapsed, base.outcome.elapsed) < 0.01,
            "quiet {} vs base {}",
            quiet.outcome.elapsed,
            base.outcome.elapsed
        );
    }

    #[test]
    fn observer_sees_monotone_time_and_nfe() {
        let problem = Dtlz::dtlz2_5();
        let cfg = sampled_config(4, 1_000, 0.005, 0.000_02);
        let mut last_t = -1.0;
        let mut last_nfe = 0;
        run_virtual_async(&problem, borg_cfg(), &cfg, &NoopRecorder, |t, e| {
            assert!(t >= last_t, "time went backwards");
            assert!(e.nfe() > last_nfe || last_nfe == 0);
            last_t = t;
            last_nfe = e.nfe();
        });
        assert_eq!(last_nfe, 1_000);
    }
}
