//! NSGA-II under the virtual-time *synchronous* master-slave topology —
//! the concrete version of Cantú-Paz's model (Eq. 6) with a real
//! generational algorithm behind it.
//!
//! Eq. 6 assumes `T_A^sync ≈ P · T_A`: the master processes the whole
//! generation at once, so its per-generation algorithm time scales with
//! the population (= processor) count. Running real NSGA-II generations
//! under measured time lets us check that claim directly: the
//! non-dominated sort is O(M N²), i.e. *super*-linear in the population —
//! the synchronous topology is even worse than Eq. 6 assumes.

use borg_core::nsga2::{Nsga2Config, Nsga2Engine};
use borg_core::problem::Problem;
use borg_core::rng::SplitMix64;
use borg_core::solution::Solution;
use borg_models::dist::Dist;
use std::time::Instant;

/// Configuration of a synchronous NSGA-II run.
#[derive(Debug, Clone)]
pub struct SyncNsga2Config {
    /// Total processors `P` (one master + `P − 1` workers); the NSGA-II
    /// population size is set to `P` (each node evaluates one offspring
    /// per generation, the master included — Fig. 1's layout).
    pub processors: u32,
    /// Evaluations to perform (rounded up to whole generations).
    pub max_nfe: u64,
    /// Evaluation-delay distribution.
    pub t_f: Dist,
    /// One-way message-time distribution.
    pub t_c: Dist,
    /// Seed.
    pub seed: u64,
}

/// Result of a synchronous NSGA-II run.
#[derive(Debug)]
pub struct SyncNsga2Result {
    /// Virtual elapsed time.
    pub elapsed: f64,
    /// Final engine.
    pub engine: Nsga2Engine,
    /// Measured per-generation master algorithm time `T_A^sync`
    /// (production + environmental selection), in seconds.
    pub ta_sync_samples: Vec<f64>,
}

/// Runs generational NSGA-II on the synchronous virtual topology.
///
/// Per generation: the master produces `P` offspring and ships `P − 1`
/// serially (`T_C` each), evaluates one itself, waits for the slowest
/// worker, receives serially, then runs environmental selection — whose
/// *real measured cost* is charged as `T_A^sync`.
pub fn run_virtual_sync_nsga2<P: Problem + ?Sized>(
    problem: &P,
    config: &SyncNsga2Config,
) -> SyncNsga2Result {
    assert!(config.processors >= 2);
    let p = config.processors as usize;
    let mut split = SplitMix64::new(config.seed);
    let engine_seed = split.derive_seed("sync-nsga2");
    let mut rng = split.derive("sync-nsga2-delays");
    let mut engine = Nsga2Engine::new(
        problem,
        Nsga2Config {
            population_size: p,
            ..Nsga2Config::default()
        },
        engine_seed,
    );

    let mut objs = vec![0.0; problem.num_objectives()];
    let mut cons = vec![0.0; problem.num_constraints()];
    let mut now = 0.0f64;
    let mut ta_sync_samples = Vec::new();

    while engine.nfe() < config.max_nfe {
        // Master produces the generation (part of T_A^sync).
        let t0 = Instant::now();
        let candidates = engine.produce_generation();
        let mut ta_sync = t0.elapsed().as_secs_f64();

        // Ship P − 1 offspring serially; the master evaluates the last.
        let mut finish = 0.0f64;
        for _ in 0..(p - 1) {
            now += config.t_c.sample(&mut rng);
            let tf = config.t_f.sample(&mut rng);
            finish = finish.max(now + tf);
        }
        let tf_master = config.t_f.sample(&mut rng);
        finish = finish.max(now + tf_master);
        now = finish;
        // Serial receives.
        for _ in 0..(p - 1) {
            now += config.t_c.sample(&mut rng);
        }

        // Evaluate (eagerly, real math) and run environmental selection
        // under the wall clock.
        let t1 = Instant::now();
        let offspring: Vec<Solution> = candidates
            .into_iter()
            .map(|vars| {
                problem.evaluate(&vars, &mut objs, &mut cons);
                Solution::from_parts(vars, objs.clone(), cons.clone())
            })
            .collect();
        engine.consume_generation(offspring);
        ta_sync += t1.elapsed().as_secs_f64();
        now += ta_sync;
        ta_sync_samples.push(ta_sync);
    }

    SyncNsga2Result {
        elapsed: now,
        engine,
        ta_sync_samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use borg_problems::dtlz::Dtlz;

    fn config(p: u32, nfe: u64) -> SyncNsga2Config {
        SyncNsga2Config {
            processors: p,
            max_nfe: nfe,
            t_f: Dist::Constant(0.01),
            t_c: Dist::Constant(0.000_006),
            seed: 3,
        }
    }

    #[test]
    fn completes_whole_generations() {
        let problem = Dtlz::dtlz2_5();
        let result = run_virtual_sync_nsga2(&problem, &config(32, 1_000));
        assert!(result.engine.nfe() >= 1_000);
        assert_eq!(result.engine.nfe() % 32, 0);
        assert_eq!(
            result.ta_sync_samples.len() as u64,
            result.engine.generations()
        );
        assert!(result.elapsed > 0.0);
    }

    #[test]
    fn ta_sync_grows_superlinearly_with_p() {
        // Eq. 6 assumes T_A^sync ≈ P·T_A; NSGA-II's O(P²) sort makes the
        // real per-generation cost grow at least linearly in P (and the
        // per-offspring share should not shrink).
        let problem = Dtlz::dtlz2_5();
        let mean_ta = |p: u32| {
            let r = run_virtual_sync_nsga2(&problem, &config(p, 2_000.min(p as u64 * 20)));
            r.ta_sync_samples.iter().sum::<f64>() / r.ta_sync_samples.len() as f64
        };
        let small = mean_ta(16);
        let large = mean_ta(128);
        assert!(
            large > 4.0 * small,
            "T_A^sync should grow strongly with P: {small} → {large}"
        );
    }

    #[test]
    fn generation_time_includes_barrier() {
        // With constant T_F = 10 ms, the per-generation elapsed time is at
        // least T_F plus the serialized sends/receives.
        let problem = Dtlz::dtlz2_5();
        let p = 16u32;
        let result = run_virtual_sync_nsga2(&problem, &config(p, 320));
        let gens = result.engine.generations() as f64;
        let per_gen = result.elapsed / gens;
        let floor = 0.01 + 2.0 * (p as f64 - 1.0) * 0.000_006;
        assert!(per_gen >= floor, "per-gen {per_gen} below floor {floor}");
    }

    #[test]
    fn converges_under_the_virtual_topology() {
        let problem = Dtlz::new(borg_problems::dtlz::DtlzVariant::Dtlz2, 2);
        let result = run_virtual_sync_nsga2(&problem, &config(64, 6_400));
        // 2-objective DTLZ2: front on the unit circle.
        let close = result
            .engine
            .front()
            .iter()
            .filter(|s| {
                let r2: f64 = s.objectives().iter().map(|f| f * f).sum();
                (r2 - 1.0).abs() < 0.2
            })
            .count();
        assert!(close > 10, "only {close} front members near the circle");
    }
}
