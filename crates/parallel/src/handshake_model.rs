//! A model-checkable miniature of the master↔worker handshake.
//!
//! The real-thread executor ([`crate::threads`]) rests on two concurrency
//! protocols: the **mailbox** exchange (master posts a work item, a worker
//! takes it, evaluates, posts the result back, the master reaps it) and the
//! **ping-pong** alternation used by `estimate_comm_time`. This module
//! restates both as tiny atomic state machines with *no* other
//! synchronization, so they can be model-checked.
//!
//! Two execution modes share the same model code via the [`sync`] shim:
//!
//! * **Normal build** — `cargo test -p borg-parallel handshake` runs each
//!   model body many times over real `std::thread`s as a stress test.
//! * **Loom build** — with the real [loom](https://crates.io/crates/loom)
//!   crate supplied as a dependency and `RUSTFLAGS="--cfg loom"`, the same
//!   tests run under `loom::model`, which explores every reachable
//!   interleaving of the atomics and proves the invariants (no lost work
//!   items, no double-take, quiescent shutdown) for *all* schedules rather
//!   than the ones the OS happens to produce. The offline build environment
//!   cannot fetch loom, so the dependency is wired through `cfg(loom)`
//!   only; `check-cfg` in the workspace lint table keeps the gate honest.
//!
//! The shim deliberately uses only atomics (no mutexes, no channels): loom
//! models atomics precisely, and the production bug classes this guards —
//! a worker observing a stale slot state, a close racing a post — live in
//! exactly this state machine.

/// Synchronization primitives, swapped wholesale under `--cfg loom`.
pub mod sync {
    #[cfg(loom)]
    pub use loom::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
    #[cfg(loom)]
    pub use loom::sync::Arc;
    #[cfg(loom)]
    pub use loom::thread;

    #[cfg(not(loom))]
    pub use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
    #[cfg(not(loom))]
    pub use std::sync::Arc;
    #[cfg(not(loom))]
    pub use std::thread;
}

use sync::{AtomicU8, AtomicUsize, Ordering};

/// Slot states of a [`Mailbox`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SlotState {
    /// No message; the producer may post.
    Empty = 0,
    /// A message is present; the consumer may take it.
    Full = 1,
    /// The producer hung up; no further messages will arrive.
    Closed = 2,
}

impl SlotState {
    fn from_u8(v: u8) -> Self {
        match v {
            0 => Self::Empty,
            1 => Self::Full,
            _ => Self::Closed,
        }
    }
}

/// A single-producer single-consumer one-slot mailbox over two atomics.
///
/// The payload is published *before* the `Empty → Full` transition and
/// read *after* observing `Full` (acquire/release pairing), which is the
/// invariant loom verifies exhaustively.
#[derive(Debug, Default)]
pub struct Mailbox {
    state: AtomicU8,
    payload: AtomicUsize,
}

impl Mailbox {
    /// An empty mailbox.
    pub fn new() -> Self {
        Self {
            state: AtomicU8::new(SlotState::Empty as u8),
            payload: AtomicUsize::new(0),
        }
    }

    /// Posts a value; returns `false` (value dropped) if the slot is not
    /// empty — the producer must not overwrite an untaken message.
    pub fn post(&self, value: usize) -> bool {
        if SlotState::from_u8(self.state.load(Ordering::Acquire)) != SlotState::Empty {
            return false;
        }
        // Sole producer: between the check above and the release store
        // below only the consumer can touch `state`, and it only moves
        // Full → Empty, never Empty → anything.
        // borg-lint: relaxed-ok(publication ordering comes from the Release store on `state` below)
        self.payload.store(value, Ordering::Relaxed);
        self.state.store(SlotState::Full as u8, Ordering::Release);
        true
    }

    /// Takes the message if one is present.
    pub fn try_take(&self) -> Option<usize> {
        if SlotState::from_u8(self.state.load(Ordering::Acquire)) != SlotState::Full {
            return None;
        }
        // borg-lint: relaxed-ok(the Acquire load of `state` above synchronizes with the producer's Release)
        let value = self.payload.load(Ordering::Relaxed);
        self.state.store(SlotState::Empty as u8, Ordering::Release);
        Some(value)
    }

    /// Blocks (yield-spinning) until a message or close arrives.
    pub fn take_or_closed(&self) -> Option<usize> {
        loop {
            match SlotState::from_u8(self.state.load(Ordering::Acquire)) {
                SlotState::Full => {
                    // borg-lint: relaxed-ok(the Acquire load of `state` above synchronizes with the producer's Release)
                    let value = self.payload.load(Ordering::Relaxed);
                    self.state.store(SlotState::Empty as u8, Ordering::Release);
                    return Some(value);
                }
                SlotState::Closed => return None,
                SlotState::Empty => sync::thread::yield_now(),
            }
        }
    }

    /// Blocks (yield-spinning) until the slot empties, then posts.
    pub fn post_blocking(&self, value: usize) {
        while !self.post(value) {
            sync::thread::yield_now();
        }
    }

    /// Marks the mailbox closed. Any untaken message is intentionally
    /// clobbered — close is only legal once the producer got its answer.
    pub fn close(&self) {
        self.state.store(SlotState::Closed as u8, Ordering::Release);
    }

    /// Current state (for assertions).
    pub fn state(&self) -> SlotState {
        SlotState::from_u8(self.state.load(Ordering::Acquire))
    }
}

/// One master↔worker lane: a work mailbox down, a result mailbox up —
/// the atomic skeleton of `run_threaded`'s channel pair.
#[derive(Debug, Default)]
pub struct WorkerLane {
    /// Master → worker.
    pub work: Mailbox,
    /// Worker → master.
    pub result: Mailbox,
}

impl WorkerLane {
    /// A fresh lane with both slots empty.
    pub fn new() -> Self {
        Self {
            work: Mailbox::new(),
            result: Mailbox::new(),
        }
    }

    /// The worker side: take work until closed, answer `f(item)` each time.
    /// Returns how many items were processed.
    pub fn serve<F: Fn(usize) -> usize>(&self, f: F) -> usize {
        let mut served = 0;
        while let Some(item) = self.work.take_or_closed() {
            self.result.post_blocking(f(item));
            served += 1;
        }
        served
    }
}

/// Drives `items` ping-pong rounds through one lane from the master side,
/// checking each echoed answer; returns the number of correct replies.
///
/// This is the `estimate_comm_time` handshake: strictly alternating
/// post → take pairs, so the result slot is provably empty at every post.
pub fn master_rounds(lane: &WorkerLane, items: usize) -> usize {
    let mut correct = 0;
    for i in 0..items {
        lane.work.post_blocking(i);
        loop {
            if let Some(reply) = lane.result.try_take() {
                if reply == reply_for(i) {
                    correct += 1;
                }
                break;
            }
            sync::thread::yield_now();
        }
    }
    lane.work.close();
    correct
}

/// The model's evaluation function — any injective map works; injectivity
/// makes a cross-wired reply (item A answered with item B's result)
/// detectable.
pub fn reply_for(item: usize) -> usize {
    item.wrapping_mul(2).wrapping_add(1)
}

/// Runs one full master/worker handshake over `lanes` workers ×
/// `items` messages each and asserts every invariant:
/// every item answered exactly once, every answer correct, all workers
/// terminate through the close protocol, all slots quiescent.
///
/// Under loom this function is the body passed to `loom::model`; in a
/// normal build the stress tests call it repeatedly.
pub fn handshake_model(lanes: usize, items: usize) {
    let shared: Vec<sync::Arc<WorkerLane>> = (0..lanes)
        .map(|_| sync::Arc::new(WorkerLane::new()))
        .collect();

    let workers: Vec<_> = shared
        .iter()
        .map(|lane| {
            let lane = sync::Arc::clone(lane);
            sync::thread::spawn(move || lane.serve(reply_for))
        })
        .collect();

    let mut correct = 0;
    for lane in &shared {
        correct += master_rounds(lane, items);
    }
    assert_eq!(correct, lanes * items, "a reply was lost or cross-wired");

    for worker in workers {
        match worker.join() {
            Ok(served) => assert_eq!(served, items, "worker served a wrong item count"),
            Err(_) => panic!("worker panicked inside the model"),
        }
    }
    for lane in &shared {
        assert_eq!(lane.work.state(), SlotState::Closed);
        assert_eq!(
            lane.result.state(),
            SlotState::Empty,
            "stale result left behind"
        );
    }
}

/// Runs a model body: exhaustively under loom, `iterations` times as a
/// scheduling stress test otherwise.
pub fn check_model<F: Fn() + Sync + Send + 'static>(iterations: usize, body: F) {
    #[cfg(loom)]
    {
        let _ = iterations; // loom explores interleavings itself
        loom::model(body);
    }
    #[cfg(not(loom))]
    {
        for _ in 0..iterations {
            body();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Loom guidance: keep modeled thread counts tiny (interleavings grow
    // exponentially). One lane × two messages already covers the races
    // that matter: post-vs-take, take-vs-close, reply ordering.

    #[test]
    fn handshake_single_lane() {
        check_model(200, || handshake_model(1, 2));
    }

    #[test]
    fn handshake_two_lanes() {
        check_model(100, || handshake_model(2, 2));
    }

    #[cfg(not(loom))]
    #[test]
    fn handshake_stress_wide() {
        // Beyond loom's budget, but a good OS-schedule shakedown.
        check_model(20, || handshake_model(4, 25));
    }

    #[test]
    fn mailbox_refuses_overwrite() {
        let m = Mailbox::new();
        assert!(m.post(7));
        assert!(!m.post(8), "posting into a full slot must fail");
        assert_eq!(m.try_take(), Some(7));
        assert_eq!(m.try_take(), None);
        assert!(m.post(9));
        assert_eq!(m.try_take(), Some(9));
    }

    #[test]
    fn mailbox_close_unblocks_consumer() {
        let m = sync::Arc::new(Mailbox::new());
        let taker = {
            let m = sync::Arc::clone(&m);
            sync::thread::spawn(move || m.take_or_closed())
        };
        m.close();
        assert_eq!(taker.join().ok().flatten(), None);
    }

    #[test]
    fn ping_pong_alternates_exactly() {
        let lane = sync::Arc::new(WorkerLane::new());
        let worker = {
            let lane = sync::Arc::clone(&lane);
            sync::thread::spawn(move || lane.serve(reply_for))
        };
        assert_eq!(master_rounds(&lane, 50), 50);
        assert_eq!(worker.join().ok(), Some(50));
    }
}
