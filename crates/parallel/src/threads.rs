//! A real-thread asynchronous master-slave executor.
//!
//! This is the wall-clock counterpart of the virtual-time executor: the
//! master (caller thread) runs the [`BorgEngine`]; worker threads evaluate
//! candidates shipped over crossbeam channels, optionally with injected
//! delays (the paper's experimental control). It stands in for the
//! OpenMPI deployment on TACC Ranger at laptop scale and feeds *measured*
//! `T_A` / `T_F` / `T_C` samples into the distribution-fitting pipeline —
//! reproducing the paper's measurement methodology end-to-end.

use borg_core::algorithm::{BorgConfig, BorgEngine, Candidate};
use borg_core::problem::Problem;
use borg_core::rng::SplitMix64;
use borg_models::dist::Dist;
use crossbeam::channel;
use std::time::Instant;

use crate::delayed::precise_delay;

/// Configuration of a real-thread run.
#[derive(Debug, Clone)]
pub struct ThreadedConfig {
    /// Number of worker threads (`P − 1`).
    pub workers: usize,
    /// Evaluations to perform.
    pub max_nfe: u64,
    /// Optional injected wall-clock delay per evaluation.
    pub delay: Option<Dist>,
    /// Seed (engine + per-worker delay streams).
    pub seed: u64,
}

/// Result of a real-thread run.
#[derive(Debug)]
pub struct ThreadedRunResult {
    /// Wall-clock elapsed seconds.
    pub elapsed: f64,
    /// Final engine state.
    pub engine: BorgEngine,
    /// Measured master algorithm times (produce + consume per interaction).
    pub ta_samples: Vec<f64>,
    /// Measured evaluation times (including injected delay), as seen by
    /// the workers.
    pub tf_samples: Vec<f64>,
}

/// Objective value substituted for evaluations that panicked: finite (so
/// ε-box arithmetic stays well-defined) but worse than any real objective.
pub const PANIC_OBJECTIVE: f64 = 1e30;

/// Failures of the real-thread executor.
///
/// Worker threads catch panics inside `Problem::evaluate` and report a
/// sentinel result, so under normal operation none of these occur; they
/// surface as structured errors (instead of master-side panics) if the
/// worker pool dies anyway — e.g. a panic in the delay sampler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThreadedError {
    /// Every worker disconnected while evaluations were still owed.
    WorkersDisconnected {
        /// Evaluations the engine had consumed when the pool died.
        nfe_completed: u64,
        /// Dispatched candidates whose results will never arrive.
        in_flight: usize,
    },
    /// A worker reported a result id the master never dispatched.
    UnknownResultId(u64),
    /// The echo thread of [`estimate_comm_time`] hung up mid-measurement.
    CommProbeDisconnected,
}

impl std::fmt::Display for ThreadedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::WorkersDisconnected {
                nfe_completed,
                in_flight,
            } => write!(
                f,
                "all worker threads disconnected after {nfe_completed} evaluations \
                 with {in_flight} candidates in flight"
            ),
            Self::UnknownResultId(id) => {
                write!(f, "worker reported unknown result id {id}")
            }
            Self::CommProbeDisconnected => {
                write!(f, "comm-time echo thread disconnected mid-measurement")
            }
        }
    }
}

impl std::error::Error for ThreadedError {}

struct WorkItem {
    id: u64,
    variables: Vec<f64>,
}

struct ResultItem {
    id: u64,
    worker: usize,
    objectives: Vec<f64>,
    constraints: Vec<f64>,
    eval_seconds: f64,
}

/// Runs the Borg MOEA on real threads.
///
/// Nondeterministic across runs (OS scheduling decides result arrival
/// order) but all engine invariants hold; use the virtual executor for
/// reproducible experiments.
///
/// # Errors
/// [`ThreadedError`] if the worker pool dies before the evaluation budget
/// completes (panicking *evaluations* are tolerated and do not cause this;
/// see [`PANIC_OBJECTIVE`]).
pub fn run_threaded<P: Problem + ?Sized>(
    problem: &P,
    borg: BorgConfig,
    config: &ThreadedConfig,
) -> Result<ThreadedRunResult, ThreadedError> {
    assert!(config.workers >= 1, "need at least one worker");
    assert!(config.max_nfe >= 1);

    let mut split = SplitMix64::new(config.seed);
    let engine_seed = split.derive_seed("threaded-engine");
    let mut engine = BorgEngine::new(problem, borg, engine_seed);
    let mut ta_samples: Vec<f64> = Vec::new();
    let mut tf_samples: Vec<f64> = Vec::new();

    let (work_tx, work_rx) = channel::unbounded::<WorkItem>();
    let (result_tx, result_rx) = channel::unbounded::<ResultItem>();

    let start = Instant::now();
    let mut in_flight: std::collections::HashMap<u64, Candidate> = std::collections::HashMap::new();
    let mut next_id = 0u64;

    let elapsed = std::thread::scope(|scope| {
        // Workers.
        for w in 0..config.workers {
            let work_rx = work_rx.clone();
            let result_tx = result_tx.clone();
            let delay = config.delay;
            let mut rng = SplitMix64::new(config.seed ^ (w as u64) << 32).derive("threaded-worker");
            scope.spawn(move || {
                let mut objs = vec![0.0; problem.num_objectives()];
                let mut cons = vec![0.0; problem.num_constraints()];
                while let Ok(item) = work_rx.recv() {
                    let t0 = Instant::now();
                    if let Some(d) = delay {
                        precise_delay(d.sample(&mut rng));
                    }
                    // Fault tolerance: user evaluation code may panic. A
                    // panicking evaluation is reported as a worst-possible
                    // result (huge objectives) so the engine's dominance
                    // machinery discards it naturally and the run — and
                    // the worker — keep going instead of deadlocking the
                    // master on a result that never arrives.
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        problem.evaluate(&item.variables, &mut objs, &mut cons);
                    }));
                    if outcome.is_err() {
                        objs.iter_mut().for_each(|o| *o = PANIC_OBJECTIVE);
                        cons.iter_mut().for_each(|c| *c = PANIC_OBJECTIVE);
                    }
                    let eval_seconds = t0.elapsed().as_secs_f64();
                    if result_tx
                        .send(ResultItem {
                            id: item.id,
                            worker: w,
                            objectives: objs.clone(),
                            constraints: cons.clone(),
                            eval_seconds,
                        })
                        .is_err()
                    {
                        break;
                    }
                }
            });
        }
        drop(result_tx); // master keeps only the receiver

        // The master body runs in an inner closure so that `?` can
        // propagate pool failures while `work_tx` is still dropped on
        // every path — otherwise the scope would join workers blocked on
        // `recv()` forever.
        let master = (|| -> Result<f64, ThreadedError> {
            let pool_died =
                |engine: &BorgEngine, in_flight: &std::collections::HashMap<u64, Candidate>| {
                    ThreadedError::WorkersDisconnected {
                        nfe_completed: engine.nfe(),
                        in_flight: in_flight.len(),
                    }
                };

            // Seed one candidate per worker.
            for _ in 0..config.workers {
                let t0 = Instant::now();
                let cand = engine.produce();
                ta_samples.push(t0.elapsed().as_secs_f64());
                let id = next_id;
                next_id += 1;
                work_tx
                    .send(WorkItem {
                        id,
                        variables: cand.variables.clone(),
                    })
                    .map_err(|_| pool_died(&engine, &in_flight))?;
                in_flight.insert(id, cand);
            }

            // Main master loop.
            while engine.nfe() < config.max_nfe {
                let result = result_rx
                    .recv()
                    .map_err(|_| pool_died(&engine, &in_flight))?;
                let _ = result.worker;
                tf_samples.push(result.eval_seconds);
                let cand = in_flight
                    .remove(&result.id)
                    .ok_or(ThreadedError::UnknownResultId(result.id))?;
                let t0 = Instant::now();
                let sol = engine.make_solution(cand, result.objectives, result.constraints);
                engine.consume(sol);
                let mut ta = t0.elapsed().as_secs_f64();
                if engine.nfe() + (in_flight.len() as u64) < config.max_nfe {
                    let t1 = Instant::now();
                    let cand = engine.produce();
                    ta += t1.elapsed().as_secs_f64();
                    let id = next_id;
                    next_id += 1;
                    work_tx
                        .send(WorkItem {
                            id,
                            variables: cand.variables.clone(),
                        })
                        .map_err(|_| pool_died(&engine, &in_flight))?;
                    in_flight.insert(id, cand);
                }
                ta_samples.push(ta);
            }
            Ok(start.elapsed().as_secs_f64())
        })();
        drop(work_tx); // workers drain and exit
        master
    });

    Ok(ThreadedRunResult {
        elapsed: elapsed?,
        engine,
        ta_samples,
        tf_samples,
    })
}

/// Estimates the one-way message time `T_C` between two threads on this
/// machine by ping-ponging `rounds` messages over crossbeam channels and
/// halving the mean round trip — the thread-level analogue of the paper's
/// MPI round-trip measurement (they report 6 µs on TACC Ranger).
pub fn estimate_comm_time(rounds: u32) -> Result<f64, ThreadedError> {
    assert!(rounds >= 1);
    let (ping_tx, ping_rx) = channel::bounded::<()>(1);
    let (pong_tx, pong_rx) = channel::bounded::<()>(1);
    std::thread::scope(|scope| {
        scope.spawn(move || {
            while ping_rx.recv().is_ok() {
                if pong_tx.send(()).is_err() {
                    break;
                }
            }
        });
        let ping_pong = |times: u32| -> Result<(), ThreadedError> {
            for _ in 0..times {
                ping_tx
                    .send(())
                    .map_err(|_| ThreadedError::CommProbeDisconnected)?;
                pong_rx
                    .recv()
                    .map_err(|_| ThreadedError::CommProbeDisconnected)?;
            }
            Ok(())
        };
        // As in `run_threaded`, measure inside an inner closure so the
        // echo thread's sender is dropped (ending it) on every path.
        let measured = (|| {
            ping_pong(16)?; // warm-up
            let start = Instant::now();
            ping_pong(rounds)?;
            Ok(start.elapsed().as_secs_f64() / rounds as f64 / 2.0)
        })();
        drop(ping_tx);
        measured
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use borg_problems::dtlz::Dtlz;
    use borg_problems::zdt::{Zdt, ZdtVariant};

    #[test]
    fn threaded_run_completes_exact_nfe() {
        let problem = Zdt::new(ZdtVariant::Zdt1);
        let cfg = ThreadedConfig {
            workers: 4,
            max_nfe: 2_000,
            delay: None,
            seed: 1,
        };
        let result = run_threaded(&problem, BorgConfig::new(2, 0.01), &cfg).expect("run");
        assert_eq!(result.engine.nfe(), 2_000);
        assert!(result.engine.archive().len() > 5);
        result.engine.archive().check_invariants().unwrap();
        assert_eq!(result.tf_samples.len(), 2_000);
        assert!(result.elapsed > 0.0);
    }

    #[test]
    fn threaded_run_converges_like_serial() {
        let problem = Zdt::with_variables(ZdtVariant::Zdt1, 10);
        let cfg = ThreadedConfig {
            workers: 8,
            max_nfe: 6_000,
            delay: None,
            seed: 2,
        };
        let result = run_threaded(&problem, BorgConfig::new(2, 0.01), &cfg).expect("run");
        // Archive close to the true front f2 = 1 − √f1.
        let worst = result
            .engine
            .archive()
            .solutions()
            .iter()
            .map(|s| s.objectives()[1] - (1.0 - s.objectives()[0].max(0.0).sqrt()))
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(worst < 0.4, "archive far from front: {worst}");
    }

    #[test]
    fn injected_delay_dominates_elapsed_time() {
        let problem = Dtlz::dtlz2_5();
        let t_f = 0.002;
        let nfe = 400u64;
        let workers = 8usize;
        let cfg = ThreadedConfig {
            workers,
            max_nfe: nfe,
            delay: Some(Dist::Constant(t_f)),
            seed: 3,
        };
        let result = run_threaded(&problem, BorgConfig::new(5, 0.06), &cfg).expect("run");
        let ideal = nfe as f64 * t_f / workers as f64;
        assert!(
            result.elapsed >= ideal * 0.9,
            "{} < {}",
            result.elapsed,
            ideal
        );
        assert!(
            result.elapsed < ideal * 3.0,
            "parallelism not effective: {} vs ideal {}",
            result.elapsed,
            ideal
        );
        // Measured T_F must reflect the injected delay.
        let mean_tf = result.tf_samples.iter().sum::<f64>() / result.tf_samples.len() as f64;
        assert!((mean_tf - t_f).abs() < t_f, "mean T_F {mean_tf}");
    }

    #[test]
    fn panicking_evaluations_do_not_deadlock_or_poison_the_archive() {
        // A problem whose evaluation panics on part of the domain: the run
        // must still complete the full budget and the archive must contain
        // only real (non-sentinel) solutions.
        struct Flaky;
        impl Problem for Flaky {
            fn name(&self) -> &str {
                "Flaky"
            }
            fn num_variables(&self) -> usize {
                2
            }
            fn num_objectives(&self) -> usize {
                2
            }
            fn bounds(&self, _i: usize) -> borg_core::problem::Bounds {
                borg_core::problem::Bounds::unit()
            }
            fn evaluate(&self, vars: &[f64], objs: &mut [f64], _cons: &mut [f64]) {
                assert!(vars[0] <= 0.9, "injected failure region");
                objs[0] = vars[0];
                objs[1] = 1.0 - vars[0] + vars[1];
            }
        }
        // Silence the expected panic backtraces from worker threads.
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let cfg = ThreadedConfig {
            workers: 3,
            max_nfe: 1_500,
            delay: None,
            seed: 11,
        };
        let result = run_threaded(&Flaky, BorgConfig::new(2, 0.01), &cfg).expect("run");
        std::panic::set_hook(prev_hook);
        assert_eq!(result.engine.nfe(), 1_500);
        assert!(!result.engine.archive().is_empty());
        for s in result.engine.archive().solutions() {
            assert!(
                s.objectives()
                    .iter()
                    .all(|&o| o < crate::threads::PANIC_OBJECTIVE / 2.0),
                "sentinel leaked into the archive: {:?}",
                s.objectives()
            );
            assert!(s.variables()[0] <= 0.9);
        }
    }

    #[test]
    fn comm_time_estimate_is_plausible() {
        let tc = estimate_comm_time(200).expect("probe");
        assert!(tc > 0.0);
        assert!(tc < 0.01, "thread ping should be far under 10 ms: {tc}");
    }

    #[test]
    fn ta_samples_are_recorded_per_interaction() {
        let problem = Zdt::new(ZdtVariant::Zdt2);
        let cfg = ThreadedConfig {
            workers: 2,
            max_nfe: 500,
            delay: None,
            seed: 4,
        };
        let result = run_threaded(&problem, BorgConfig::new(2, 0.01), &cfg).expect("run");
        assert!(result.ta_samples.len() as u64 >= 500);
        assert!(result.ta_samples.iter().all(|&t| (0.0..1.0).contains(&t)));
    }
}
