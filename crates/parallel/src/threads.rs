//! A real-thread asynchronous master-slave executor.
//!
//! This is the wall-clock counterpart of the virtual-time executor: the
//! master (caller thread) runs the [`BorgEngine`]; worker threads evaluate
//! candidates shipped over crossbeam channels, optionally with injected
//! delays (the paper's experimental control). It stands in for the
//! OpenMPI deployment on TACC Ranger at laptop scale and feeds *measured*
//! `T_A` / `T_F` / `T_C` samples into the distribution-fitting pipeline —
//! reproducing the paper's measurement methodology end-to-end.

use borg_core::algorithm::{BorgConfig, BorgEngine, Candidate};
use borg_core::problem::Problem;
use borg_core::rng::SplitMix64;
use borg_desim::fault::{DispatchFate, FaultConfig, FaultKind, FaultLog, FaultPlan, MessageFate};
use borg_desim::trace::{Activity, Actor};
use borg_models::dist::Dist;
use borg_obs::{NoopRecorder, Recorder};
use borg_protocol::{Clock, Command, EngineConfig, Event, MasterEngine, RecoveryPolicy, Transport};
use crossbeam::channel;
use std::collections::HashMap;
use std::time::{Duration, Instant};

use crate::delayed::precise_delay;

/// Configuration of a real-thread run.
#[derive(Debug, Clone)]
pub struct ThreadedConfig {
    /// Number of worker threads (`P − 1`).
    pub workers: usize,
    /// Evaluations to perform.
    pub max_nfe: u64,
    /// Optional injected wall-clock delay per evaluation.
    pub delay: Option<Dist>,
    /// Seed (engine + per-worker delay streams + fault plan).
    pub seed: u64,
    /// Optional fault injection: worker threads consult the derived
    /// [`FaultPlan`] as they dequeue work and crash / hang / straggle /
    /// drop / duplicate accordingly. `None` injects nothing.
    ///
    /// Thread workers never respawn: `respawn_after` is a virtual-time
    /// concept and is ignored here (a crashed thread is gone for good;
    /// the master finishes with the surviving pool).
    pub faults: Option<FaultConfig>,
    /// Master-side deadline (seconds) before an outstanding evaluation is
    /// reissued. `None` derives `4 · E[delay]` (min 250 ms) when faults
    /// are enabled, and disables reissue otherwise. Independently of this
    /// knob the master *never* blocks unboundedly: all waits are
    /// `recv_timeout` ticks.
    pub reissue_timeout: Option<f64>,
}

impl ThreadedConfig {
    /// A fault-free configuration (the pre-fault-framework behaviour).
    pub fn new(workers: usize, max_nfe: u64, delay: Option<Dist>, seed: u64) -> Self {
        Self {
            workers,
            max_nfe,
            delay,
            seed,
            faults: None,
            reissue_timeout: None,
        }
    }

    /// The [`FaultPlan`] a faulty run with this configuration will use
    /// (exposed for replay/inspection; `None` when faults are disabled).
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.faults.as_ref().map(|f| {
            let plan_seed = SplitMix64::new(self.seed).derive_seed("fault-plan");
            FaultPlan::new(f.clone(), self.workers, self.max_nfe, plan_seed)
        })
    }

    /// The effective reissue deadline in seconds, if any.
    fn effective_reissue_timeout(&self) -> Option<f64> {
        self.reissue_timeout.or_else(|| {
            self.faults.as_ref().map(|_| {
                let base = self.delay.as_ref().map(|d| d.mean()).unwrap_or(0.0);
                (4.0 * base).max(0.25)
            })
        })
    }
}

/// Result of a real-thread run.
#[derive(Debug)]
pub struct ThreadedRunResult {
    /// Wall-clock elapsed seconds.
    pub elapsed: f64,
    /// Final engine state.
    pub engine: BorgEngine,
    /// Measured master algorithm times (produce + consume per interaction).
    pub ta_samples: Vec<f64>,
    /// Measured evaluation times (including injected delay), as seen by
    /// the workers. One entry per *consumed* result — suppressed
    /// duplicates and lost messages are excluded, so efficiency
    /// accounting downstream stays uncorrupted.
    pub tf_samples: Vec<f64>,
    /// Fault-injection/recovery ledger (empty without fault injection).
    pub fault_log: FaultLog,
}

/// Objective value substituted for evaluations that panicked: finite (so
/// ε-box arithmetic stays well-defined) but worse than any real objective.
pub const PANIC_OBJECTIVE: f64 = 1e30;

/// Failures of the real-thread executor.
///
/// Worker threads catch panics inside `Problem::evaluate` and report a
/// sentinel result, so under normal operation none of these occur; they
/// surface as structured errors (instead of master-side panics) if the
/// worker pool dies anyway — e.g. a panic in the delay sampler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThreadedError {
    /// Every worker disconnected while evaluations were still owed.
    WorkersDisconnected {
        /// Evaluations the engine had consumed when the pool died.
        nfe_completed: u64,
        /// Dispatched candidates whose results will never arrive.
        in_flight: usize,
    },
    /// A worker reported a result id the master never dispatched.
    UnknownResultId(u64),
    /// The echo thread of [`estimate_comm_time`] hung up mid-measurement.
    CommProbeDisconnected,
    /// An evaluation was reissued more than the hard cap and still never
    /// produced a result (e.g. every surviving worker is hung).
    ReissueLimitExceeded {
        /// The evaluation that could not be completed.
        eval_id: u64,
    },
}

impl std::fmt::Display for ThreadedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::WorkersDisconnected {
                nfe_completed,
                in_flight,
            } => write!(
                f,
                "all worker threads disconnected after {nfe_completed} evaluations \
                 with {in_flight} candidates in flight"
            ),
            Self::UnknownResultId(id) => {
                write!(f, "worker reported unknown result id {id}")
            }
            Self::CommProbeDisconnected => {
                write!(f, "comm-time echo thread disconnected mid-measurement")
            }
            Self::ReissueLimitExceeded { eval_id } => {
                write!(f, "evaluation {eval_id} exceeded the reissue limit")
            }
        }
    }
}

impl std::error::Error for ThreadedError {}

struct WorkItem {
    id: u64,
    /// Transmission attempt (0 = original, > 0 = reissue); the fault plan
    /// re-rolls the message fate per attempt.
    attempt: u32,
    variables: Vec<f64>,
}

struct ResultItem {
    id: u64,
    worker: usize,
    objectives: Vec<f64>,
    constraints: Vec<f64>,
    eval_seconds: f64,
}

/// Out-of-band fault notification from a worker to the master — the
/// thread-level stand-in for the transport layer reporting a dead peer.
/// Crash/hang notes double as the master's death *detection* signal;
/// drop/duplicate/straggler notes only feed the ledger (the master still
/// discovers lost results the honest way, via its reissue deadline).
struct FaultNote {
    kind: FaultKind,
    worker: usize,
    eval_id: u64,
    at: f64,
}

/// Hard cap on reissues per evaluation in the real-thread executor.
const MAX_REISSUES: u32 = 32;

/// The executor half of the protocol on real threads: performs the
/// [`MasterEngine`]'s decisions on the crossbeam channels in wall-clock
/// time, measures `T_A`/`T_F`, and latches pool failures for the master
/// loop to surface as [`ThreadedError`]s.
struct ThreadedTransport<'a, R: Recorder + ?Sized> {
    engine: &'a mut BorgEngine,
    rec: &'a R,
    work_tx: &'a channel::Sender<WorkItem>,
    start: Instant,
    /// Master-side reissue deadline, if any (`None` disables deadlines).
    timeout: Option<f64>,
    /// Candidates in flight by eval id — the resend source for reissues,
    /// moved into the engine when the result is consumed.
    candidates: HashMap<u64, Candidate>,
    /// The result message the current engine event is about.
    pending: Option<ResultItem>,
    /// Open `T_A` sample: consume time, extended by the produce the engine
    /// may order next, so one sample covers one master interaction.
    pending_ta: Option<f64>,
    ta_samples: &'a mut Vec<f64>,
    tf_samples: &'a mut Vec<f64>,
    /// First pool failure observed while executing a command; the master
    /// loop checks after every event and aborts the run.
    error: Option<ThreadedError>,
}

impl<R: Recorder + ?Sized> ThreadedTransport<'_, R> {
    /// Close the open `T_A` sample, if any (after each handled event).
    fn flush_ta(&mut self) {
        if let Some(ta) = self.pending_ta.take() {
            self.ta_samples.push(ta);
        }
    }
}

impl<R: Recorder + ?Sized> Clock for ThreadedTransport<'_, R> {
    fn now(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

impl<R: Recorder + ?Sized> Transport for ThreadedTransport<'_, R> {
    fn dispatch(
        &mut self,
        _worker: usize,
        eval_id: u64,
        attempt: u32,
        _seq: u64,
        _log: &mut FaultLog,
    ) -> f64 {
        if self.error.is_some() {
            return f64::INFINITY;
        }
        let variables = if attempt == 0 {
            let began = self.now();
            let t0 = Instant::now();
            let cand = self.engine.produce();
            let ta = t0.elapsed().as_secs_f64();
            self.rec
                .span(Actor::Master, Activity::Algorithm, began, began + ta);
            // Seed-time produces stand alone; a produce ordered after a
            // consume extends that interaction's open sample.
            match self.pending_ta.as_mut() {
                Some(open) => *open += ta,
                None => self.ta_samples.push(ta),
            }
            let vars = cand.variables.clone();
            self.candidates.insert(eval_id, cand);
            vars
        } else {
            match self.candidates.get(&eval_id) {
                Some(cand) => cand.variables.clone(),
                // Raced away (consumed/abandoned since): nothing to resend.
                None => return f64::INFINITY,
            }
        };
        if self
            .work_tx
            .send(WorkItem {
                id: eval_id,
                attempt,
                variables,
            })
            .is_err()
        {
            // Placeholder counts; the master loop fills in the real ones.
            self.error
                .get_or_insert(ThreadedError::WorkersDisconnected {
                    nfe_completed: 0,
                    in_flight: 0,
                });
        }
        self.timeout
            .map(|t| self.now() + t)
            .unwrap_or(f64::INFINITY)
    }

    fn consume(&mut self, _worker: usize, eval_id: u64, _ready_at: f64) -> f64 {
        let (Some(result), Some(cand)) = (self.pending.take(), self.candidates.remove(&eval_id))
        else {
            return self.now();
        };
        self.tf_samples.push(result.eval_seconds);
        let began = self.now();
        let t0 = Instant::now();
        let sol = self
            .engine
            .make_solution(cand, result.objectives, result.constraints);
        self.engine.consume(sol);
        let ta = t0.elapsed().as_secs_f64();
        self.rec
            .span(Actor::Master, Activity::Algorithm, began, began + ta);
        self.pending_ta = Some(ta);
        self.now()
    }

    fn absorb_duplicate(&mut self, _worker: usize, _eval_id: u64, _ready_at: f64) -> f64 {
        self.pending = None;
        self.now()
    }

    fn ping(&mut self, _worker: usize) -> (f64, f64) {
        // No liveness probe exists at thread level: deaths are reported
        // out-of-band by fault notes, so the "ping" is instantaneous.
        let now = self.now();
        (now, now)
    }

    fn rearm_heartbeat(&mut self, _at: f64) {
        // Heartbeat sweep disabled (EngineConfig::shared_pool_async).
    }

    fn abandon(&mut self, eval_id: u64) {
        self.candidates.remove(&eval_id);
        self.error
            .get_or_insert(ThreadedError::ReissueLimitExceeded { eval_id });
    }

    fn unknown_result(&mut self, _worker: usize, eval_id: u64) {
        self.pending = None;
        self.error
            .get_or_insert(ThreadedError::UnknownResultId(eval_id));
    }
}

/// Surface a transport-latched failure, filling in the live counts.
fn surface<R: Recorder + ?Sized>(
    t: &mut ThreadedTransport<'_, R>,
    proto: &MasterEngine,
) -> Result<(), ThreadedError> {
    match t.error.take() {
        None => Ok(()),
        Some(ThreadedError::WorkersDisconnected { .. }) => {
            Err(ThreadedError::WorkersDisconnected {
                nfe_completed: t.engine.nfe(),
                in_flight: proto.outstanding_len(),
            })
        }
        Some(other) => Err(other),
    }
}

/// Runs the Borg MOEA on real threads.
///
/// Nondeterministic across runs (OS scheduling decides result arrival
/// order) but all engine invariants hold; use the virtual executor for
/// reproducible experiments.
///
/// The master never blocks unboundedly: every wait is a `recv_timeout`
/// tick, during which it drains fault notifications and reissues
/// outstanding evaluations whose deadline passed (when a reissue timeout
/// is in effect — see [`ThreadedConfig::reissue_timeout`]). With
/// [`ThreadedConfig::faults`] set, worker threads consult the derived
/// [`FaultPlan`] and crash, hang, straggle, drop or duplicate results
/// accordingly; the run still completes on the surviving pool and the
/// full ledger is returned in [`ThreadedRunResult::fault_log`].
///
/// # Errors
/// [`ThreadedError`] if the worker pool dies before the evaluation budget
/// completes (panicking *evaluations* are tolerated and do not cause this;
/// see [`PANIC_OBJECTIVE`]) or an evaluation exhausts its reissue budget.
pub fn run_threaded<P: Problem + ?Sized>(
    problem: &P,
    borg: BorgConfig,
    config: &ThreadedConfig,
) -> Result<ThreadedRunResult, ThreadedError> {
    run_threaded_inner(problem, borg, config, &NoopRecorder, false).map(|(result, _)| result)
}

/// [`run_threaded`] emitting telemetry through `rec`: master `Algorithm`
/// and worker `Evaluation` spans (wall-clock seconds since run start),
/// protocol event/command counters, and end-of-run master-occupancy
/// gauges. The recorder is shared with the worker threads, so it must be
/// [`Sync`].
///
/// # Errors
/// As [`run_threaded`].
pub fn run_threaded_observed<P: Problem + ?Sized, R: Recorder + Sync + ?Sized>(
    problem: &P,
    borg: BorgConfig,
    config: &ThreadedConfig,
    rec: &R,
) -> Result<ThreadedRunResult, ThreadedError> {
    run_threaded_inner(problem, borg, config, rec, false).map(|(result, _)| result)
}

/// [`run_threaded`] with the [`MasterEngine`]'s [`Command`] trace recorded
/// — the wall-clock executor's protocol transcript, for event-ordering
/// assertions that do not depend on machine load.
///
/// # Errors
/// As [`run_threaded`].
pub fn run_threaded_traced<P: Problem + ?Sized>(
    problem: &P,
    borg: BorgConfig,
    config: &ThreadedConfig,
) -> Result<(ThreadedRunResult, Vec<Command>), ThreadedError> {
    run_threaded_inner(problem, borg, config, &NoopRecorder, true)
}

fn run_threaded_inner<P: Problem + ?Sized, R: Recorder + Sync + ?Sized>(
    problem: &P,
    borg: BorgConfig,
    config: &ThreadedConfig,
    rec: &R,
    record: bool,
) -> Result<(ThreadedRunResult, Vec<Command>), ThreadedError> {
    assert!(config.workers >= 1, "need at least one worker");
    assert!(config.max_nfe >= 1);

    let mut split = SplitMix64::new(config.seed);
    let engine_seed = split.derive_seed("threaded-engine");
    let mut engine = BorgEngine::new(problem, borg, engine_seed);
    let mut ta_samples: Vec<f64> = Vec::new();
    let mut tf_samples: Vec<f64> = Vec::new();

    let plan = config.fault_plan();
    let reissue_timeout = config.effective_reissue_timeout();
    // Tick granularity: fine enough to honour the deadline promptly, but
    // never busier than 1 kHz and never sleepier than 10 Hz.
    let tick = Duration::from_secs_f64(
        reissue_timeout
            .map(|t| (t / 4.0).clamp(0.001, 0.1))
            .unwrap_or(0.1),
    );

    let (work_tx, work_rx) = channel::unbounded::<WorkItem>();
    let (result_tx, result_rx) = channel::unbounded::<ResultItem>();
    let (fault_tx, fault_rx) = channel::unbounded::<FaultNote>();
    // Hung workers park on this channel; dropping `stop_tx` when the scope
    // ends wakes and releases them so the join never deadlocks.
    let (stop_tx, stop_rx) = channel::bounded::<()>(0);

    let start = Instant::now();
    // All recovery state — the deadline map, the seen-eval-id set, attempt
    // counters — lives in the shared protocol engine; this executor only
    // performs its commands.
    let mut proto = MasterEngine::new(EngineConfig::shared_pool_async(
        config.workers,
        config.max_nfe,
        RecoveryPolicy {
            timeout: reissue_timeout.unwrap_or(f64::INFINITY),
            heartbeat_interval: f64::INFINITY,
            max_reissues: MAX_REISSUES,
        },
    ));
    if record {
        proto.record_commands();
    }

    let elapsed = std::thread::scope(|scope| {
        // Workers.
        for w in 0..config.workers {
            let work_rx = work_rx.clone();
            let result_tx = result_tx.clone();
            let fault_tx = fault_tx.clone();
            let stop_rx = stop_rx.clone();
            let delay = config.delay;
            let plan = plan.as_ref();
            let mut rng = SplitMix64::new(config.seed ^ (w as u64) << 32).derive("threaded-worker");
            scope.spawn(move || {
                let mut objs = vec![0.0; problem.num_objectives()];
                let mut cons = vec![0.0; problem.num_constraints()];
                let mut seq = 0u64;
                // Worker-side blocking receive is safe: the master drops
                // `work_tx` on every exit path, ending this loop.
                // borg-lint: allow(BORG-L006)
                while let Ok(item) = work_rx.recv() {
                    let fate = plan
                        .map(|p| p.dispatch_fate(w, seq))
                        .unwrap_or(DispatchFate::Normal);
                    seq += 1;
                    let t0 = Instant::now();
                    let mut straggle_mult = 1.0;
                    match fate {
                        DispatchFate::CrashDuring { frac } => {
                            // Burn part of the evaluation, then die
                            // silently: the thread exits, the result is
                            // never sent.
                            if let Some(d) = delay {
                                precise_delay(d.sample(&mut rng) * frac);
                            }
                            let _ = fault_tx.send(FaultNote {
                                kind: FaultKind::Crash,
                                worker: w,
                                eval_id: item.id,
                                at: start.elapsed().as_secs_f64(),
                            });
                            return;
                        }
                        DispatchFate::HangDuring => {
                            let _ = fault_tx.send(FaultNote {
                                kind: FaultKind::Hang,
                                worker: w,
                                eval_id: item.id,
                                at: start.elapsed().as_secs_f64(),
                            });
                            // Park until the run ends (recv fails once the
                            // master's scope drops `stop_tx`), then exit
                            // without ever responding — a true hang from
                            // the master's point of view, but one the
                            // thread join can still collect.
                            // borg-lint: allow(BORG-L006)
                            let _ = stop_rx.recv();
                            return;
                        }
                        DispatchFate::Straggle { factor } => {
                            straggle_mult = factor;
                            let _ = fault_tx.send(FaultNote {
                                kind: FaultKind::Straggler,
                                worker: w,
                                eval_id: item.id,
                                at: start.elapsed().as_secs_f64(),
                            });
                        }
                        DispatchFate::Normal => {}
                    }
                    if let Some(d) = delay {
                        precise_delay(d.sample(&mut rng) * straggle_mult);
                    } else if straggle_mult > 1.0 {
                        // No configured delay to scale: straggle on a
                        // small fixed base so the slowdown is observable.
                        precise_delay(0.000_5 * straggle_mult);
                    }
                    // Fault tolerance: user evaluation code may panic. A
                    // panicking evaluation is reported as a worst-possible
                    // result (huge objectives) so the engine's dominance
                    // machinery discards it naturally and the run — and
                    // the worker — keep going instead of deadlocking the
                    // master on a result that never arrives.
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        problem.evaluate(&item.variables, &mut objs, &mut cons);
                    }));
                    if outcome.is_err() {
                        objs.iter_mut().for_each(|o| *o = PANIC_OBJECTIVE);
                        cons.iter_mut().for_each(|c| *c = PANIC_OBJECTIVE);
                    }
                    let eval_seconds = t0.elapsed().as_secs_f64();
                    let eval_end = start.elapsed().as_secs_f64();
                    rec.span(
                        Actor::Worker(w),
                        Activity::Evaluation,
                        eval_end - eval_seconds,
                        eval_end,
                    );
                    let message = plan
                        .map(|p| p.message_fate(item.id, item.attempt))
                        .unwrap_or(MessageFate::Deliver);
                    let copies = match message {
                        MessageFate::Deliver => 1,
                        MessageFate::Drop => {
                            let _ = fault_tx.send(FaultNote {
                                kind: FaultKind::MessageDrop,
                                worker: w,
                                eval_id: item.id,
                                at: start.elapsed().as_secs_f64(),
                            });
                            0
                        }
                        MessageFate::Duplicate => {
                            let _ = fault_tx.send(FaultNote {
                                kind: FaultKind::MessageDuplicate,
                                worker: w,
                                eval_id: item.id,
                                at: start.elapsed().as_secs_f64(),
                            });
                            2
                        }
                    };
                    let mut disconnected = false;
                    for _ in 0..copies {
                        if result_tx
                            .send(ResultItem {
                                id: item.id,
                                worker: w,
                                objectives: objs.clone(),
                                constraints: cons.clone(),
                                eval_seconds,
                            })
                            .is_err()
                        {
                            disconnected = true;
                            break;
                        }
                    }
                    if disconnected {
                        break;
                    }
                }
            });
        }
        drop(result_tx); // master keeps only the receiver
        drop(fault_tx);
        drop(stop_rx);

        // The master body runs in an inner closure so that `?` can
        // propagate pool failures while `work_tx` is still dropped on
        // every path — otherwise the scope would join workers blocked on
        // `recv()` forever.
        let master = (|| -> Result<f64, ThreadedError> {
            let mut t = ThreadedTransport {
                engine: &mut engine,
                rec,
                work_tx: &work_tx,
                start,
                timeout: reissue_timeout,
                candidates: HashMap::new(),
                pending: None,
                pending_ta: None,
                ta_samples: &mut ta_samples,
                tf_samples: &mut tf_samples,
                error: None,
            };

            // Seed one candidate per worker.
            proto.seed(&mut t, rec);
            surface(&mut t, &proto)?;

            // Main master loop: translate channel traffic into protocol
            // events; the engine decides what to do about each.
            while !proto.finished() {
                // Drain fault notifications first so the ledger is
                // populated before any detection/recovery bookkeeping.
                while let Ok(note) = fault_rx.try_recv() {
                    proto
                        .log_mut()
                        .inject(note.kind, note.worker, note.eval_id, note.at);
                    match note.kind {
                        FaultKind::Crash | FaultKind::Hang => {
                            // The transport reported a dead peer: the
                            // engine detects the death and reissues the
                            // lost evaluation right away rather than
                            // waiting for the deadline.
                            let at = t.now();
                            proto.handle(
                                Event::WorkerDied {
                                    worker: note.worker,
                                    at,
                                    will_respawn: false,
                                    lost_eval: Some(note.eval_id),
                                },
                                &mut t,
                                rec,
                            );
                            surface(&mut t, &proto)?;
                        }
                        FaultKind::MessageDrop => {
                            // The master does NOT get to act on this (a
                            // real master never sees a lost message); the
                            // reissue deadline discovers it. Ledger only.
                            proto.log_mut().wasted_nfe += 1;
                        }
                        FaultKind::MessageDuplicate | FaultKind::Straggler => {}
                    }
                }

                let result = match result_rx.recv_timeout(tick) {
                    Ok(result) => result,
                    Err(channel::RecvTimeoutError::Timeout) => {
                        let now = t.now();
                        for (eval_id, worker, deadline_bits) in proto.expired_deadlines(now) {
                            proto.handle(
                                Event::DeadlineFired {
                                    eval_id,
                                    worker,
                                    deadline_bits,
                                    at: now,
                                },
                                &mut t,
                                rec,
                            );
                            surface(&mut t, &proto)?;
                        }
                        continue;
                    }
                    Err(channel::RecvTimeoutError::Disconnected) => {
                        return Err(ThreadedError::WorkersDisconnected {
                            nfe_completed: t.engine.nfe(),
                            in_flight: proto.outstanding_len(),
                        })
                    }
                };
                let (worker, eval_id) = (result.worker, result.id);
                let at = t.now();
                t.pending = Some(result);
                proto.handle(
                    Event::ResultArrived {
                        worker,
                        eval_id,
                        at,
                    },
                    &mut t,
                    rec,
                );
                t.flush_ta();
                surface(&mut t, &proto)?;
            }
            Ok(start.elapsed().as_secs_f64())
        })();
        drop(work_tx); // workers drain and exit
        drop(stop_tx); // hung workers wake up and exit
        master
    });

    let elapsed = elapsed?;
    let master_busy: f64 = ta_samples.iter().sum();
    rec.gauge("master.busy_seconds", master_busy);
    rec.gauge(
        "master.utilization",
        master_busy / elapsed.max(f64::MIN_POSITIVE),
    );
    rec.counter("archive.box_probes", engine.archive().box_probes());
    let commands = proto.take_commands();
    let mut fault_log = proto.into_log();
    // Collect any fault notes still in transit (e.g. a straggler note
    // sent after the budget completed), then close the ledger.
    while let Ok(note) = fault_rx.try_recv() {
        fault_log.inject(note.kind, note.worker, note.eval_id, note.at);
    }
    fault_log.finalize(elapsed);

    Ok((
        ThreadedRunResult {
            elapsed,
            engine,
            ta_samples,
            tf_samples,
            fault_log,
        },
        commands,
    ))
}

/// Estimates the one-way message time `T_C` between two threads on this
/// machine by ping-ponging `rounds` messages over crossbeam channels and
/// halving the mean round trip — the thread-level analogue of the paper's
/// MPI round-trip measurement (they report 6 µs on TACC Ranger).
pub fn estimate_comm_time(rounds: u32) -> Result<f64, ThreadedError> {
    assert!(rounds >= 1);
    let (ping_tx, ping_rx) = channel::bounded::<()>(1);
    let (pong_tx, pong_rx) = channel::bounded::<()>(1);
    std::thread::scope(|scope| {
        scope.spawn(move || {
            // Echo side: blocking receive is safe — the measuring side
            // drops `ping_tx` on every path, ending this loop.
            // borg-lint: allow(BORG-L006)
            while ping_rx.recv().is_ok() {
                if pong_tx.send(()).is_err() {
                    break;
                }
            }
        });
        let ping_pong = |times: u32| -> Result<(), ThreadedError> {
            for _ in 0..times {
                ping_tx
                    .send(())
                    .map_err(|_| ThreadedError::CommProbeDisconnected)?;
                // A same-machine echo answering slower than 5 s means the
                // probe thread is gone or wedged; bail rather than block.
                pong_rx
                    .recv_timeout(Duration::from_secs(5))
                    .map_err(|_| ThreadedError::CommProbeDisconnected)?;
            }
            Ok(())
        };
        // As in `run_threaded`, measure inside an inner closure so the
        // echo thread's sender is dropped (ending it) on every path.
        let measured = (|| {
            ping_pong(16)?; // warm-up
            let start = Instant::now();
            ping_pong(rounds)?;
            Ok(start.elapsed().as_secs_f64() / rounds as f64 / 2.0)
        })();
        drop(ping_tx);
        measured
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use borg_problems::dtlz::Dtlz;
    use borg_problems::zdt::{Zdt, ZdtVariant};

    #[test]
    fn threaded_run_completes_exact_nfe() {
        let problem = Zdt::new(ZdtVariant::Zdt1);
        let cfg = ThreadedConfig {
            workers: 4,
            max_nfe: 2_000,
            delay: None,
            seed: 1,
            faults: None,
            reissue_timeout: None,
        };
        let result = run_threaded(&problem, BorgConfig::new(2, 0.01), &cfg).expect("run");
        assert_eq!(result.engine.nfe(), 2_000);
        assert!(result.engine.archive().len() > 5);
        result.engine.archive().check_invariants().unwrap();
        assert_eq!(result.tf_samples.len(), 2_000);
        assert!(result.elapsed > 0.0);
    }

    #[test]
    fn threaded_run_converges_like_serial() {
        let problem = Zdt::with_variables(ZdtVariant::Zdt1, 10);
        let cfg = ThreadedConfig {
            workers: 8,
            max_nfe: 6_000,
            delay: None,
            seed: 2,
            faults: None,
            reissue_timeout: None,
        };
        let result = run_threaded(&problem, BorgConfig::new(2, 0.01), &cfg).expect("run");
        // Archive close to the true front f2 = 1 − √f1.
        let worst = result
            .engine
            .archive()
            .solutions()
            .iter()
            .map(|s| s.objectives()[1] - (1.0 - s.objectives()[0].max(0.0).sqrt()))
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(worst < 0.4, "archive far from front: {worst}");
    }

    #[test]
    fn injected_delay_dominates_elapsed_time() {
        let problem = Dtlz::dtlz2_5();
        let t_f = 0.002;
        let nfe = 400u64;
        let workers = 8usize;
        let cfg = ThreadedConfig {
            workers,
            max_nfe: nfe,
            delay: Some(Dist::Constant(t_f)),
            seed: 3,
            faults: None,
            reissue_timeout: None,
        };
        let (result, commands) =
            run_threaded_traced(&problem, BorgConfig::new(5, 0.06), &cfg).expect("run");
        let ideal = nfe as f64 * t_f / workers as f64;
        assert!(
            result.elapsed >= ideal * 0.9,
            "{} < {}",
            result.elapsed,
            ideal
        );
        // Parallelism is asserted on the protocol transcript, not the wall
        // clock (a loaded runner can stretch elapsed time arbitrarily):
        // the master must seed the whole pool before consuming anything,
        // keep `workers` evaluations outstanding until only the tail is
        // left, and refill the slot immediately after every consume.
        let mut outstanding = 0usize;
        let mut consumed = 0u64;
        for (i, c) in commands.iter().enumerate() {
            if i < workers {
                assert!(
                    matches!(c, Command::Dispatch { .. }),
                    "master consumed before the pool was seeded: {c:?} at {i}"
                );
            }
            match c {
                Command::Dispatch { attempt: 0, .. } => {
                    outstanding += 1;
                    assert!(outstanding <= workers, "overdispatched at command {i}");
                }
                Command::Consume { .. } => {
                    outstanding -= 1;
                    consumed += 1;
                    if consumed + (workers as u64) <= nfe {
                        assert!(
                            matches!(commands.get(i + 1), Some(Command::Dispatch { .. })),
                            "consume at command {i} was not followed by a refill"
                        );
                    }
                }
                Command::Finish => assert_eq!(i, commands.len() - 1),
                other => panic!("fault-free run emitted {other:?}"),
            }
        }
        assert_eq!(consumed, nfe);
        // Measured T_F must reflect the injected delay.
        let mean_tf = result.tf_samples.iter().sum::<f64>() / result.tf_samples.len() as f64;
        assert!((mean_tf - t_f).abs() < t_f, "mean T_F {mean_tf}");
    }

    #[test]
    fn panicking_evaluations_do_not_deadlock_or_poison_the_archive() {
        // A problem whose evaluation panics on part of the domain: the run
        // must still complete the full budget and the archive must contain
        // only real (non-sentinel) solutions.
        struct Flaky;
        impl Problem for Flaky {
            fn name(&self) -> &str {
                "Flaky"
            }
            fn num_variables(&self) -> usize {
                2
            }
            fn num_objectives(&self) -> usize {
                2
            }
            fn bounds(&self, _i: usize) -> borg_core::problem::Bounds {
                borg_core::problem::Bounds::unit()
            }
            fn evaluate(&self, vars: &[f64], objs: &mut [f64], _cons: &mut [f64]) {
                assert!(vars[0] <= 0.9, "injected failure region");
                objs[0] = vars[0];
                objs[1] = 1.0 - vars[0] + vars[1];
            }
        }
        // Silence the expected panic backtraces from worker threads.
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let cfg = ThreadedConfig {
            workers: 3,
            max_nfe: 1_500,
            delay: None,
            seed: 11,
            faults: None,
            reissue_timeout: None,
        };
        let result = run_threaded(&Flaky, BorgConfig::new(2, 0.01), &cfg).expect("run");
        std::panic::set_hook(prev_hook);
        assert_eq!(result.engine.nfe(), 1_500);
        assert!(!result.engine.archive().is_empty());
        for s in result.engine.archive().solutions() {
            assert!(
                s.objectives()
                    .iter()
                    .all(|&o| o < crate::threads::PANIC_OBJECTIVE / 2.0),
                "sentinel leaked into the archive: {:?}",
                s.objectives()
            );
            assert!(s.variables()[0] <= 0.9);
        }
    }

    #[test]
    fn kill_half_the_worker_threads_mid_run_still_completes() {
        // Half the pool crashes early; the master must reissue their
        // in-flight work and finish the exact budget on the survivors.
        let problem = Zdt::new(ZdtVariant::Zdt1);
        let mut cfg = ThreadedConfig::new(6, 1_200, Some(Dist::Constant(0.000_2)), 17);
        cfg.faults = Some(FaultConfig {
            forced_crashes: (0..3)
                .map(|w| borg_desim::fault::ForcedCrash {
                    worker: w,
                    after_dispatches: 5 + w as u64,
                })
                .collect(),
            ..FaultConfig::default()
        });
        cfg.reissue_timeout = Some(0.05);
        let result = run_threaded(&problem, BorgConfig::new(2, 0.01), &cfg).expect("run");
        assert_eq!(result.engine.nfe(), 1_200);
        assert_eq!(result.tf_samples.len(), 1_200);
        assert_eq!(result.fault_log.injected_of(FaultKind::Crash), 3);
        assert!(result.fault_log.deaths_detected >= 3);
        assert!(result.fault_log.reissues >= 3);
        assert!(result.fault_log.all_recovered());
        result.engine.archive().check_invariants().unwrap();
    }

    #[test]
    fn threaded_crashes_hangs_and_message_faults_complete_the_budget() {
        // The acceptance scenario on real threads: crash rate 0.1 plus 1%
        // message loss (and some duplication) — no deadlock, no panic,
        // full budget on the surviving pool.
        let problem = Zdt::new(ZdtVariant::Zdt1);
        let mut cfg = ThreadedConfig::new(6, 1_000, Some(Dist::Constant(0.000_2)), 23);
        cfg.faults = Some(FaultConfig {
            crash_rate: 0.34, // ~2 of 6 workers doomed at this seed
            drop_rate: 0.01,
            duplicate_rate: 0.01,
            ..FaultConfig::default()
        });
        cfg.reissue_timeout = Some(0.05);
        let result = run_threaded(&problem, BorgConfig::new(2, 0.01), &cfg).expect("run");
        assert_eq!(result.engine.nfe(), 1_000);
        assert!(result.fault_log.all_recovered());
        // Suppression bookkeeping: consumed results == budget exactly, so
        // nothing was double-counted.
        assert_eq!(result.tf_samples.len(), 1_000);
        result.engine.archive().check_invariants().unwrap();
    }

    #[test]
    fn hung_worker_does_not_deadlock_the_run_or_the_join() {
        // One worker hangs on its very first item: the master's deadline
        // reissues the work and the scope join still returns (the hung
        // thread is released by the stop channel).
        let problem = Zdt::new(ZdtVariant::Zdt2);
        let mut cfg = ThreadedConfig::new(3, 400, Some(Dist::Constant(0.000_2)), 31);
        cfg.faults = Some(FaultConfig {
            hang_rate: 0.4, // doom at least one worker at this seed
            ..FaultConfig::default()
        });
        cfg.reissue_timeout = Some(0.05);
        let plan = cfg.fault_plan().expect("plan");
        assert!(plan.doomed_workers() >= 1, "seed should doom a worker");
        let result = run_threaded(&problem, BorgConfig::new(2, 0.01), &cfg).expect("run");
        assert_eq!(result.engine.nfe(), 400);
        assert!(result.fault_log.injected_of(FaultKind::Hang) >= 1);
        assert!(result.fault_log.all_recovered());
    }

    #[test]
    fn fault_free_run_has_empty_ledger() {
        let problem = Zdt::new(ZdtVariant::Zdt1);
        let cfg = ThreadedConfig::new(4, 500, None, 3);
        let result = run_threaded(&problem, BorgConfig::new(2, 0.01), &cfg).expect("run");
        assert_eq!(result.fault_log.injected(), 0);
        assert_eq!(result.fault_log.reissues, 0);
        assert_eq!(result.fault_log.wasted_nfe, 0);
    }

    #[test]
    fn comm_time_estimate_is_plausible() {
        let tc = estimate_comm_time(200).expect("probe");
        assert!(tc > 0.0);
        assert!(tc < 0.01, "thread ping should be far under 10 ms: {tc}");
    }

    #[test]
    fn ta_samples_are_recorded_per_interaction() {
        let problem = Zdt::new(ZdtVariant::Zdt2);
        let cfg = ThreadedConfig {
            workers: 2,
            max_nfe: 500,
            delay: None,
            seed: 4,
            faults: None,
            reissue_timeout: None,
        };
        let result = run_threaded(&problem, BorgConfig::new(2, 0.01), &cfg).expect("run");
        assert!(result.ta_samples.len() as u64 >= 500);
        assert!(result.ta_samples.iter().all(|&t| (0.0..1.0).contains(&t)));
    }
}
