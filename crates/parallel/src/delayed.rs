//! Controlled-delay problem wrapper.
//!
//! The paper's experimental control: the analytical problems evaluate in
//! under a microsecond, so delays of 0.001–0.1 s (CV 0.1) were injected to
//! emulate expensive engineering evaluations. [`DelayedProblem`] applies a
//! real wall-clock delay per evaluation (for the real-thread executor and
//! the examples); the virtual-time executors charge the same distributions
//! on the simulated clock instead.

use borg_core::problem::{Bounds, Problem};
use borg_core::rng::SplitMix64;
use borg_models::dist::Dist;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use std::time::{Duration, Instant};

/// Delays the calling thread for `seconds`.
///
/// Delays of ≥ 200 µs sleep, so concurrent evaluations genuinely overlap
/// even on machines with fewer cores than workers (a spinning delay would
/// serialize them — the whole point of the injected delay is to emulate an
/// evaluation that *waits* on external work, not one that burns a core).
/// Sub-200 µs delays spin for precision.
pub fn precise_delay(seconds: f64) {
    if seconds <= 0.0 {
        return;
    }
    if seconds >= 0.000_2 {
        std::thread::sleep(Duration::from_secs_f64(seconds));
    } else {
        let deadline = Instant::now() + Duration::from_secs_f64(seconds);
        while Instant::now() < deadline {
            std::hint::spin_loop();
        }
    }
}

/// A problem wrapper injecting a sampled wall-clock delay per evaluation.
pub struct DelayedProblem<P> {
    inner: P,
    delay: Dist,
    rng: Mutex<StdRng>,
    name: String,
}

impl<P: Problem> DelayedProblem<P> {
    /// Wraps `inner`, delaying each evaluation by a draw from `delay`.
    pub fn new(inner: P, delay: Dist, seed: u64) -> Self {
        let name = format!("{}+delay", inner.name());
        Self {
            inner,
            delay,
            rng: Mutex::new(SplitMix64::new(seed).derive("delayed-problem")),
            name,
        }
    }

    /// The paper's specification: mean `t_f` seconds with CV 0.1.
    pub fn paper_delay(inner: P, t_f: f64, seed: u64) -> Self {
        Self::new(inner, Dist::normal_cv(t_f, 0.1), seed)
    }

    /// The wrapped problem.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: Problem> Problem for DelayedProblem<P> {
    fn name(&self) -> &str {
        &self.name
    }
    fn num_variables(&self) -> usize {
        self.inner.num_variables()
    }
    fn num_objectives(&self) -> usize {
        self.inner.num_objectives()
    }
    fn num_constraints(&self) -> usize {
        self.inner.num_constraints()
    }
    fn bounds(&self, i: usize) -> Bounds {
        self.inner.bounds(i)
    }
    fn evaluate(&self, vars: &[f64], objs: &mut [f64], cons: &mut [f64]) {
        let delay = {
            let mut rng = self.rng.lock();
            self.delay.sample(&mut *rng)
        };
        precise_delay(delay);
        self.inner.evaluate(vars, objs, cons);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use borg_problems::misc::Schaffer;

    #[test]
    fn delay_wrapper_preserves_semantics() {
        let p = DelayedProblem::new(Schaffer, Dist::Constant(0.0), 1);
        assert_eq!(p.num_variables(), 1);
        assert_eq!(p.num_objectives(), 2);
        assert_eq!(p.name(), "Schaffer+delay");
        let mut objs = [0.0; 2];
        p.evaluate(&[1.0], &mut objs, &mut []);
        assert_eq!(objs, [1.0, 1.0]);
    }

    #[test]
    fn evaluation_takes_at_least_the_delay() {
        let p = DelayedProblem::new(Schaffer, Dist::Constant(0.003), 2);
        let mut objs = [0.0; 2];
        let start = Instant::now();
        p.evaluate(&[0.5], &mut objs, &mut []);
        let elapsed = start.elapsed().as_secs_f64();
        // Lower bound only: the delay must be honoured. Overshoot is the
        // OS scheduler's business — asserting an upper bound on wall-clock
        // sleep makes the test flake on loaded runners.
        assert!(elapsed >= 0.003, "elapsed {elapsed}");
    }

    #[test]
    fn precise_delay_hits_sub_millisecond_targets() {
        for target in [0.0002, 0.001, 0.004] {
            let start = Instant::now();
            precise_delay(target);
            let elapsed = start.elapsed().as_secs_f64();
            // Lower bound only (see above): precision here means "never
            // early", which is what callers charging simulated time need.
            assert!(elapsed >= target);
        }
    }

    #[test]
    fn zero_and_negative_delays_are_noops() {
        let start = Instant::now();
        precise_delay(0.0);
        precise_delay(-1.0);
        assert!(start.elapsed().as_secs_f64() < 0.001);
    }
}
