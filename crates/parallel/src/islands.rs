//! The island-model (multi-master) topology — the paper's named future
//! work (§VII): *"To increase efficiency … on larger-scale parallel
//! systems (> 16,000 processors), it will be necessary to transition to a
//! more adaptive, island-based topology."*
//!
//! Each island is an independent asynchronous master-slave Borg instance
//! with its own master and worker pool; every `migration_interval`
//! island-local evaluations the island broadcasts `migration_size` random
//! archive members to every other island, which injects them into its
//! population and archive. The whole system runs in one deterministic
//! virtual-time discrete-event simulation, so K-island topologies with
//! thousands of total processors can be studied on a single machine.
//!
//! The scalability argument (§VI): one master saturates at
//! `P_UB = T_F / (2 T_C + T_A)`; K masters multiply the aggregate
//! bookkeeping throughput by K, pushing the saturation wall out by a
//! factor of K at the cost of partitioning the population.

use borg_core::algorithm::{BorgConfig, BorgEngine, Candidate};
use borg_core::problem::Problem;
use borg_core::rng::SplitMix64;
use borg_desim::queue::EventQueue;
use borg_models::dist::Dist;
use rand::rngs::StdRng;
use rand::Rng;
use std::time::Instant;

use crate::virtual_exec::TaMode;

/// Configuration of an island-model run.
#[derive(Debug, Clone)]
pub struct IslandConfig {
    /// Number of islands (each gets one master).
    pub islands: usize,
    /// Workers per island.
    pub workers_per_island: usize,
    /// Total evaluations across all islands.
    pub max_nfe: u64,
    /// Evaluation-delay distribution.
    pub t_f: Dist,
    /// One-way message-time distribution.
    pub t_c: Dist,
    /// Master algorithm-time source.
    pub t_a: TaMode,
    /// Island-local evaluations between migration broadcasts
    /// (0 disables migration).
    pub migration_interval: u64,
    /// Archive members broadcast per migration event.
    pub migration_size: usize,
    /// Root seed.
    pub seed: u64,
}

impl IslandConfig {
    /// Splits a total processor budget `p` into `islands` equal instances
    /// (each island gets `p/islands − 1` workers).
    pub fn split_processors(p: u32, islands: usize, max_nfe: u64, t_f: Dist) -> Self {
        assert!(islands >= 1);
        let per_island = (p as usize) / islands;
        assert!(per_island >= 2, "each island needs a master and a worker");
        Self {
            islands,
            workers_per_island: per_island - 1,
            max_nfe,
            t_f,
            t_c: Dist::Constant(0.000_006),
            t_a: TaMode::Measured,
            migration_interval: 1_000,
            migration_size: 4,
            seed: 0xA11A,
        }
    }
}

/// Result of an island-model run.
#[derive(Debug)]
pub struct IslandRunResult {
    /// Virtual elapsed time until the last consumed evaluation.
    pub elapsed: f64,
    /// Final per-island engines.
    pub engines: Vec<BorgEngine>,
    /// Total evaluations consumed.
    pub total_nfe: u64,
    /// Migration broadcasts performed.
    pub migrations: u64,
    /// Mean master utilization across islands.
    pub mean_master_utilization: f64,
}

impl IslandRunResult {
    /// Union of all island archives (objective vectors), non-dominated
    /// filtering left to the caller's metric.
    pub fn merged_archive(&self) -> Vec<Vec<f64>> {
        self.engines
            .iter()
            .flat_map(|e| e.archive().objective_rows().iter_rows())
            .map(|row| row.to_vec())
            .collect()
    }
}

#[derive(Debug, Clone, Copy)]
struct ResultReady {
    island: usize,
    worker: usize,
}

/// A produced candidate with its eagerly computed objectives/constraints,
/// awaiting its virtual evaluation delay.
type PendingResult = Option<(Candidate, Vec<f64>, Vec<f64>)>;

struct Island {
    engine: BorgEngine,
    pending: Vec<PendingResult>,
    master_free_at: f64,
    busy: f64,
    consumed: u64,
    since_migration: u64,
}

/// Runs the island-model Borg MOEA in virtual time.
pub fn run_islands<P: Problem + ?Sized>(
    problem: &P,
    borg: BorgConfig,
    config: &IslandConfig,
) -> IslandRunResult {
    assert!(config.islands >= 1);
    assert!(config.workers_per_island >= 1);
    assert!(config.max_nfe >= 1);

    let mut split = SplitMix64::new(config.seed);
    let mut rng: StdRng = split.derive("islands-delays");
    let mut islands: Vec<Island> = (0..config.islands)
        .map(|_| Island {
            engine: BorgEngine::new(problem, borg.clone(), split.derive_seed("island-engine")),
            pending: (0..config.workers_per_island).map(|_| None).collect(),
            master_free_at: 0.0,
            busy: 0.0,
            consumed: 0,
            since_migration: 0,
        })
        .collect();

    let mut objs = vec![0.0; problem.num_objectives()];
    let mut cons = vec![0.0; problem.num_constraints()];
    let mut queue: EventQueue<ResultReady> = EventQueue::new();
    let sample_ta = |rng: &mut StdRng, mode: &TaMode, real: f64| match mode {
        TaMode::Measured => real,
        TaMode::Sampled(d) => d.sample(rng),
    };

    // Seed every island's workers.
    for (i, island) in islands.iter_mut().enumerate() {
        for w in 0..config.workers_per_island {
            let t0 = Instant::now();
            let cand = island.engine.produce();
            let real = t0.elapsed().as_secs_f64();
            problem.evaluate(&cand.variables, &mut objs, &mut cons);
            island.pending[w] = Some((cand, objs.clone(), cons.clone()));
            let ta = sample_ta(&mut rng, &config.t_a, real);
            let tc = config.t_c.sample(&mut rng);
            let start_eval = island.master_free_at + ta + tc;
            island.busy += ta + tc;
            island.master_free_at = start_eval;
            let tf = config.t_f.sample(&mut rng);
            queue.schedule_at(
                start_eval + tf,
                ResultReady {
                    island: i,
                    worker: w,
                },
            );
        }
    }

    let mut total_consumed = 0u64;
    let mut migrations = 0u64;
    let mut elapsed = 0.0f64;

    while let Some((ready_at, ev)) = queue.pop() {
        let i = ev.island;
        let w = ev.worker;
        let grant = islands[i].master_free_at.max(ready_at);
        let tc_in = config.t_c.sample(&mut rng);

        // Consume.
        // A completion event for an empty slot can only mean a scheduling
        // bug in this event loop itself; panicking immediately (rather than
        // propagating) is the correct response to a corrupted simulation.
        // borg-lint: allow(BORG-L001)
        let (cand, o, c) = islands[i].pending[w].take().expect("missing result");
        let t0 = Instant::now();
        let sol = islands[i].engine.make_solution(cand, o, c);
        islands[i].engine.consume(sol);
        let consume_real = t0.elapsed().as_secs_f64();
        let ta_c = sample_ta(&mut rng, &config.t_a, consume_real);
        islands[i].consumed += 1;
        islands[i].since_migration += 1;
        total_consumed += 1;

        if total_consumed >= config.max_nfe {
            let end = grant + tc_in + ta_c;
            islands[i].busy += tc_in + ta_c;
            elapsed = end;
            break;
        }

        // Migration broadcast: the sending master pays one T_C per
        // outgoing message inside its current hold; receivers absorb the
        // migrants instantly (their master-side injection cost is folded
        // into their next measured T_A).
        let mut migration_cost = 0.0;
        if config.migration_interval > 0
            && config.islands > 1
            && islands[i].since_migration >= config.migration_interval
        {
            islands[i].since_migration = 0;
            migrations += 1;
            let migrants: Vec<_> = {
                let archive = islands[i].engine.archive().solutions();
                (0..config.migration_size.min(archive.len()))
                    .map(|_| archive[rng.gen_range(0..archive.len())].clone())
                    .collect()
            };
            for j in 0..config.islands {
                if j == i {
                    continue;
                }
                migration_cost += config.t_c.sample(&mut rng);
                for m in &migrants {
                    islands[j].engine.inject(m.clone());
                }
            }
        }

        // Produce the worker's next candidate.
        let t1 = Instant::now();
        let cand = islands[i].engine.produce();
        let produce_real = t1.elapsed().as_secs_f64();
        problem.evaluate(&cand.variables, &mut objs, &mut cons);
        islands[i].pending[w] = Some((cand, objs.clone(), cons.clone()));
        let ta_p = match config.t_a {
            TaMode::Measured => produce_real,
            // Sampled T_A covers the whole interaction (charged at consume).
            TaMode::Sampled(_) => 0.0,
        };
        let tc_out = config.t_c.sample(&mut rng);
        let hold_end = grant + tc_in + ta_c + ta_p + migration_cost + tc_out;
        islands[i].busy += tc_in + ta_c + ta_p + migration_cost + tc_out;
        islands[i].master_free_at = hold_end;
        let tf = config.t_f.sample(&mut rng);
        queue.schedule_at(
            hold_end + tf,
            ResultReady {
                island: i,
                worker: w,
            },
        );
        elapsed = hold_end;
    }

    let mean_util = islands
        .iter()
        .map(|is| is.busy / elapsed.max(1e-300))
        .sum::<f64>()
        / islands.len() as f64;
    IslandRunResult {
        elapsed,
        total_nfe: total_consumed,
        migrations,
        mean_master_utilization: mean_util.min(1.0),
        engines: islands.into_iter().map(|is| is.engine).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use borg_problems::dtlz::Dtlz;

    fn base_config(islands: usize, workers: usize, nfe: u64) -> IslandConfig {
        IslandConfig {
            islands,
            workers_per_island: workers,
            max_nfe: nfe,
            t_f: Dist::Constant(0.001),
            t_c: Dist::Constant(0.000_006),
            t_a: TaMode::Sampled(Dist::Constant(0.000_03)),
            migration_interval: 500,
            migration_size: 4,
            seed: 3,
        }
    }

    #[test]
    fn islands_complete_the_budget() {
        let problem = Dtlz::dtlz2_5();
        let result = run_islands(&problem, BorgConfig::new(5, 0.1), &base_config(4, 8, 4_000));
        assert_eq!(result.total_nfe, 4_000);
        assert_eq!(result.engines.len(), 4);
        assert!(result.migrations > 0);
        for e in &result.engines {
            assert!(e.nfe() > 0);
            e.archive().check_invariants().unwrap();
        }
        assert!(!result.merged_archive().is_empty());
    }

    #[test]
    fn single_island_matches_master_slave_throughput() {
        // One island degenerates to the plain asynchronous master-slave
        // topology; elapsed must match the queueing analysis.
        let problem = Dtlz::dtlz2_5();
        let mut cfg = base_config(1, 16, 5_000);
        cfg.t_f = Dist::Constant(0.01);
        cfg.migration_interval = 0;
        let result = run_islands(&problem, BorgConfig::new(5, 0.1), &cfg);
        let eq2 = borg_models::analytical::async_parallel_time(
            5_000,
            17,
            borg_models::analytical::TimingParams::new(0.01, 0.000_006, 0.000_03),
        );
        let err = (result.elapsed - eq2).abs() / eq2;
        assert!(err < 0.02, "island(1) {} vs Eq.2 {}", result.elapsed, eq2);
    }

    #[test]
    fn islands_beat_single_master_past_saturation() {
        // The §VII claim: with T_F small enough to saturate one master,
        // splitting the same processor budget into islands multiplies the
        // aggregate master throughput.
        let problem = Dtlz::dtlz2_5();
        let nfe = 10_000;
        let total_workers = 256;
        let mut single = base_config(1, total_workers, nfe);
        single.t_f = Dist::Constant(0.0005);
        let mut quad = base_config(8, total_workers / 8, nfe);
        quad.t_f = Dist::Constant(0.0005);
        let t_single = run_islands(&problem, BorgConfig::new(5, 0.1), &single).elapsed;
        let t_quad = run_islands(&problem, BorgConfig::new(5, 0.1), &quad).elapsed;
        assert!(
            t_quad < t_single * 0.5,
            "8 islands ({t_quad}) should be >2x faster than one saturated master ({t_single})"
        );
    }

    #[test]
    fn migration_spreads_good_solutions() {
        // With migration, island archives overlap; without, they drift
        // apart. Check migration produces a merged archive whose
        // non-dominated filter is not much larger than a single island's
        // (i.e. islands agree).
        let problem = Dtlz::dtlz2_5();
        let mut with = base_config(4, 4, 8_000);
        with.migration_interval = 250;
        let mut without = with.clone();
        without.migration_interval = 0;
        let a = run_islands(&problem, BorgConfig::new(5, 0.1), &with);
        let b = run_islands(&problem, BorgConfig::new(5, 0.1), &without);
        assert!(a.migrations > 0);
        assert_eq!(b.migrations, 0);
        // Both still complete and hold invariants.
        assert_eq!(a.total_nfe, 8_000);
        assert_eq!(b.total_nfe, 8_000);
    }

    #[test]
    fn deterministic_with_sampled_ta() {
        let problem = Dtlz::dtlz2_5();
        let cfg = base_config(3, 5, 3_000);
        let a = run_islands(&problem, BorgConfig::new(5, 0.1), &cfg);
        let b = run_islands(&problem, BorgConfig::new(5, 0.1), &cfg);
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.merged_archive(), b.merged_archive());
    }

    #[test]
    #[should_panic(expected = "each island needs a master and a worker")]
    fn split_requires_two_processors_per_island() {
        IslandConfig::split_processors(8, 8, 100, Dist::Constant(0.001));
    }
}
