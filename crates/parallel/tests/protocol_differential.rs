//! Differential equivalence of the shared protocol core across adapters.
//!
//! The same seeded timing/fault scenario runs twice through the
//! [`MasterEngine`]: once via the bare DES adapter with constant-time
//! hooks, once via the virtual-time executor carrying the real Borg
//! algorithm. The recorded [`Command`] traces, recovery ledgers, and
//! queueing outcomes must be identical to the bit — the protocol's
//! decisions depend only on the event stream (timing values and the fault
//! plan), never on which executor hosts it or what payload rides on it.
//!
//! [`MasterEngine`]: borg_protocol::MasterEngine
//! [`Command`]: borg_protocol::Command

use borg_core::algorithm::BorgConfig;
use borg_desim::fault::FaultConfig;
use borg_models::dist::Dist;
use borg_models::queueing::{run_async_faulty_traced, FaultTolerantHooks};
use borg_obs::NoopRecorder;
use borg_parallel::prelude::*;
use borg_parallel::virtual_exec::VirtualConfig;
use borg_problems::zdt::{Zdt, ZdtVariant};
use proptest::prelude::*;

/// Constant-time hooks mirroring the virtual adapter's
/// `TaMode::Sampled(Dist::Constant(..))` semantics: the first `workers`
/// fresh productions charge `T_A` (pipeline seeding); later productions
/// are folded into the preceding consume and charge nothing extra.
struct ConstHooks {
    ta: f64,
    tf: f64,
    tc: f64,
    produced: usize,
    workers: usize,
}

impl FaultTolerantHooks for ConstHooks {
    fn produce(&mut self, _worker: usize, _eval_id: u64, _now: f64) -> f64 {
        if self.produced < self.workers {
            self.produced += 1;
            self.ta
        } else {
            0.0
        }
    }

    fn evaluation_time(&mut self, _worker: usize, _eval_id: u64) -> f64 {
        self.tf
    }

    fn consume(&mut self, _worker: usize, _eval_id: u64, _now: f64) -> f64 {
        self.ta
    }

    fn comm_time(&mut self) -> f64 {
        self.tc
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn des_and_virtual_adapters_emit_identical_traces_and_ledgers(
        workers in 1usize..8,
        n in 1u64..150,
        tf in 0.5f64..2.0,
        tc in 0.000_1f64..0.01,
        ta in 0.000_1f64..0.05,
        crash_rate in 0.0f64..0.5,
        hang_rate in 0.0f64..0.3,
        straggler_rate in 0.0f64..0.3,
        straggler_factor in 1.0f64..6.0,
        drop_rate in 0.0f64..0.15,
        duplicate_rate in 0.0f64..0.15,
        respawn_after in prop_oneof![
            Just(None),
            (0.5f64..5.0).prop_map(Some),
        ],
        seed in 0u64..u64::MAX,
    ) {
        let faults = FaultConfig {
            crash_rate,
            hang_rate,
            straggler_rate,
            straggler_factor,
            drop_rate,
            duplicate_rate,
            respawn_after,
            forced_crashes: Vec::new(),
        };
        let vcfg = VirtualConfig {
            processors: workers as u32 + 1,
            max_nfe: n,
            t_f: Dist::Constant(tf),
            t_c: Dist::Constant(tc),
            t_a: TaMode::Sampled(Dist::Constant(ta)),
            seed,
        };
        let policy = default_recovery_policy(&vcfg);

        // Arm 1: the virtual-time executor (real Borg algorithm payload).
        let (virt, virt_cmds) = run_virtual_async_faulty_traced(
            &Zdt::new(ZdtVariant::Zdt1),
            BorgConfig::new(2, 0.01),
            &vcfg,
            &faults,
            policy,
            &NoopRecorder,
            |_, _| {},
        );

        // Arm 2: the bare DES adapter (no algorithm, constant hooks), fed
        // the same fault plan and policy.
        let plan = fault_plan_for(&vcfg, &faults);
        let mut hooks = ConstHooks {
            ta,
            tf,
            tc,
            produced: 0,
            workers,
        };
        let (des, des_cmds) = run_async_faulty_traced(
            &mut hooks,
            workers,
            n,
            &plan,
            policy,
            &NoopRecorder,
        );

        // The protocol transcript is executor-independent.
        prop_assert_eq!(&virt_cmds, &des_cmds);
        // So is the recovery ledger, record for record...
        prop_assert_eq!(&virt.fault_log, &des.fault_log);
        // ...and the queueing outcome, to the bit.
        prop_assert_eq!(&virt.outcome, &des.outcome);
    }
}
