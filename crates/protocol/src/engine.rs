//! The [`MasterEngine`] state machine.

use crate::command::{Command, Event};
use crate::policy::RecoveryPolicy;
use crate::Clock;
use borg_desim::fault::FaultLog;
use borg_obs::Recorder;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Counter fed once per emitted [`Command`] (the per-command hook).
fn command_metric(c: &Command) -> &'static str {
    match c {
        Command::Dispatch { .. } => "engine.commands.dispatch",
        Command::Consume { .. } => "engine.commands.consume",
        Command::SuppressDuplicate { .. } => "engine.commands.suppress_duplicate",
        Command::Ping { .. } => "engine.commands.ping",
        Command::RetireWorker { .. } => "engine.commands.retire_worker",
        Command::Abandon { .. } => "engine.commands.abandon",
        Command::RearmHeartbeat => "engine.commands.rearm_heartbeat",
        Command::Finish => "engine.commands.finish",
    }
}

/// Counter fed once per handled [`Event`] (the per-event hook).
fn event_metric(e: &Event) -> &'static str {
    match e {
        Event::ResultArrived { .. } => "engine.events.result_arrived",
        Event::DeadlineFired { .. } => "engine.events.deadline_fired",
        Event::HeartbeatTick { .. } => "engine.events.heartbeat_tick",
        Event::WorkerDied { .. } => "engine.events.worker_died",
        Event::WorkerRespawned { .. } => "engine.events.worker_respawned",
    }
}

/// Flight-recorder coordinates of a [`Command`]: `(worker, eval_id, x)`
/// with `u64::MAX` for "not applicable" and the dispatch attempt in `x`.
fn command_coords(c: &Command) -> (u64, u64, f64) {
    match c {
        Command::Dispatch {
            worker,
            eval_id,
            attempt,
        } => (*worker as u64, *eval_id, f64::from(*attempt)),
        Command::Consume { worker, eval_id } | Command::SuppressDuplicate { worker, eval_id } => {
            (*worker as u64, *eval_id, 0.0)
        }
        Command::Ping { worker } | Command::RetireWorker { worker } => {
            (*worker as u64, u64::MAX, 0.0)
        }
        Command::Abandon { eval_id } => (u64::MAX, *eval_id, 0.0),
        Command::RearmHeartbeat | Command::Finish => (u64::MAX, u64::MAX, 0.0),
    }
}

/// Flight-recorder coordinates of an [`Event`]: `(at, worker, eval_id)`.
fn event_coords(e: &Event) -> (f64, u64, u64) {
    match e {
        Event::ResultArrived {
            worker,
            eval_id,
            at,
        } => (*at, *worker as u64, *eval_id),
        Event::DeadlineFired {
            eval_id,
            worker,
            at,
            ..
        } => (*at, *worker as u64, *eval_id),
        Event::HeartbeatTick { at } => (*at, u64::MAX, u64::MAX),
        Event::WorkerDied {
            worker,
            at,
            lost_eval,
            ..
        } => (*at, *worker as u64, lost_eval.unwrap_or(u64::MAX)),
        Event::WorkerRespawned { worker, at } => (*at, *worker as u64, u64::MAX),
    }
}

/// Asynchronous pipeline vs generational barrier — the protocol-level
/// distinction the paper studies (its Fig. 1 topologies), expressed as a
/// mode of one engine rather than separate implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolMode {
    /// Steady-state pipeline: every consumed result immediately funds the
    /// next dispatch.
    Async,
    /// Generational barrier (Cantú-Paz's topology): the master consumes a
    /// whole generation, then dispatches the next one en bloc.
    Sync,
}

/// How dispatch targets relate to physical workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolDiscipline {
    /// The master assigns work to a specific worker and tracks per-worker
    /// liveness beliefs (the DES and virtual-time executors): reissues
    /// prefer the pinged worker, then an idle one, else queue.
    Assigned,
    /// Workers pull from a shared queue (the real-thread executor):
    /// dispatch targets are notional, any live worker picks the item up,
    /// so reissues always go out immediately and nothing parks idle.
    Shared,
}

/// Whether the master keeps dispatching past the point where outstanding
/// work covers the budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// Dispatch after every consume unconditionally (the fault-free
    /// asynchronous master: a few tail evaluations are still in flight
    /// when the budget completes — exactly the paper's topology).
    Eager,
    /// Stop dispatching fresh work once `completed + outstanding +
    /// abandoned` covers the budget (the fault-tolerant masters, which
    /// must terminate even when reissues inflate the in-flight set).
    Budgeted,
}

/// Static shape of a protocol run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Dispatch slots. `Async`: the worker pool (`P − 1`). `Sync`: the
    /// generation width — workers *plus* the self-evaluating master.
    pub workers: usize,
    /// Results to consume before the protocol finishes.
    pub budget: u64,
    /// Deadline / heartbeat / reissue-cap policy.
    pub policy: RecoveryPolicy,
    /// Pipeline vs generational.
    pub mode: ProtocolMode,
    /// Assigned vs shared worker pool.
    pub discipline: PoolDiscipline,
    /// Eager vs budgeted dispatch.
    pub dispatch_policy: DispatchPolicy,
}

impl EngineConfig {
    /// The fault-free asynchronous protocol (no deadlines, no sweep).
    pub fn fault_free_async(workers: usize, budget: u64) -> Self {
        EngineConfig {
            workers,
            budget,
            policy: RecoveryPolicy::disabled(),
            mode: ProtocolMode::Async,
            discipline: PoolDiscipline::Assigned,
            dispatch_policy: DispatchPolicy::Eager,
        }
    }

    /// The fault-tolerant asynchronous protocol on an assigned pool (the
    /// DES / virtual-time executors).
    pub fn fault_tolerant_async(workers: usize, budget: u64, policy: RecoveryPolicy) -> Self {
        EngineConfig {
            workers,
            budget,
            policy,
            mode: ProtocolMode::Async,
            discipline: PoolDiscipline::Assigned,
            dispatch_policy: DispatchPolicy::Budgeted,
        }
    }

    /// The asynchronous protocol on a shared pull queue (the real-thread
    /// executor): deadline reissue without the heartbeat sweep — thread
    /// deaths are reported out-of-band by the transport.
    pub fn shared_pool_async(workers: usize, budget: u64, policy: RecoveryPolicy) -> Self {
        EngineConfig {
            workers,
            budget,
            policy: RecoveryPolicy {
                heartbeat_interval: f64::INFINITY,
                ..policy
            },
            mode: ProtocolMode::Async,
            discipline: PoolDiscipline::Shared,
            dispatch_policy: DispatchPolicy::Budgeted,
        }
    }

    /// The generational synchronous protocol (`slots` = workers + the
    /// self-evaluating master).
    pub fn sync_generational(slots: usize, budget: u64) -> Self {
        EngineConfig {
            workers: slots,
            budget,
            policy: RecoveryPolicy::disabled(),
            mode: ProtocolMode::Sync,
            discipline: PoolDiscipline::Assigned,
            dispatch_policy: DispatchPolicy::Eager,
        }
    }
}

/// The executor-specific half of the protocol. The engine decides *what*
/// happens; the transport performs it in its own notion of time and
/// returns the timestamps the recovery ledger needs. Call order is part
/// of the contract: adapters sample RNGs inside these calls, so the
/// engine invokes them in one deterministic order per event.
pub trait Transport: Clock {
    /// Send `eval_id` to `worker` (`attempt` 0 = fresh produce, else
    /// reissue; `seq` counts dispatches to this worker, for fate plans).
    /// Returns the deadline for this dispatch — `f64::INFINITY` when no
    /// deadline is being watched. `log` is the run's shared ledger:
    /// simulated transports record the faults they inject here (the engine
    /// itself only ever records detections and recoveries).
    fn dispatch(
        &mut self,
        worker: usize,
        eval_id: u64,
        attempt: u32,
        seq: u64,
        log: &mut FaultLog,
    ) -> f64;

    /// Master absorbs the result of `eval_id` from `worker` that became
    /// ready at `ready_at`; returns the time processing completed.
    fn consume(&mut self, worker: usize, eval_id: u64, ready_at: f64) -> f64;

    /// Master absorbs and discards a duplicate/superseded result message;
    /// returns the time the message was absorbed.
    fn absorb_duplicate(&mut self, worker: usize, eval_id: u64, ready_at: f64) -> f64;

    /// Ping `worker` after a deadline miss (one round trip of master
    /// time); returns `(start, end)` of the probe.
    fn ping(&mut self, worker: usize) -> (f64, f64);

    /// Re-arm the liveness sweep to tick at `at`.
    fn rearm_heartbeat(&mut self, at: f64);

    /// `eval_id` exhausted its reissue budget and was abandoned.
    fn abandon(&mut self, eval_id: u64);

    /// A result arrived for an id the master never dispatched — transport
    /// corruption in a real executor, a stale message in simulated ones.
    fn unknown_result(&mut self, _worker: usize, _eval_id: u64) {}
}

#[derive(Debug, Clone, Copy)]
struct Outstanding {
    worker: usize,
    deadline: f64,
    attempts: u32,
}

/// The pure, deterministic master state machine.
///
/// Feed it [`Event`]s via [`MasterEngine::handle`]; it updates its
/// beliefs (outstanding deadlines, seen eval ids, per-worker liveness),
/// writes the recovery ledger, and drives the [`Transport`]. It holds
/// every piece of state the three executors used to triplicate:
/// the deadline map, the seen-eval-id set, the reissue queue, attempt
/// counters, and the alive/believed-alive distinction.
///
/// `Clone` exists for the model checker (`borg-mc`): exhaustive
/// schedule exploration forks the engine at every branch point.
#[derive(Clone)]
pub struct MasterEngine {
    config: EngineConfig,
    // Identity of work.
    next_eval: u64,
    completed: u64,
    abandoned: u64,
    // Recovery state (the formerly triplicated core).
    outstanding: BTreeMap<u64, Outstanding>,
    done: BTreeSet<u64>,
    reissue_queue: VecDeque<u64>,
    idle: BTreeSet<usize>,
    // Physical truth vs the master's beliefs.
    alive: Vec<bool>,
    dead_since: Vec<f64>,
    view_alive: Vec<bool>,
    current_eval: Vec<Option<u64>>,
    dispatch_count: Vec<u64>,
    pending_respawns: usize,
    // Sync mode: results still owed by the running generation.
    gen_remaining: usize,
    finished: bool,
    log: FaultLog,
    commands: Option<Vec<Command>>,
    // Timestamp of the event being handled, stamped onto the flight
    // record of every command it causes. Observability-only: excluded
    // from `state_digest` (it is derived from the event stream, never
    // consulted by a decision).
    flight_now: f64,
    // Mutation hook for the model checker's self-test: when false, the
    // duplicate-suppression check in `handle_arrival` is skipped, which
    // must make `borg-mc` report a double-consume violation.
    suppress_duplicates: bool,
}

impl MasterEngine {
    /// A fresh engine; call [`MasterEngine::seed`] to dispatch the
    /// initial work.
    pub fn new(config: EngineConfig) -> Self {
        assert!(config.workers >= 1, "need at least one worker");
        assert!(config.budget >= 1, "need at least one evaluation");
        let w = config.workers;
        MasterEngine {
            config,
            next_eval: 0,
            completed: 0,
            abandoned: 0,
            outstanding: BTreeMap::new(),
            done: BTreeSet::new(),
            reissue_queue: VecDeque::new(),
            idle: BTreeSet::new(),
            alive: vec![true; w],
            dead_since: vec![0.0; w],
            view_alive: vec![true; w],
            current_eval: vec![None; w],
            dispatch_count: vec![0; w],
            pending_respawns: 0,
            gen_remaining: 0,
            finished: false,
            log: FaultLog::default(),
            commands: None,
            flight_now: 0.0,
            suppress_duplicates: true,
        }
    }

    /// Disable the duplicate-suppression check in the arrival path.
    ///
    /// This exists solely so the model checker's mutation self-test can
    /// prove its invariants have teeth: with suppression off, a schedule
    /// that delivers both copies of a duplicated result must consume the
    /// same eval id twice, which `borg-mc` must flag. Never call this
    /// outside that self-test.
    #[doc(hidden)]
    pub fn sabotage_duplicate_suppression(&mut self) {
        self.suppress_duplicates = false;
    }

    /// Record every [`Command`] for later inspection (differential tests,
    /// event-ordering assertions). Off by default — the hot path stays
    /// allocation-free.
    pub fn record_commands(&mut self) {
        self.commands = Some(Vec::new());
    }

    /// The commands recorded so far (empty unless
    /// [`MasterEngine::record_commands`] was called).
    pub fn take_commands(&mut self) -> Vec<Command> {
        self.commands.take().unwrap_or_default()
    }

    fn emit<R: Recorder + ?Sized>(&mut self, rec: &R, c: Command) {
        rec.counter(command_metric(&c), 1);
        let (worker, eval_id, x) = command_coords(&c);
        rec.flight(command_metric(&c), self.flight_now, worker, eval_id, x);
        if let Some(cs) = self.commands.as_mut() {
            cs.push(c);
        }
    }

    /// Results consumed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Evaluations currently in flight.
    pub fn outstanding_len(&self) -> usize {
        self.outstanding.len()
    }

    /// Evaluations given up past the reissue cap.
    pub fn abandoned(&self) -> u64 {
        self.abandoned
    }

    /// Whether the budget is complete.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// The shared recovery ledger. Transports record *injections* (ground
    /// truth about faults they created or observed) here; the engine
    /// records detections and recoveries.
    pub fn log_mut(&mut self) -> &mut FaultLog {
        &mut self.log
    }

    /// Read access to the ledger.
    pub fn log(&self) -> &FaultLog {
        &self.log
    }

    /// Consume the engine, yielding the ledger.
    pub fn into_log(self) -> FaultLog {
        self.log
    }

    /// Outstanding evaluations whose deadline is at or before `now`, as
    /// `(eval_id, worker, deadline_bits)` — the shared-pool adapter polls
    /// this on its tick and feeds each back as [`Event::DeadlineFired`].
    pub fn expired_deadlines(&self, now: f64) -> Vec<(u64, usize, u64)> {
        self.outstanding
            .iter()
            .filter(|(_, o)| o.deadline <= now)
            .map(|(&id, o)| (id, o.worker, o.deadline.to_bits()))
            .collect()
    }

    /// A 64-bit digest over every decision-relevant field of the engine.
    ///
    /// Two engines with equal digests react identically to every future
    /// event sequence (modulo hash collisions): the digest covers work
    /// identity, the whole recovery core, liveness beliefs, and the
    /// ledger counters. The model checker keys its visited-state memo on
    /// this, which is what lets it fold interleavings that commute into
    /// the same state instead of re-exploring the subtree.
    pub fn state_digest(&self) -> u64 {
        // SplitMix64 finalizer, same construction as borg-desim's fault
        // plan hashing; re-derived locally to keep the digest definition
        // self-contained in this file.
        fn mix(mut z: u64) -> u64 {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn fold(h: u64, v: u64) -> u64 {
            mix(h ^ v)
        }
        let mut h = 0x243F_6A88_85A3_08D3u64;
        h = fold(h, self.next_eval);
        h = fold(h, self.completed);
        h = fold(h, self.abandoned);
        h = fold(h, u64::from(self.finished));
        h = fold(h, self.gen_remaining as u64);
        h = fold(h, self.pending_respawns as u64);
        h = fold(h, u64::from(self.suppress_duplicates));
        h = fold(h, self.outstanding.len() as u64);
        for (&id, o) in &self.outstanding {
            h = fold(h, id);
            h = fold(h, o.worker as u64);
            h = fold(h, o.deadline.to_bits());
            h = fold(h, u64::from(o.attempts));
        }
        h = fold(h, self.done.len() as u64);
        for &id in &self.done {
            h = fold(h, id);
        }
        h = fold(h, self.reissue_queue.len() as u64);
        for &id in &self.reissue_queue {
            h = fold(h, id);
        }
        h = fold(h, self.idle.len() as u64);
        for &w in &self.idle {
            h = fold(h, w as u64);
        }
        for w in 0..self.config.workers {
            h = fold(h, u64::from(self.alive.get(w).copied().unwrap_or(false)));
            h = fold(
                h,
                u64::from(self.view_alive.get(w).copied().unwrap_or(false)),
            );
            h = fold(
                h,
                self.dead_since
                    .get(w)
                    .copied()
                    .unwrap_or(f64::NAN)
                    .to_bits(),
            );
            h = fold(
                h,
                self.current_eval
                    .get(w)
                    .copied()
                    .flatten()
                    .map_or(u64::MAX, |id| id),
            );
            h = fold(h, self.dispatch_count.get(w).copied().unwrap_or(0));
        }
        h = fold(h, self.log.records.len() as u64);
        h = fold(h, self.log.reissues);
        h = fold(h, self.log.duplicates_suppressed);
        h = fold(h, self.log.wasted_nfe);
        h = fold(h, self.log.respawns);
        h = fold(h, self.log.deaths_detected);
        h
    }

    /// Dispatch the initial work: one item per slot, in slot order, plus
    /// the first heartbeat when the policy sweeps. `rec` observes but
    /// never influences the protocol (pass [`borg_obs::NoopRecorder`] for
    /// a free no-op).
    pub fn seed<T: Transport, R: Recorder + ?Sized>(&mut self, t: &mut T, rec: &R) {
        self.flight_now = t.now();
        for w in 0..self.config.workers {
            let id = self.next_eval;
            self.next_eval += 1;
            self.dispatch(t, rec, w, id, 0);
        }
        if self.config.mode == ProtocolMode::Sync {
            self.gen_remaining = self.config.workers;
        }
        if self.config.policy.heartbeat_interval.is_finite() {
            self.emit(rec, Command::RearmHeartbeat);
            t.rearm_heartbeat(self.config.policy.heartbeat_interval);
        }
    }

    /// Advance the protocol by one event. `rec` receives one counter per
    /// event and per emitted command, the latency/slack histograms, and
    /// the occupancy gauges; it never influences the decisions.
    pub fn handle<T: Transport, R: Recorder + ?Sized>(&mut self, event: Event, t: &mut T, rec: &R) {
        // A corrupt transport could name a worker slot the engine never
        // configured; indexing the per-worker vectors with it would
        // panic. Reject such events up front instead (BORG-L012: public
        // entry points of this crate must not panic on bad input).
        let named_worker = match event {
            Event::ResultArrived { worker, .. }
            | Event::DeadlineFired { worker, .. }
            | Event::WorkerDied { worker, .. }
            | Event::WorkerRespawned { worker, .. } => Some(worker),
            Event::HeartbeatTick { .. } => None,
        };
        if named_worker.is_some_and(|w| w >= self.config.workers) {
            rec.counter("engine.events.rejected", 1);
            return;
        }
        rec.counter(event_metric(&event), 1);
        let (at, fw, fe) = event_coords(&event);
        rec.flight(event_metric(&event), at, fw, fe, 0.0);
        self.flight_now = at;
        match event {
            Event::ResultArrived {
                worker,
                eval_id,
                at,
            } => self.handle_arrival(t, rec, at, worker, eval_id),
            Event::DeadlineFired {
                eval_id,
                worker,
                deadline_bits,
                ..
            } => self.handle_deadline(t, rec, eval_id, worker, deadline_bits),
            Event::HeartbeatTick { at } => self.handle_heartbeat(t, rec, at),
            Event::WorkerDied {
                worker,
                at,
                will_respawn,
                lost_eval,
            } => self.handle_death(t, rec, worker, at, will_respawn, lost_eval),
            Event::WorkerRespawned { worker, .. } => self.handle_respawn(t, rec, worker),
        }
        rec.gauge("engine.outstanding", self.outstanding.len() as f64);
        rec.gauge("engine.idle_workers", self.idle.len() as f64);
    }

    /// Produce (or re-send) `eval_id` to `worker`.
    fn dispatch<T: Transport, R: Recorder + ?Sized>(
        &mut self,
        t: &mut T,
        rec: &R,
        worker: usize,
        eval_id: u64,
        attempts: u32,
    ) {
        if attempts > 0 {
            self.log.reissues += 1;
            rec.counter("engine.reissues", 1);
        }
        self.current_eval[worker] = Some(eval_id);
        self.idle.remove(&worker);
        let seq = self.dispatch_count[worker];
        self.dispatch_count[worker] += 1;
        self.emit(
            rec,
            Command::Dispatch {
                worker,
                eval_id,
                attempt: attempts,
            },
        );
        let sent_at = t.now();
        let deadline = t.dispatch(worker, eval_id, attempts, seq, &mut self.log);
        rec.observe("engine.dispatch_latency_seconds", t.now() - sent_at);
        self.outstanding.insert(
            eval_id,
            Outstanding {
                worker,
                deadline,
                attempts,
            },
        );
    }

    /// Give a freed worker its next assignment: queued reissues first,
    /// then fresh work, otherwise park it idle.
    fn assign_next<T: Transport, R: Recorder + ?Sized>(
        &mut self,
        t: &mut T,
        rec: &R,
        worker: usize,
    ) {
        self.current_eval[worker] = None;
        if self.config.discipline == PoolDiscipline::Assigned && !self.view_alive[worker] {
            return;
        }
        if self.config.discipline == PoolDiscipline::Assigned {
            while let Some(id) = self.reissue_queue.pop_front() {
                if let Some(o) = self.outstanding.get(&id).copied() {
                    self.dispatch(t, rec, worker, id, o.attempts + 1);
                    return;
                }
            }
        }
        let fresh_ok = match self.config.dispatch_policy {
            DispatchPolicy::Eager => true,
            DispatchPolicy::Budgeted => {
                self.completed + self.outstanding.len() as u64 + self.abandoned < self.config.budget
            }
        };
        if fresh_ok {
            let id = self.next_eval;
            self.next_eval += 1;
            self.dispatch(t, rec, worker, id, 0);
        } else {
            self.idle.insert(worker);
        }
    }

    fn handle_arrival<T: Transport, R: Recorder + ?Sized>(
        &mut self,
        t: &mut T,
        rec: &R,
        ready_at: f64,
        worker: usize,
        eval_id: u64,
    ) {
        if self.suppress_duplicates && self.done.contains(&eval_id) {
            // Duplicate or superseded copy: absorb the message, count the
            // wasted work, free the worker if it was still pinned on it.
            self.emit(rec, Command::SuppressDuplicate { worker, eval_id });
            let end = t.absorb_duplicate(worker, eval_id, ready_at);
            self.log.duplicates_suppressed += 1;
            self.log.wasted_nfe += 1;
            self.log.recover_eval(eval_id, end);
            if self.current_eval[worker] == Some(eval_id) {
                self.assign_next(t, rec, worker);
            }
            return;
        }
        let Some(o) = self.outstanding.remove(&eval_id) else {
            // Neither done nor outstanding: abandoned past max_reissues
            // (simulated transports) or corruption (real ones decide).
            t.unknown_result(worker, eval_id);
            return;
        };
        // How much headroom the deadline had left when the result arrived
        // (negative slack means a reissue raced the original and lost).
        if o.deadline.is_finite() {
            rec.observe("engine.deadline_slack_seconds", o.deadline - ready_at);
        }
        // Whose dispatch slot this result frees: on an assigned pool the
        // delivering worker's, on a shared pool the notional assignee's
        // (any thread may have picked the item up).
        let freed = match self.config.discipline {
            PoolDiscipline::Assigned => worker,
            PoolDiscipline::Shared => o.worker,
        };
        self.emit(rec, Command::Consume { worker, eval_id });
        let end = t.consume(worker, eval_id, ready_at);
        rec.observe("engine.consume_seconds", end - ready_at);
        self.completed += 1;
        self.done.insert(eval_id);
        self.log.recover_eval(eval_id, end);
        // Results prove liveness: a quarantined worker that speaks again
        // (e.g. a straggler mistaken for dead) rejoins the pool.
        self.view_alive[worker] = self.alive[worker] || self.view_alive[worker];

        if self.config.mode == ProtocolMode::Sync {
            self.gen_remaining -= 1;
            if self.gen_remaining == 0 {
                if self.completed >= self.config.budget {
                    self.finished = true;
                    self.emit(rec, Command::Finish);
                } else {
                    // Barrier passed: dispatch the next generation en bloc.
                    for w in 0..self.config.workers {
                        let id = self.next_eval;
                        self.next_eval += 1;
                        self.dispatch(t, rec, w, id, 0);
                    }
                    self.gen_remaining = self.config.workers;
                }
            }
            return;
        }

        if self.completed >= self.config.budget {
            self.finished = true;
            self.emit(rec, Command::Finish);
            return;
        }
        if self.current_eval[freed] == Some(eval_id) {
            self.assign_next(t, rec, freed);
        }
    }

    fn handle_deadline<T: Transport, R: Recorder + ?Sized>(
        &mut self,
        t: &mut T,
        rec: &R,
        eval_id: u64,
        worker: usize,
        deadline_bits: u64,
    ) {
        let Some(o) = self.outstanding.get(&eval_id).copied() else {
            // Evaluation already consumed; if this worker's copy never
            // arrived (its message was dropped after a reissue raced it),
            // stop waiting on it.
            if self.current_eval[worker] == Some(eval_id) {
                self.assign_next(t, rec, worker);
            }
            return;
        };
        if o.deadline.to_bits() != deadline_bits {
            return; // superseded by a reissue
        }
        // Ping the assigned worker: one round-trip of master time.
        self.emit(rec, Command::Ping { worker: o.worker });
        let (start, end) = t.ping(o.worker);
        rec.observe("engine.ping_seconds", end - start);
        self.log.detect_eval(eval_id, start);
        let w = o.worker;
        if !self.alive[w] {
            if self.view_alive[w] {
                self.view_alive[w] = false;
                self.idle.remove(&w);
                self.emit(rec, Command::RetireWorker { worker: w });
                self.log.detect_worker_death(w, end);
            }
            self.current_eval[w] = None;
        }
        if o.attempts >= self.config.policy.max_reissues {
            self.outstanding.remove(&eval_id);
            self.abandoned += 1;
            self.emit(rec, Command::Abandon { eval_id });
            t.abandon(eval_id);
            return;
        }
        match self.config.discipline {
            // Shared pool: the reissue goes straight back on the queue —
            // any live worker will pick it up.
            PoolDiscipline::Shared => self.dispatch(t, rec, w, eval_id, o.attempts + 1),
            // Assigned pool: back to the pinged worker when it is believed
            // alive (it lost the message, or is straggling and the retry
            // races it), else to any idle worker, else queue until one
            // frees up.
            PoolDiscipline::Assigned => {
                if self.view_alive[w] {
                    self.dispatch(t, rec, w, eval_id, o.attempts + 1);
                } else if let Some(v) = self.idle.iter().next().copied() {
                    self.idle.remove(&v);
                    self.dispatch(t, rec, v, eval_id, o.attempts + 1);
                } else {
                    self.park_for_reissue(eval_id);
                }
            }
        }
    }

    /// Queue `eval_id` for reissue when a worker frees up, neutralising
    /// its pending deadline so it is not reissued twice.
    fn park_for_reissue(&mut self, eval_id: u64) {
        if let Some(o) = self.outstanding.get_mut(&eval_id) {
            o.deadline = f64::INFINITY;
            self.reissue_queue.push_back(eval_id);
        }
    }

    fn handle_heartbeat<T: Transport, R: Recorder + ?Sized>(
        &mut self,
        t: &mut T,
        rec: &R,
        now: f64,
    ) {
        for w in 0..self.config.workers {
            if self.alive[w]
                || !self.view_alive[w]
                || now - self.dead_since[w] < self.config.policy.heartbeat_interval
            {
                continue;
            }
            self.view_alive[w] = false;
            self.idle.remove(&w);
            self.emit(rec, Command::RetireWorker { worker: w });
            self.log.detect_worker_death(w, now);
            if let Some(id) = self.current_eval[w].take() {
                if self.outstanding.contains_key(&id) {
                    if let Some(v) = self.idle.iter().next().copied() {
                        self.idle.remove(&v);
                        let attempts = self.outstanding[&id].attempts;
                        if attempts >= self.config.policy.max_reissues {
                            self.outstanding.remove(&id);
                            self.abandoned += 1;
                            self.emit(rec, Command::Abandon { eval_id: id });
                            t.abandon(id);
                        } else {
                            self.dispatch(t, rec, v, id, attempts + 1);
                        }
                    } else {
                        self.park_for_reissue(id);
                    }
                }
            }
        }
        // Keep sweeping only while the run can still make progress: some
        // worker is (or will be) alive and the target is still reachable
        // despite abandoned evaluations.
        if !self.finished
            && self.completed + self.abandoned < self.config.budget
            && (self.alive.iter().any(|&a| a) || self.pending_respawns > 0)
        {
            self.emit(rec, Command::RearmHeartbeat);
            t.rearm_heartbeat(now + self.config.policy.heartbeat_interval);
        }
    }

    fn handle_death<T: Transport, R: Recorder + ?Sized>(
        &mut self,
        t: &mut T,
        rec: &R,
        worker: usize,
        at: f64,
        will_respawn: bool,
        lost_eval: Option<u64>,
    ) {
        self.alive[worker] = false;
        self.dead_since[worker] = at;
        if will_respawn {
            self.pending_respawns += 1;
        }
        // Out-of-band death report (real transports): detect immediately
        // and reissue the lost evaluation rather than waiting for its
        // deadline. Simulated transports pass `lost_eval: None` and the
        // deadline/heartbeat machinery discovers the loss instead.
        if self.config.discipline == PoolDiscipline::Shared {
            if self.view_alive[worker] {
                self.view_alive[worker] = false;
                self.emit(rec, Command::RetireWorker { worker });
                self.log.detect_worker_death(worker, at);
            }
            if let Some(id) = lost_eval {
                if let Some(o) = self.outstanding.get(&id).copied() {
                    self.log.wasted_nfe += 1;
                    if o.attempts >= self.config.policy.max_reissues {
                        self.outstanding.remove(&id);
                        self.abandoned += 1;
                        self.emit(rec, Command::Abandon { eval_id: id });
                        t.abandon(id);
                    } else {
                        self.dispatch(t, rec, worker, id, o.attempts + 1);
                    }
                }
            }
        }
    }

    fn handle_respawn<T: Transport, R: Recorder + ?Sized>(
        &mut self,
        t: &mut T,
        rec: &R,
        worker: usize,
    ) {
        self.pending_respawns = self.pending_respawns.saturating_sub(1);
        self.alive[worker] = true;
        self.view_alive[worker] = true;
        self.log.respawns += 1;
        self.assign_next(t, rec, worker);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use borg_obs::{InMemoryRecorder, NoopRecorder};

    /// A transport that just records calls and hands out fixed deadlines.
    struct NullTransport {
        now: f64,
        timeout: f64,
        calls: Vec<String>,
    }

    impl NullTransport {
        fn new(timeout: f64) -> Self {
            NullTransport {
                now: 0.0,
                timeout,
                calls: Vec::new(),
            }
        }
    }

    impl Clock for NullTransport {
        fn now(&self) -> f64 {
            self.now
        }
    }

    impl Transport for NullTransport {
        fn dispatch(
            &mut self,
            worker: usize,
            eval_id: u64,
            attempt: u32,
            _seq: u64,
            _log: &mut FaultLog,
        ) -> f64 {
            self.calls
                .push(format!("dispatch {worker} {eval_id} {attempt}"));
            self.now + self.timeout
        }
        fn consume(&mut self, worker: usize, eval_id: u64, _ready_at: f64) -> f64 {
            self.calls.push(format!("consume {worker} {eval_id}"));
            self.now
        }
        fn absorb_duplicate(&mut self, worker: usize, eval_id: u64, _ready_at: f64) -> f64 {
            self.calls.push(format!("dup {worker} {eval_id}"));
            self.now
        }
        fn ping(&mut self, worker: usize) -> (f64, f64) {
            self.calls.push(format!("ping {worker}"));
            (self.now, self.now)
        }
        fn rearm_heartbeat(&mut self, at: f64) {
            self.calls.push(format!("heartbeat {at}"));
        }
        fn abandon(&mut self, eval_id: u64) {
            self.calls.push(format!("abandon {eval_id}"));
        }
    }

    fn arrival(worker: usize, eval_id: u64, at: f64) -> Event {
        Event::ResultArrived {
            worker,
            eval_id,
            at,
        }
    }

    #[test]
    fn fault_free_pipeline_runs_to_budget() {
        let mut t = NullTransport::new(f64::INFINITY);
        let mut e = MasterEngine::new(EngineConfig::fault_free_async(2, 4));
        e.record_commands();
        e.seed(&mut t, &NoopRecorder);
        assert_eq!(e.outstanding_len(), 2);
        // Workers alternate; eager dispatch keeps the pipeline full even
        // on the last consume.
        e.handle(arrival(0, 0, 1.0), &mut t, &NoopRecorder);
        e.handle(arrival(1, 1, 1.1), &mut t, &NoopRecorder);
        e.handle(arrival(0, 2, 2.0), &mut t, &NoopRecorder);
        assert!(!e.finished());
        e.handle(arrival(1, 3, 2.1), &mut t, &NoopRecorder);
        assert!(e.finished());
        assert_eq!(e.completed(), 4);
        let cmds = e.take_commands();
        // Every consume of a non-final result is followed by a dispatch.
        assert_eq!(
            cmds.iter()
                .filter(|c| matches!(c, Command::Dispatch { .. }))
                .count(),
            2 + 3 // seeding + one per non-final consume
        );
        assert!(matches!(cmds.last(), Some(Command::Finish)));
    }

    #[test]
    fn duplicate_results_are_suppressed_by_eval_id() {
        let mut t = NullTransport::new(f64::INFINITY);
        let mut e = MasterEngine::new(EngineConfig::fault_free_async(1, 3));
        e.seed(&mut t, &NoopRecorder);
        e.handle(arrival(0, 0, 1.0), &mut t, &NoopRecorder);
        e.handle(arrival(0, 0, 1.0), &mut t, &NoopRecorder); // duplicate copy
        assert_eq!(e.completed(), 1);
        assert_eq!(e.log().duplicates_suppressed, 1);
        assert_eq!(e.log().wasted_nfe, 1);
    }

    #[test]
    fn deadline_reissues_then_abandons_at_the_cap() {
        let mut t = NullTransport::new(10.0);
        let policy = RecoveryPolicy {
            timeout: 10.0,
            heartbeat_interval: f64::INFINITY,
            max_reissues: 2,
        };
        let mut e = MasterEngine::new(EngineConfig::shared_pool_async(1, 2, policy));
        e.seed(&mut t, &NoopRecorder);
        for round in 0..3 {
            t.now += 10.0;
            let expired = e.expired_deadlines(t.now + 0.5);
            assert_eq!(expired.len(), 1, "round {round}");
            let (id, w, bits) = expired[0];
            e.handle(
                Event::DeadlineFired {
                    eval_id: id,
                    worker: w,
                    deadline_bits: bits,
                    at: t.now,
                },
                &mut t,
                &NoopRecorder,
            );
        }
        // Two reissues allowed, third firing abandons.
        assert_eq!(e.log().reissues, 2);
        assert_eq!(e.abandoned(), 1);
        assert!(t.calls.iter().any(|c| c == "abandon 0"));
    }

    #[test]
    fn stale_deadline_is_a_no_op() {
        let mut t = NullTransport::new(10.0);
        let policy = RecoveryPolicy {
            timeout: 10.0,
            heartbeat_interval: f64::INFINITY,
            max_reissues: 8,
        };
        let mut e = MasterEngine::new(EngineConfig::shared_pool_async(1, 2, policy));
        e.seed(&mut t, &NoopRecorder);
        t.now += 10.0;
        let (id, w, bits) = e.expired_deadlines(t.now + 0.5)[0];
        e.handle(
            Event::DeadlineFired {
                eval_id: id,
                worker: w,
                deadline_bits: bits,
                at: t.now,
            },
            &mut t,
            &NoopRecorder,
        );
        assert_eq!(e.log().reissues, 1);
        // Refiring the *old* deadline after the reissue moved it: no-op.
        e.handle(
            Event::DeadlineFired {
                eval_id: id,
                worker: w,
                deadline_bits: bits,
                at: t.now,
            },
            &mut t,
            &NoopRecorder,
        );
        assert_eq!(e.log().reissues, 1);
    }

    #[test]
    fn shared_pool_death_note_reissues_the_lost_eval() {
        let mut t = NullTransport::new(10.0);
        let policy = RecoveryPolicy {
            timeout: 10.0,
            heartbeat_interval: f64::INFINITY,
            max_reissues: 8,
        };
        let mut e = MasterEngine::new(EngineConfig::shared_pool_async(2, 4, policy));
        e.seed(&mut t, &NoopRecorder);
        e.handle(
            Event::WorkerDied {
                worker: 0,
                at: 1.0,
                will_respawn: false,
                lost_eval: Some(0),
            },
            &mut t,
            &NoopRecorder,
        );
        assert_eq!(e.log().deaths_detected, 1);
        assert_eq!(e.log().reissues, 1);
        assert_eq!(e.log().wasted_nfe, 1);
        // The reissued eval can still be consumed (any worker delivers).
        e.handle(arrival(1, 0, 2.0), &mut t, &NoopRecorder);
        assert_eq!(e.completed(), 1);
    }

    #[test]
    fn sync_mode_dispatches_generations_at_the_barrier() {
        let mut t = NullTransport::new(f64::INFINITY);
        let mut e = MasterEngine::new(EngineConfig::sync_generational(3, 5));
        e.record_commands();
        e.seed(&mut t, &NoopRecorder);
        // Mid-generation consumes do not dispatch.
        e.handle(arrival(0, 0, 1.0), &mut t, &NoopRecorder);
        e.handle(arrival(1, 1, 1.0), &mut t, &NoopRecorder);
        assert_eq!(e.outstanding_len(), 1);
        assert_eq!(
            t.calls.iter().filter(|c| c.starts_with("dispatch")).count(),
            3
        );
        // Barrier: the whole next generation goes out at once.
        e.handle(arrival(2, 2, 1.0), &mut t, &NoopRecorder);
        assert_eq!(
            t.calls.iter().filter(|c| c.starts_with("dispatch")).count(),
            6
        );
        // Second generation overshoots the budget of 5 and finishes.
        e.handle(arrival(0, 3, 2.0), &mut t, &NoopRecorder);
        e.handle(arrival(1, 4, 2.0), &mut t, &NoopRecorder);
        e.handle(arrival(2, 5, 2.0), &mut t, &NoopRecorder);
        assert!(e.finished());
        assert_eq!(e.completed(), 6);
    }

    #[test]
    fn shared_pool_pipeline_flows_when_any_thread_delivers() {
        // On a shared pull queue the delivering thread is rarely the
        // notional assignee; consuming must still free the assignee's
        // dispatch slot or the pipeline stalls.
        let mut t = NullTransport::new(f64::INFINITY);
        let policy = RecoveryPolicy {
            timeout: f64::INFINITY,
            heartbeat_interval: f64::INFINITY,
            max_reissues: 8,
        };
        let mut e = MasterEngine::new(EngineConfig::shared_pool_async(2, 6, policy));
        e.seed(&mut t, &NoopRecorder);
        // Worker 1's thread delivers every result, including those
        // notionally assigned to worker 0.
        for id in 0..6 {
            e.handle(arrival(1, id, id as f64), &mut t, &NoopRecorder);
        }
        assert!(e.finished());
        assert_eq!(e.completed(), 6);
        assert_eq!(
            t.calls.iter().filter(|c| c.starts_with("dispatch")).count(),
            6
        );
    }

    #[test]
    fn budgeted_dispatch_parks_workers_once_covered() {
        let mut t = NullTransport::new(10.0);
        let policy = RecoveryPolicy {
            timeout: 10.0,
            heartbeat_interval: f64::INFINITY,
            max_reissues: 8,
        };
        let mut e = MasterEngine::new(EngineConfig::fault_tolerant_async(3, 4, policy));
        e.seed(&mut t, &NoopRecorder);
        // 3 outstanding; after one consume: completed 1 + outstanding 2 =
        // 3 < 4 → one fresh dispatch. After the second consume: 2 + 2 = 4
        // → park.
        e.handle(arrival(0, 0, 1.0), &mut t, &NoopRecorder);
        assert_eq!(e.outstanding_len(), 3);
        e.handle(arrival(1, 1, 1.0), &mut t, &NoopRecorder);
        assert_eq!(e.outstanding_len(), 2);
        let dispatches = t.calls.iter().filter(|c| c.starts_with("dispatch")).count();
        assert_eq!(dispatches, 4);
    }

    #[test]
    fn engine_hooks_feed_the_recorder() {
        let rec = InMemoryRecorder::new();
        let mut t = NullTransport::new(10.0);
        let policy = RecoveryPolicy {
            timeout: 10.0,
            heartbeat_interval: f64::INFINITY,
            max_reissues: 8,
        };
        let mut e = MasterEngine::new(EngineConfig::shared_pool_async(2, 3, policy));
        e.seed(&mut t, &rec);
        e.handle(arrival(0, 0, 1.0), &mut t, &rec);
        e.handle(arrival(0, 0, 1.0), &mut t, &rec); // duplicate
        t.now += 20.0;
        let (id, w, bits) = e.expired_deadlines(t.now)[0];
        e.handle(
            Event::DeadlineFired {
                eval_id: id,
                worker: w,
                deadline_bits: bits,
                at: t.now,
            },
            &mut t,
            &rec,
        );
        let snap = rec.snapshot();
        assert_eq!(snap.counters["engine.events.result_arrived"], 2);
        assert_eq!(snap.counters["engine.events.deadline_fired"], 1);
        assert_eq!(snap.counters["engine.commands.suppress_duplicate"], 1);
        assert_eq!(snap.counters["engine.commands.ping"], 1);
        assert_eq!(snap.counters["engine.reissues"], 1);
        // Seed dispatched 2, the consume refilled 1, the reissue re-sent 1.
        assert_eq!(snap.counters["engine.commands.dispatch"], 4);
        // The consumed result's deadline had 9 seconds of slack left.
        assert_eq!(snap.histograms["engine.deadline_slack_seconds"].count(), 1);
        assert_eq!(snap.histograms["engine.deadline_slack_seconds"].max(), 9.0);
        assert!(snap.gauges.contains_key("engine.outstanding"));
    }

    #[test]
    fn recorder_choice_does_not_change_decisions() {
        // Same event stream through a noop-observed and an in-memory-
        // observed engine: identical transport call sequences.
        let run = |rec: &dyn Recorder| {
            let mut t = NullTransport::new(f64::INFINITY);
            let mut e = MasterEngine::new(EngineConfig::fault_free_async(2, 4));
            e.seed(&mut t, rec);
            for (w, id) in [(0, 0), (1, 1), (0, 2), (1, 3)] {
                e.handle(arrival(w, id, 1.0 + id as f64), &mut t, rec);
            }
            (t.calls, e.completed())
        };
        let noop = run(&NoopRecorder);
        let mem = run(&InMemoryRecorder::new());
        assert_eq!(noop, mem);
    }
}
