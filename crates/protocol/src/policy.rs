//! Master-side recovery policy (moved here from `borg-models` so all
//! executors share one definition).

/// Master-side recovery policy: when to give up on an outstanding
/// evaluation and how aggressively to probe for dead workers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Deadline per outstanding evaluation. When it passes without a
    /// result the master pings the assigned worker and reissues.
    /// `f64::INFINITY` disables deadline tracking (fault-free runs).
    pub timeout: f64,
    /// Interval of the master's background liveness sweep; a worker that
    /// has been silent for a full interval past its death is declared
    /// dead even if none of its evaluations has timed out yet.
    /// `f64::INFINITY` disables the sweep.
    pub heartbeat_interval: f64,
    /// Hard cap on reissues per evaluation; exceeding it abandons the
    /// evaluation (the run then finishes with fewer results — this only
    /// guards against pathological configurations such as a 100% message
    /// drop rate).
    pub max_reissues: u32,
}

impl RecoveryPolicy {
    /// The paper-flavoured policy: timeout `k · E[T_F]` (`k > 1` so an
    /// ordinary evaluation never trips it), heartbeat at half the
    /// timeout.
    pub fn from_expected_eval_time(expected_tf: f64, k: f64) -> Self {
        assert!(
            expected_tf > 0.0 && expected_tf.is_finite(),
            "expected evaluation time must be positive"
        );
        assert!(k > 1.0, "timeout multiplier must exceed 1");
        let timeout = k * expected_tf;
        RecoveryPolicy {
            timeout,
            heartbeat_interval: timeout / 2.0,
            max_reissues: 64,
        }
    }

    /// A policy that never times out, never sweeps, never reissues —
    /// the fault-free protocol.
    pub fn disabled() -> Self {
        RecoveryPolicy {
            timeout: f64::INFINITY,
            heartbeat_interval: f64::INFINITY,
            max_reissues: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_policy_derives_heartbeat_from_timeout() {
        let p = RecoveryPolicy::from_expected_eval_time(0.01, 4.0);
        assert!((p.timeout - 0.04).abs() < 1e-12);
        assert!((p.heartbeat_interval - 0.02).abs() < 1e-12);
        assert_eq!(p.max_reissues, 64);
    }

    #[test]
    fn disabled_policy_never_fires() {
        let p = RecoveryPolicy::disabled();
        assert!(p.timeout.is_infinite());
        assert!(p.heartbeat_interval.is_infinite());
        assert_eq!(p.max_reissues, 0);
    }

    #[test]
    #[should_panic(expected = "timeout multiplier")]
    fn k_must_exceed_one() {
        let _ = RecoveryPolicy::from_expected_eval_time(0.01, 1.0);
    }
}
