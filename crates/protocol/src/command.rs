//! The protocol's observable vocabulary: what the world tells the master
//! ([`Event`]) and what the master does about it ([`Command`]).

/// An observation delivered to the [`MasterEngine`]. Adapters translate
/// their native signals (DES events, channel messages, fault notes) into
/// these; `at` is always in the adapter's [`Clock`] seconds.
///
/// [`MasterEngine`]: crate::MasterEngine
/// [`Clock`]: crate::Clock
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A result message for `eval_id` reached the master from `worker`.
    ResultArrived {
        worker: usize,
        eval_id: u64,
        at: f64,
    },
    /// The deadline scheduled for `eval_id`'s current dispatch fired.
    /// `deadline_bits` fingerprints that deadline (`f64::to_bits`); a
    /// reissue moves the deadline, turning stale firings into no-ops.
    /// `worker` is the worker the dispatch was assigned to.
    DeadlineFired {
        eval_id: u64,
        worker: usize,
        deadline_bits: u64,
        at: f64,
    },
    /// The background liveness sweep ticked.
    HeartbeatTick { at: f64 },
    /// The transport learned that `worker` physically died. `will_respawn`
    /// announces a future [`Event::WorkerRespawned`]; `lost_eval` carries
    /// the evaluation the worker was holding *when the transport already
    /// knows it* (real executors' out-of-band death notes) — simulated
    /// adapters pass `None` and let the deadline/heartbeat machinery
    /// discover the loss, like a real master would.
    WorkerDied {
        worker: usize,
        at: f64,
        will_respawn: bool,
        lost_eval: Option<u64>,
    },
    /// A previously dead worker rejoined the pool.
    WorkerRespawned { worker: usize, at: f64 },
}

/// A decision the [`MasterEngine`] made. Every [`Transport`] call the
/// engine performs is mirrored by exactly one command, so a recorded
/// command trace is a complete, executor-independent transcript of the
/// protocol — the object the differential equivalence tests compare.
///
/// [`MasterEngine`]: crate::MasterEngine
/// [`Transport`]: crate::Transport
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Send `eval_id` to `worker` (`attempt` 0 = fresh work, else reissue).
    Dispatch {
        worker: usize,
        eval_id: u64,
        attempt: u32,
    },
    /// Process the result of `eval_id` returned by `worker`.
    Consume { worker: usize, eval_id: u64 },
    /// Absorb and discard a duplicate/superseded result message.
    SuppressDuplicate { worker: usize, eval_id: u64 },
    /// Ping a worker whose evaluation missed its deadline.
    Ping { worker: usize },
    /// Quarantine a worker believed dead.
    RetireWorker { worker: usize },
    /// Give up on `eval_id` (reissue budget exhausted).
    Abandon { eval_id: u64 },
    /// Re-arm the liveness sweep.
    RearmHeartbeat,
    /// The evaluation budget is complete.
    Finish,
}
