//! The executor-agnostic master-slave protocol core.
//!
//! The paper's whole argument rests on *one* master-slave protocol being
//! observed through three lenses — analytical (Eq. 2), simulated (the
//! SimPy-style queueing model), and experimental (real workers). A
//! model/experiment comparison is only trustworthy when both arms run
//! identical control logic, so this crate carries the single source of
//! truth: a pure, deterministic [`MasterEngine`] state machine that
//! consumes [`Event`]s (result arrived, deadline fired, heartbeat tick,
//! worker died/respawned) and drives a small [`Transport`] trait with the
//! resulting actions (dispatch, consume, suppress duplicate, ping,
//! abandon). Everything an executor disagrees about — how time passes
//! ([`Clock`]), how messages move, how long the master holds per
//! interaction — lives in the adapter; everything the executors must
//! *agree* on — dispatch bookkeeping, deadline reissue, duplicate
//! suppression by eval id, liveness beliefs, wasted-NFE accounting —
//! lives here.
//!
//! Adapters in this workspace:
//!
//! | executor | crate | clock | transport |
//! |---|---|---|---|
//! | queueing DES (`run_async*`) | `borg-models` | event-queue virtual time | simulated latencies + [`FaultPlan`] fates |
//! | virtual Borg (`run_virtual_*`) | `borg-parallel` | event-queue virtual time | same DES, hooks run the real MOEA |
//! | real threads (`run_threaded`) | `borg-parallel` | wall clock (seconds since start) | crossbeam channels |
//!
//! The engine never reads a wall clock, never samples an RNG, and never
//! allocates on the arrival hot path beyond its bookkeeping maps — same
//! seed and same event stream give bit-identical decisions on every
//! machine, which is what the workspace's determinism gate (and the
//! golden Table II / faults cells under `results/golden/`) enforce.
//!
//! [`FaultPlan`]: borg_desim::fault::FaultPlan

mod command;
mod engine;
mod policy;

pub use command::{Command, Event};
pub use engine::{
    DispatchPolicy, EngineConfig, MasterEngine, PoolDiscipline, ProtocolMode, Transport,
};
pub use policy::RecoveryPolicy;

/// A source of protocol time, in seconds.
///
/// The engine itself is time-agnostic — times reach it inside events and
/// as return values of [`Transport`] calls — but adapters implement this
/// so the deadline sweep and ledger stamps share one notion of "now":
/// the DES adapters report the event-queue clock, the real-thread
/// executor reports wall seconds since the run started.
pub trait Clock {
    /// Current time in seconds.
    fn now(&self) -> f64;
}
